#include "src/obs/trace.h"

#include <algorithm>
#include <atomic>

#include "src/obs/flight_recorder.h"

namespace springfs::trace {
namespace {

struct ThreadTraceState {
  Span* current = nullptr;
  Clock* clock = nullptr;
};

// Out-of-line accessor for the same UBSan/TLS-wrapper reason as
// Domain::tls_current_ (see src/obj/domain.h).
ThreadTraceState& State() {
  static thread_local ThreadTraceState state;
  return state;
}

// Process-unique id mints. Never 0: zero means "no trace" on the wire.
std::atomic<uint64_t> next_trace_id{1};
std::atomic<uint64_t> next_span_id{1};

void AppendJson(const Span& span, std::string* out) {
  out->append("{\"name\":\"");
  out->append(span.name);
  out->append("\",\"kind\":\"");
  out->append(SpanKindName(span.kind));
  out->append("\"");
  if (!span.detail.empty()) {
    out->append(",\"detail\":\"");
    out->append(span.detail);
    out->append("\"");
  }
  out->append(",\"trace_id\":");
  out->append(std::to_string(span.trace_id));
  out->append(",\"span_id\":");
  out->append(std::to_string(span.span_id));
  if (span.remote_parent_span_id != 0) {
    out->append(",\"remote_parent_span_id\":");
    out->append(std::to_string(span.remote_parent_span_id));
  }
  out->append(",\"start_ns\":");
  out->append(std::to_string(span.start_ns));
  out->append(",\"dur_ns\":");
  out->append(std::to_string(span.duration_ns()));
  if (!span.annotations.empty()) {
    out->append(",\"annotations\":[");
    for (size_t i = 0; i < span.annotations.size(); ++i) {
      if (i > 0) {
        out->append(",");
      }
      out->append("\"");
      out->append(span.annotations[i]);
      out->append("\"");
    }
    out->append("]");
  }
  if (!span.children.empty()) {
    out->append(",\"children\":[");
    for (size_t i = 0; i < span.children.size(); ++i) {
      if (i > 0) {
        out->append(",");
      }
      AppendJson(*span.children[i], out);
    }
    out->append("]");
  }
  out->append("}");
}

void AppendText(const Span& span, int depth, std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  out->append(span.name);
  if (!span.detail.empty()) {
    out->append(" [");
    out->append(span.detail);
    out->append("]");
  }
  out->append(" ");
  out->append(std::to_string(span.duration_ns()));
  out->append("ns (self ");
  out->append(std::to_string(span.self_ns()));
  out->append("ns)\n");
  for (const std::string& note : span.annotations) {
    out->append(static_cast<size_t>(depth + 1) * 2, ' ');
    out->append("@ ");
    out->append(note);
    out->append("\n");
  }
  for (const auto& child : span.children) {
    AppendText(*child, depth + 1, out);
  }
}

void CollectMatches(const Span& span, std::string_view name_prefix,
                    std::vector<const Span*>* out) {
  if (span.name.compare(0, name_prefix.size(), name_prefix) == 0) {
    out->push_back(&span);
  }
  for (const auto& child : span.children) {
    CollectMatches(*child, name_prefix, out);
  }
}

}  // namespace

const char* SpanKindName(SpanKind kind) {
  switch (kind) {
    case SpanKind::kOp:
      return "op";
    case SpanKind::kCrossDomain:
      return "xdc";
    case SpanKind::kNet:
      return "net";
  }
  return "?";
}

TimeNs Span::self_ns() const {
  TimeNs in_children = 0;
  for (const auto& child : children) {
    in_children += child->duration_ns();
  }
  TimeNs total = duration_ns();
  return in_children > total ? 0 : total - in_children;
}

size_t Span::TreeSize() const {
  size_t n = 1;
  for (const auto& child : children) {
    n += child->TreeSize();
  }
  return n;
}

std::vector<const Span*> FindAll(const Span& root,
                                 std::string_view name_prefix) {
  std::vector<const Span*> out;
  CollectMatches(root, name_prefix, &out);
  return out;
}

const Span* FindFirst(const Span& root, std::string_view name_prefix) {
  std::vector<const Span*> all = FindAll(root, name_prefix);
  return all.empty() ? nullptr : all.front();
}

bool Contains(const Span& root, std::string_view name_prefix) {
  return FindFirst(root, name_prefix) != nullptr;
}

std::string ToString(const Span& root) {
  std::string out;
  AppendText(root, 0, &out);
  return out;
}

std::string ToJson(const Span& root) {
  std::string out;
  AppendJson(root, &out);
  return out;
}

bool Active() { return State().current != nullptr; }

TraceContext CurrentContext() {
  const Span* current = State().current;
  if (current == nullptr) {
    return TraceContext{};
  }
  return TraceContext{current->trace_id, current->span_id};
}

void AnnotateCurrent(std::string note) {
  Span* current = State().current;
  if (current != nullptr) {
    current->annotations.push_back(std::move(note));
  }
}

TraceRoot::TraceRoot(std::string name, Clock* clock)
    : root_(std::make_unique<Span>()), clock_(clock) {
  root_->name = std::move(name);
  root_->trace_id = next_trace_id.fetch_add(1, std::memory_order_relaxed);
  root_->span_id = next_span_id.fetch_add(1, std::memory_order_relaxed);
  root_->start_ns = clock_->Now();
  ThreadTraceState& state = State();
  saved_current_ = state.current;
  saved_clock_ = state.clock;
  state.current = root_.get();
  state.clock = clock_;
}

const Span& TraceRoot::Finish() {
  if (!finished_) {
    finished_ = true;
    root_->end_ns = clock_->Now();
    ThreadTraceState& state = State();
    state.current = saved_current_;
    state.clock = saved_clock_;
    flight::RecordWithContext(
        root_->trace_id, root_->span_id, flight::Severity::kInfo, "trace",
        ("trace '" + root_->name + "' complete").c_str(), root_->TreeSize(),
        static_cast<uint64_t>(root_->duration_ns()));
  }
  return *root_;
}

TraceRoot::~TraceRoot() { Finish(); }

ScopedSpan::ScopedSpan(const char* name, SpanKind kind) {
  if (name != nullptr && State().current != nullptr) {
    Open(name, kind);
  }
}

ScopedSpan::ScopedSpan(SpanKind kind, const char* prefix,
                       const std::string& suffix) {
  if (State().current != nullptr) {
    Open(std::string(prefix) + suffix, kind);
  }
}

void ScopedSpan::Open(std::string name, SpanKind kind) {
  ThreadTraceState& state = State();
  auto span = std::make_unique<Span>();
  span->name = std::move(name);
  span->kind = kind;
  span->parent = state.current;
  span->trace_id = state.current->trace_id;
  span->span_id = next_span_id.fetch_add(1, std::memory_order_relaxed);
  span->start_ns = state.clock->Now();
  span_ = span.get();
  state.current->children.push_back(std::move(span));
  state.current = span_;
}

ScopedSpan::~ScopedSpan() {
  if (span_ == nullptr) {
    return;
  }
  ThreadTraceState& state = State();
  span_->end_ns = state.clock->Now();
  // Unwind to the parent even if inner spans leaked open (they cannot: RAII).
  state.current = span_->parent;
  // Completed spans feed the flight recorder's post-mortem ring. Only
  // reached while tracing is active, so untraced hot paths stay free.
  flight::RecordWithContext(span_->trace_id, span_->span_id,
                            flight::Severity::kDebug, "trace",
                            span_->name.c_str(), span_->remote_parent_span_id,
                            static_cast<uint64_t>(span_->duration_ns()));
}

void ScopedSpan::SetDetail(std::string detail) {
  if (span_ != nullptr) {
    span_->detail = std::move(detail);
  }
}

void ScopedSpan::Annotate(std::string note) {
  if (span_ != nullptr) {
    span_->annotations.push_back(std::move(note));
  }
}

void ScopedSpan::AdoptRemote(const TraceContext& context) {
  if (span_ == nullptr || !context.active()) {
    return;
  }
  span_->remote_parent_span_id = context.parent_span_id;
  if (span_->trace_id != context.trace_id) {
    // A genuinely foreign trace (the in-process fast path inherits the same
    // id): children opened from here on belong to the inbound trace.
    span_->trace_id = context.trace_id;
  }
}

Handoff Capture() {
  ThreadTraceState& state = State();
  return Handoff{state.current, state.clock};
}

ScopedHandoff::ScopedHandoff(const Handoff& handoff) {
  ThreadTraceState& state = State();
  saved_current_ = state.current;
  saved_clock_ = state.clock;
  if (handoff.active()) {
    state.current = handoff.parent;
    state.clock = handoff.clock;
  }
}

ScopedHandoff::~ScopedHandoff() {
  ThreadTraceState& state = State();
  state.current = saved_current_;
  state.clock = saved_clock_;
}

}  // namespace springfs::trace
