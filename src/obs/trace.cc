#include "src/obs/trace.h"

#include <algorithm>

namespace springfs::trace {
namespace {

struct ThreadTraceState {
  Span* current = nullptr;
  Clock* clock = nullptr;
};

// Out-of-line accessor for the same UBSan/TLS-wrapper reason as
// Domain::tls_current_ (see src/obj/domain.h).
ThreadTraceState& State() {
  static thread_local ThreadTraceState state;
  return state;
}

void AppendJson(const Span& span, std::string* out) {
  out->append("{\"name\":\"");
  out->append(span.name);
  out->append("\",\"kind\":\"");
  out->append(SpanKindName(span.kind));
  out->append("\"");
  if (!span.detail.empty()) {
    out->append(",\"detail\":\"");
    out->append(span.detail);
    out->append("\"");
  }
  out->append(",\"start_ns\":");
  out->append(std::to_string(span.start_ns));
  out->append(",\"dur_ns\":");
  out->append(std::to_string(span.duration_ns()));
  if (!span.children.empty()) {
    out->append(",\"children\":[");
    for (size_t i = 0; i < span.children.size(); ++i) {
      if (i > 0) {
        out->append(",");
      }
      AppendJson(*span.children[i], out);
    }
    out->append("]");
  }
  out->append("}");
}

void AppendText(const Span& span, int depth, std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  out->append(span.name);
  if (!span.detail.empty()) {
    out->append(" [");
    out->append(span.detail);
    out->append("]");
  }
  out->append(" ");
  out->append(std::to_string(span.duration_ns()));
  out->append("ns (self ");
  out->append(std::to_string(span.self_ns()));
  out->append("ns)\n");
  for (const auto& child : span.children) {
    AppendText(*child, depth + 1, out);
  }
}

void CollectMatches(const Span& span, std::string_view name_prefix,
                    std::vector<const Span*>* out) {
  if (span.name.compare(0, name_prefix.size(), name_prefix) == 0) {
    out->push_back(&span);
  }
  for (const auto& child : span.children) {
    CollectMatches(*child, name_prefix, out);
  }
}

}  // namespace

const char* SpanKindName(SpanKind kind) {
  switch (kind) {
    case SpanKind::kOp:
      return "op";
    case SpanKind::kCrossDomain:
      return "xdc";
    case SpanKind::kNet:
      return "net";
  }
  return "?";
}

TimeNs Span::self_ns() const {
  TimeNs in_children = 0;
  for (const auto& child : children) {
    in_children += child->duration_ns();
  }
  TimeNs total = duration_ns();
  return in_children > total ? 0 : total - in_children;
}

size_t Span::TreeSize() const {
  size_t n = 1;
  for (const auto& child : children) {
    n += child->TreeSize();
  }
  return n;
}

std::vector<const Span*> FindAll(const Span& root,
                                 std::string_view name_prefix) {
  std::vector<const Span*> out;
  CollectMatches(root, name_prefix, &out);
  return out;
}

const Span* FindFirst(const Span& root, std::string_view name_prefix) {
  std::vector<const Span*> all = FindAll(root, name_prefix);
  return all.empty() ? nullptr : all.front();
}

bool Contains(const Span& root, std::string_view name_prefix) {
  return FindFirst(root, name_prefix) != nullptr;
}

std::string ToString(const Span& root) {
  std::string out;
  AppendText(root, 0, &out);
  return out;
}

std::string ToJson(const Span& root) {
  std::string out;
  AppendJson(root, &out);
  return out;
}

bool Active() { return State().current != nullptr; }

TraceRoot::TraceRoot(std::string name, Clock* clock)
    : root_(std::make_unique<Span>()), clock_(clock) {
  root_->name = std::move(name);
  root_->start_ns = clock_->Now();
  ThreadTraceState& state = State();
  saved_current_ = state.current;
  saved_clock_ = state.clock;
  state.current = root_.get();
  state.clock = clock_;
}

const Span& TraceRoot::Finish() {
  if (!finished_) {
    finished_ = true;
    root_->end_ns = clock_->Now();
    ThreadTraceState& state = State();
    state.current = saved_current_;
    state.clock = saved_clock_;
  }
  return *root_;
}

TraceRoot::~TraceRoot() { Finish(); }

ScopedSpan::ScopedSpan(const char* name, SpanKind kind) {
  if (name != nullptr && State().current != nullptr) {
    Open(name, kind);
  }
}

ScopedSpan::ScopedSpan(SpanKind kind, const char* prefix,
                       const std::string& suffix) {
  if (State().current != nullptr) {
    Open(std::string(prefix) + suffix, kind);
  }
}

void ScopedSpan::Open(std::string name, SpanKind kind) {
  ThreadTraceState& state = State();
  auto span = std::make_unique<Span>();
  span->name = std::move(name);
  span->kind = kind;
  span->parent = state.current;
  span->start_ns = state.clock->Now();
  span_ = span.get();
  state.current->children.push_back(std::move(span));
  state.current = span_;
}

ScopedSpan::~ScopedSpan() {
  if (span_ == nullptr) {
    return;
  }
  ThreadTraceState& state = State();
  span_->end_ns = state.clock->Now();
  // Unwind to the parent even if inner spans leaked open (they cannot: RAII).
  state.current = span_->parent;
}

void ScopedSpan::SetDetail(std::string detail) {
  if (span_ != nullptr) {
    span_->detail = std::move(detail);
  }
}

Handoff Capture() {
  ThreadTraceState& state = State();
  return Handoff{state.current, state.clock};
}

ScopedHandoff::ScopedHandoff(const Handoff& handoff) {
  ThreadTraceState& state = State();
  saved_current_ = state.current;
  saved_clock_ = state.clock;
  if (handoff.active()) {
    state.current = handoff.parent;
    state.clock = handoff.clock;
  }
}

ScopedHandoff::~ScopedHandoff() {
  ThreadTraceState& state = State();
  state.current = saved_current_;
  state.clock = saved_clock_;
}

}  // namespace springfs::trace
