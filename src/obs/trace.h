// springtrace: span-tree tracing for one file operation across the stack.
//
// The paper's evaluation is entirely about *attributing* cost per layer
// (Tables 2/3, Figures 5-7, 9): proving, e.g., that DFS "is not involved in
// local page-in/page-out requests" once it forwards binds. Raw per-domain
// invocation counters cannot show that — a span tree can. One traced
// operation yields a tree of timed spans: the root is the operation, child
// spans are the layers, pager/cache channels, cross-domain calls, and
// network hops it touched, in causal order.
//
// Model:
//  * Tracing is *thread-scoped and explicit*: constructing a TraceRoot
//    starts collection on the calling thread; destroying it (or calling
//    Finish) ends it. No global enable flag — when no TraceRoot is live on
//    the current logical call path, ScopedSpan is a single thread-local
//    load and nothing is allocated.
//  * Propagation follows the call, not the thread. SpinTransport runs
//    cross-domain calls on the caller's thread, so the thread-local context
//    simply persists. ThreadTransport hands off to a worker thread:
//    Domain::RunOnWorker captures the caller's context (trace::Capture) and
//    the worker adopts it (trace::ScopedHandoff) for the duration of the
//    op. The caller is blocked for that duration and the hand-off is
//    mutex-synchronized, so exactly one thread mutates a subtree at a time
//    (TSan-clean by construction). The DFS network hop propagates the same
//    way: Network::Call runs the remote handler inside the destination
//    domain on the calling thread's context.
//  * Time comes from the injected Clock, so span trees are deterministic
//    under SpinTransport driven by a FakeClock and merely monotonic under
//    real clocks.
//
// Span naming convention (asserted by tests and rolled up by the
// per-layer reports): "<layer>.<operation>", e.g. "coh.page_in",
// "disk.page_out", "vmm.fault", "dfs.bind_forward"; cross-domain calls are
// "xdc:<domain>" and network hops "net.call:<service>" / "net.serve:...".
// Retransmissions of one logical network call are "net.retry:<service>" so
// that "net.call:" counts stay stable under an armed FaultPlan.
//
// Distributed identity: every TraceRoot mints a process-unique trace_id,
// every opened span a process-unique span_id; children inherit the
// trace_id. CurrentContext() packages the pair as a TraceContext, which the
// network layer serializes into each frame header; the serving side adopts
// the inbound context onto its handler span (AdoptRemote), so one logical
// read() is a single tree whose client- and server-domain spans share one
// trace_id, stitched across the wire by remote_parent_span_id.

#ifndef SPRINGFS_OBS_TRACE_H_
#define SPRINGFS_OBS_TRACE_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/support/clock.h"

namespace springfs::trace {

enum class SpanKind : uint8_t {
  kOp,           // a layer-level operation (page_in, read, resolve, ...)
  kCrossDomain,  // a cross-domain invocation carried by a Transport
  kNet,          // a network hop (request+handler+response)
};

const char* SpanKindName(SpanKind kind);

struct Span {
  std::string name;
  std::string detail;  // free-form, e.g. "channel=3" or "a->b"
  SpanKind kind = SpanKind::kOp;
  TimeNs start_ns = 0;
  TimeNs end_ns = 0;
  // Process-unique identity (see file comment). trace_id is shared by every
  // span under one TraceRoot; remote_parent_span_id is nonzero only on
  // server-side handler spans whose parent arrived over the wire.
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t remote_parent_span_id = 0;
  // Point-in-time notes ("retry attempt=2 status=timed out",
  // "fault:drop_response", "dedup replay"); appended only while tracing is
  // active, so untraced hot paths never build the strings.
  std::vector<std::string> annotations;
  Span* parent = nullptr;
  std::vector<std::unique_ptr<Span>> children;

  TimeNs duration_ns() const { return end_ns - start_ns; }
  // Time not covered by child spans (the span's own cost).
  TimeNs self_ns() const;
  // This span plus all descendants.
  size_t TreeSize() const;
};

// --- queries (used by tests and the per-layer reports) ---

// Depth-first search for spans whose name starts with `name_prefix`.
std::vector<const Span*> FindAll(const Span& root, std::string_view name_prefix);
const Span* FindFirst(const Span& root, std::string_view name_prefix);
bool Contains(const Span& root, std::string_view name_prefix);

// Indented human-readable tree / machine-readable JSON.
std::string ToString(const Span& root);
std::string ToJson(const Span& root);

// True when the calling thread is collecting a trace (a TraceRoot is live
// here or was handed off to this thread).
bool Active();

// The compact distributed-trace identity carried in every net::Frame
// header: which trace the caller belongs to and which of its spans is the
// logical parent of the remote work. Zeroes mean "caller not tracing".
struct TraceContext {
  uint64_t trace_id = 0;
  uint64_t parent_span_id = 0;

  bool active() const { return trace_id != 0; }
};

// The calling thread's current context (inactive when no trace is live).
TraceContext CurrentContext();

// Appends a note to the innermost active span — for deep call sites (e.g.
// a coherency eviction) that do not own the enclosing ScopedSpan. No-op
// when no trace is live; guard expensive formatting with Active().
void AnnotateCurrent(std::string note);

// Starts a trace on the calling thread; the root span covers the
// TraceRoot's lifetime (or until Finish). Non-reentrant per thread in the
// sense that a nested TraceRoot simply records as a child tree of the
// outer one... it does not: a nested TraceRoot replaces the context and
// restores it on destruction, so nest freely — outer traces just do not
// see the inner operation's spans.
class TraceRoot {
 public:
  explicit TraceRoot(std::string name, Clock* clock = &DefaultClock());
  ~TraceRoot();

  TraceRoot(const TraceRoot&) = delete;
  TraceRoot& operator=(const TraceRoot&) = delete;

  // Ends the root span and detaches the context (idempotent). The returned
  // tree stays owned by this TraceRoot.
  const Span& Finish();
  const Span& root() const { return *root_; }

 private:
  std::unique_ptr<Span> root_;
  Clock* clock_;
  Span* saved_current_;
  Clock* saved_clock_;
  bool finished_ = false;
};

// RAII child span. When no trace is active on this thread, construction is
// one thread-local load and the destructor a null check. A null `name`
// means "no span" (callers that time an op but open their span elsewhere).
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name, SpanKind kind = SpanKind::kOp);
  // Builds "<prefix><suffix>" as the span name — the concatenation happens
  // only while tracing is active (hot paths pay nothing otherwise).
  ScopedSpan(SpanKind kind, const char* prefix, const std::string& suffix);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  // No-op when tracing is inactive.
  void SetDetail(std::string detail);

  // Appends a point-in-time note to the span. No-op when inactive; guard
  // expensive message formatting with active().
  void Annotate(std::string note);

  // Marks this span as the adoption point of a context received over the
  // wire: stamps remote_parent_span_id and, when the inbound trace_id
  // differs from the locally inherited one (a genuinely foreign trace),
  // re-labels this span and its future children with it. No-op when the
  // context is inactive or no trace is live here.
  void AdoptRemote(const TraceContext& context);

  bool active() const { return span_ != nullptr; }
  // 0 when inactive.
  uint64_t span_id() const { return span_ == nullptr ? 0 : span_->span_id; }

 private:
  void Open(std::string name, SpanKind kind);

  Span* span_ = nullptr;
};

// --- cross-thread propagation (used by Domain::RunOnWorker) ---

struct Handoff {
  Span* parent = nullptr;
  Clock* clock = nullptr;

  bool active() const { return parent != nullptr; }
};

// Captures the calling thread's trace context (null Handoff when inactive).
Handoff Capture();

// Adopts a captured context on the current thread for the guard's lifetime.
// The capturing thread must be blocked waiting on this work item — two
// threads must never extend the same subtree concurrently.
class ScopedHandoff {
 public:
  explicit ScopedHandoff(const Handoff& handoff);
  ~ScopedHandoff();

  ScopedHandoff(const ScopedHandoff&) = delete;
  ScopedHandoff& operator=(const ScopedHandoff&) = delete;

 private:
  Span* saved_current_;
  Clock* saved_clock_;
};

}  // namespace springfs::trace

#endif  // SPRINGFS_OBS_TRACE_H_
