#include "src/posix/posix_shim.h"

#include <algorithm>

namespace springfs::posix {

Process::Process(sp<Context> root, Credentials creds)
    : root_(std::move(root)), creds_(std::move(creds)), cwd_("") {}

std::string Process::Absolute(const std::string& path) const {
  if (!path.empty() && path[0] == '/') {
    return path;
  }
  if (cwd_.empty()) {
    return path;
  }
  return cwd_ + "/" + path;
}

Status Process::Chdir(const std::string& path) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string target = Absolute(path);
  ASSIGN_OR_RETURN(sp<Context> dir, ResolveAs<Context>(root_, target, creds_));
  (void)dir;
  ASSIGN_OR_RETURN(Name name, Name::Parse(target));
  cwd_ = name.ToString();
  return Status::Ok();
}

Result<int> Process::Open(const std::string& path, int flags) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string target = Absolute(path);
  ASSIGN_OR_RETURN(Name name, Name::Parse(target));

  sp<File> file;
  Result<sp<Object>> existing = root_->Resolve(name, creds_);
  if (existing.ok()) {
    if ((flags & kCreate) && (flags & kExcl)) {
      return ErrAlreadyExists(target);
    }
    file = narrow<File>(*existing);
    if (!file) {
      return ErrIsADirectory(target);
    }
  } else if (existing.code() == ErrorCode::kNotFound && (flags & kCreate)) {
    sp<StackableFs> fs = narrow<StackableFs>(root_);
    if (!fs) {
      return ErrNotSupported("root context cannot create files");
    }
    ASSIGN_OR_RETURN(file, fs->CreateFile(name, creds_));
  } else {
    return existing.status();
  }

  if (flags & kTrunc) {
    RETURN_IF_ERROR(file->SetLength(0));
  }
  uint64_t position = 0;
  if (flags & kAppend) {
    ASSIGN_OR_RETURN(position, file->GetLength());
  }
  int fd = next_fd_++;
  fds_[fd] = OpenFile{std::move(file), position, flags};
  return fd;
}

Status Process::Close(int fd) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (fds_.erase(fd) == 0) {
    return ErrInvalidArgument("bad fd");
  }
  return Status::Ok();
}

Result<size_t> Process::Read(int fd, MutableByteSpan out) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = fds_.find(fd);
  if (it == fds_.end()) {
    return ErrInvalidArgument("bad fd");
  }
  if ((it->second.flags & 0x3) == kWrOnly) {
    return ErrPermissionDenied("fd is write-only");
  }
  ASSIGN_OR_RETURN(size_t n, it->second.file->Read(it->second.position, out));
  it->second.position += n;
  return n;
}

Result<size_t> Process::Write(int fd, ByteSpan data) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = fds_.find(fd);
  if (it == fds_.end()) {
    return ErrInvalidArgument("bad fd");
  }
  OpenFile& open = it->second;
  if ((open.flags & 0x3) == kRdOnly) {
    return ErrPermissionDenied("fd is read-only");
  }
  if (open.flags & kAppend) {
    ASSIGN_OR_RETURN(open.position, open.file->GetLength());
  }
  ASSIGN_OR_RETURN(size_t n, open.file->Write(open.position, data));
  open.position += n;
  return n;
}

Result<size_t> Process::Pread(int fd, uint64_t offset, MutableByteSpan out) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = fds_.find(fd);
  if (it == fds_.end()) {
    return ErrInvalidArgument("bad fd");
  }
  return it->second.file->Read(offset, out);
}

Result<size_t> Process::Pwrite(int fd, uint64_t offset, ByteSpan data) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = fds_.find(fd);
  if (it == fds_.end()) {
    return ErrInvalidArgument("bad fd");
  }
  return it->second.file->Write(offset, data);
}

Result<uint64_t> Process::Lseek(int fd, int64_t offset, Whence whence) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = fds_.find(fd);
  if (it == fds_.end()) {
    return ErrInvalidArgument("bad fd");
  }
  OpenFile& open = it->second;
  int64_t base = 0;
  switch (whence) {
    case Whence::kSet:
      base = 0;
      break;
    case Whence::kCur:
      base = static_cast<int64_t>(open.position);
      break;
    case Whence::kEnd: {
      ASSIGN_OR_RETURN(Offset length, open.file->GetLength());
      base = static_cast<int64_t>(length);
      break;
    }
  }
  int64_t target = base + offset;
  if (target < 0) {
    return ErrInvalidArgument("seek before start of file");
  }
  open.position = static_cast<uint64_t>(target);
  return open.position;
}

Result<StatBuf> Process::Fstat(int fd) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = fds_.find(fd);
  if (it == fds_.end()) {
    return ErrInvalidArgument("bad fd");
  }
  ASSIGN_OR_RETURN(FileAttributes attrs, it->second.file->Stat());
  return StatBuf{attrs.kind, attrs.size, attrs.nlink, attrs.atime_ns,
                 attrs.mtime_ns};
}

Status Process::Ftruncate(int fd, uint64_t size) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = fds_.find(fd);
  if (it == fds_.end()) {
    return ErrInvalidArgument("bad fd");
  }
  return it->second.file->SetLength(size);
}

Status Process::Fsync(int fd) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = fds_.find(fd);
  if (it == fds_.end()) {
    return ErrInvalidArgument("bad fd");
  }
  return it->second.file->SyncFile();
}

Result<StatBuf> Process::Stat(const std::string& path) {
  std::lock_guard<std::mutex> lock(mutex_);
  ASSIGN_OR_RETURN(sp<Object> object,
                   [&]() -> Result<sp<Object>> {
                     ASSIGN_OR_RETURN(Name name, Name::Parse(Absolute(path)));
                     return root_->Resolve(name, creds_);
                   }());
  if (sp<File> file = narrow<File>(object)) {
    ASSIGN_OR_RETURN(FileAttributes attrs, file->Stat());
    return StatBuf{attrs.kind, attrs.size, attrs.nlink, attrs.atime_ns,
                   attrs.mtime_ns};
  }
  if (narrow<Context>(object)) {
    StatBuf buf;
    buf.kind = FileKind::kDirectory;
    return buf;
  }
  return ErrWrongType("neither file nor directory");
}

Status Process::Mkdir(const std::string& path) {
  std::lock_guard<std::mutex> lock(mutex_);
  ASSIGN_OR_RETURN(Name name, Name::Parse(Absolute(path)));
  return root_->CreateContext(name, creds_).status();
}

Status Process::Unlink(const std::string& path) {
  std::lock_guard<std::mutex> lock(mutex_);
  ASSIGN_OR_RETURN(Name name, Name::Parse(Absolute(path)));
  return root_->Unbind(name, creds_);
}

Status Process::Rename(const std::string& from, const std::string& to) {
  std::lock_guard<std::mutex> lock(mutex_);
  ASSIGN_OR_RETURN(Name from_name, Name::Parse(Absolute(from)));
  ASSIGN_OR_RETURN(Name to_name, Name::Parse(Absolute(to)));
  ASSIGN_OR_RETURN(sp<Object> object, root_->Resolve(from_name, creds_));
  RETURN_IF_ERROR(root_->Bind(to_name, object, creds_, /*replace=*/false));
  Status removed = root_->Unbind(from_name, creds_);
  if (!removed.ok()) {
    // Roll the new binding back rather than leaving two names.
    (void)root_->Unbind(to_name, creds_);
    return removed;
  }
  return Status::Ok();
}

Result<std::vector<std::string>> Process::ListDir(const std::string& path) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string target = Absolute(path);
  sp<Context> dir;
  if (target.empty() || target == "/") {
    dir = root_;
  } else {
    ASSIGN_OR_RETURN(dir, ResolveAs<Context>(root_, target, creds_));
  }
  ASSIGN_OR_RETURN(std::vector<BindingInfo> entries, dir->List(creds_));
  std::vector<std::string> names;
  names.reserve(entries.size());
  for (const auto& entry : entries) {
    names.push_back(entry.name);
  }
  return names;
}

size_t Process::OpenFdCount() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return fds_.size();
}

}  // namespace springfs::posix
