// POSIX-style shim over the Spring name space (paper section 3.1: "Support
// for running UNIX binaries is also provided", reference [11]).
//
// This is the simplified equivalent: a per-process (per-domain) file
// descriptor table and the familiar open/read/write/lseek/stat vocabulary,
// implemented entirely against the Context/File interfaces. It works over
// *any* stack — SFS, COMPFS on SFS, a DFS client mount — which is exactly
// the point of typed, layer-agnostic interfaces.

#ifndef SPRINGFS_POSIX_POSIX_SHIM_H_
#define SPRINGFS_POSIX_POSIX_SHIM_H_

#include <map>
#include <string>

#include "src/fs/file.h"

namespace springfs::posix {

// open(2)-style flags (subset).
inline constexpr int kRdOnly = 0x0;
inline constexpr int kWrOnly = 0x1;
inline constexpr int kRdWr = 0x2;
inline constexpr int kCreate = 0x40;
inline constexpr int kTrunc = 0x200;
inline constexpr int kAppend = 0x400;
inline constexpr int kExcl = 0x80;

enum class Whence { kSet, kCur, kEnd };

struct StatBuf {
  FileKind kind = FileKind::kRegular;
  uint64_t size = 0;
  uint32_t nlink = 0;
  uint64_t atime_ns = 0;
  uint64_t mtime_ns = 0;
};

// One "process": an fd table plus a root context and working directory.
class Process {
 public:
  explicit Process(sp<Context> root,
                   Credentials creds = Credentials::User("posix"));

  // Changes/queries the working directory.
  Status Chdir(const std::string& path);
  const std::string& Cwd() const { return cwd_; }

  // --- file descriptors ---
  Result<int> Open(const std::string& path, int flags);
  Status Close(int fd);
  Result<size_t> Read(int fd, MutableByteSpan out);
  Result<size_t> Write(int fd, ByteSpan data);
  Result<size_t> Pread(int fd, uint64_t offset, MutableByteSpan out);
  Result<size_t> Pwrite(int fd, uint64_t offset, ByteSpan data);
  Result<uint64_t> Lseek(int fd, int64_t offset, Whence whence);
  Result<StatBuf> Fstat(int fd);
  Status Ftruncate(int fd, uint64_t size);
  Status Fsync(int fd);

  // --- paths ---
  Result<StatBuf> Stat(const std::string& path);
  Status Mkdir(const std::string& path);
  Status Unlink(const std::string& path);
  Status Rename(const std::string& from, const std::string& to);
  Result<std::vector<std::string>> ListDir(const std::string& path);

  size_t OpenFdCount() const;

 private:
  struct OpenFile {
    sp<File> file;
    uint64_t position = 0;
    int flags = 0;
  };

  // Joins cwd and path (absolute paths start at the root).
  std::string Absolute(const std::string& path) const;

  sp<Context> root_;
  Credentials creds_;
  std::string cwd_;
  mutable std::mutex mutex_;
  std::map<int, OpenFile> fds_;
  int next_fd_ = 3;  // 0/1/2 reserved in spirit
};

}  // namespace springfs::posix

#endif  // SPRINGFS_POSIX_POSIX_SHIM_H_
