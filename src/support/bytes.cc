#include "src/support/bytes.h"

#include <array>
#include <cstdio>

namespace springfs {
namespace {

std::array<uint32_t, 256> BuildCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

uint32_t Crc32(ByteSpan data, uint32_t seed) {
  static const std::array<uint32_t, 256> kTable = BuildCrcTable();
  uint32_t c = seed ^ 0xFFFFFFFFu;
  for (uint8_t byte : data) {
    c = kTable[(c ^ byte) & 0xFF] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

uint64_t Fnv1a64(ByteSpan data) {
  uint64_t hash = 0xcbf29ce484222325ull;
  for (uint8_t byte : data) {
    hash ^= byte;
    hash *= 0x100000001b3ull;
  }
  return hash;
}

std::string HexDump(ByteSpan data, size_t max_bytes) {
  std::string out;
  size_t n = std::min(data.size(), max_bytes);
  char tmp[4];
  for (size_t i = 0; i < n; ++i) {
    std::snprintf(tmp, sizeof(tmp), "%02x", data[i]);
    if (i != 0) {
      out += ' ';
    }
    out += tmp;
  }
  if (n < data.size()) {
    out += " ...";
  }
  return out;
}

}  // namespace springfs
