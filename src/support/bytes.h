// Byte-buffer utilities shared by the block device, VMM page cache, and the
// file-system layers. A Buffer is the unit of data movement between pagers
// and cache managers (the `data memory` parameter in the paper's Appendix A/B
// interfaces).

#ifndef SPRINGFS_SUPPORT_BYTES_H_
#define SPRINGFS_SUPPORT_BYTES_H_

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

namespace springfs {

using ByteSpan = std::span<const uint8_t>;
using MutableByteSpan = std::span<uint8_t>;

// Growable owned byte buffer with zero-fill semantics on resize.
class Buffer {
 public:
  Buffer() = default;
  explicit Buffer(size_t size) : bytes_(size, 0) {}
  Buffer(const void* data, size_t size)
      : bytes_(static_cast<const uint8_t*>(data),
               static_cast<const uint8_t*>(data) + size) {}
  explicit Buffer(ByteSpan span) : bytes_(span.begin(), span.end()) {}
  explicit Buffer(const std::string& s)
      : Buffer(s.data(), s.size()) {}

  size_t size() const { return bytes_.size(); }
  bool empty() const { return bytes_.empty(); }
  uint8_t* data() { return bytes_.data(); }
  const uint8_t* data() const { return bytes_.data(); }

  ByteSpan span() const { return ByteSpan(bytes_.data(), bytes_.size()); }
  MutableByteSpan mutable_span() {
    return MutableByteSpan(bytes_.data(), bytes_.size());
  }
  ByteSpan subspan(size_t offset, size_t count) const {
    return span().subspan(offset, count);
  }

  void resize(size_t size) { bytes_.resize(size, 0); }
  void clear() { bytes_.clear(); }

  void append(ByteSpan span) {
    bytes_.insert(bytes_.end(), span.begin(), span.end());
  }
  void append(const Buffer& other) { append(other.span()); }

  // Copies `src` into this buffer at `offset`, growing if needed.
  void WriteAt(size_t offset, ByteSpan src) {
    if (offset + src.size() > bytes_.size()) {
      bytes_.resize(offset + src.size(), 0);
    }
    if (!src.empty()) {  // empty spans have a null data() memcpy rejects
      std::memcpy(bytes_.data() + offset, src.data(), src.size());
    }
  }

  // Copies up to dst.size() bytes starting at `offset`; returns bytes copied
  // (short when offset is near or past the end).
  size_t ReadAt(size_t offset, MutableByteSpan dst) const {
    if (offset >= bytes_.size()) {
      return 0;
    }
    size_t n = std::min(dst.size(), bytes_.size() - offset);
    if (n != 0) {
      std::memcpy(dst.data(), bytes_.data() + offset, n);
    }
    return n;
  }

  std::string ToString() const {
    return std::string(reinterpret_cast<const char*>(bytes_.data()),
                       bytes_.size());
  }

  bool operator==(const Buffer& other) const { return bytes_ == other.bytes_; }

 private:
  std::vector<uint8_t> bytes_;
};

// CRC-32 (IEEE 802.3 polynomial, reflected). Used for on-disk integrity
// checks in the UFS substrate and for property tests.
uint32_t Crc32(ByteSpan data, uint32_t seed = 0);

// 64-bit FNV-1a hash; used for cache keys and content fingerprints in tests.
uint64_t Fnv1a64(ByteSpan data);

// Hex dump helper for diagnostics ("00 11 22 ..", at most max_bytes).
std::string HexDump(ByteSpan data, size_t max_bytes = 64);

}  // namespace springfs

#endif  // SPRINGFS_SUPPORT_BYTES_H_
