#include "src/support/clock.h"

namespace springfs {

Clock& DefaultClock() {
  static RealClock clock;
  return clock;
}

}  // namespace springfs
