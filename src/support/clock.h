// Clock abstraction. File-system timestamps (access/modify times, the
// attributes that the fs_cache/fs_pager interfaces keep coherent) come from
// a Clock so tests can control time deterministically; the latency models in
// the block device and network use real sleeping so benchmarks observe real
// cost ratios.

#ifndef SPRINGFS_SUPPORT_CLOCK_H_
#define SPRINGFS_SUPPORT_CLOCK_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <thread>

namespace springfs {

// Nanoseconds since an arbitrary epoch.
using TimeNs = uint64_t;

class Clock {
 public:
  virtual ~Clock() = default;

  // Current time.
  virtual TimeNs Now() const = 0;

  // Blocks the caller for `ns` nanoseconds of simulated device/network time.
  virtual void SleepNs(uint64_t ns) = 0;
};

// Wall-clock backed implementation. Sleeps below ~200us are implemented by
// spinning so device and network latencies stay accurate under benchmarks
// (OS timer slack would otherwise inflate them ~10x).
class RealClock : public Clock {
 public:
  TimeNs Now() const override {
    return static_cast<TimeNs>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }

  void SleepNs(uint64_t ns) override {
    if (ns == 0) {
      return;
    }
    if (ns < 200'000) {
      TimeNs deadline = Now() + ns;
      while (Now() < deadline) {
        // spin
      }
      return;
    }
    std::this_thread::sleep_for(std::chrono::nanoseconds(ns));
  }
};

// Manually advanced clock: Now() returns a counter; SleepNs advances it
// without blocking. Used by unit tests for deterministic timestamps and by
// throughput-shape tests that must not actually wait.
class FakeClock : public Clock {
 public:
  explicit FakeClock(TimeNs start = 1'000'000'000) : now_(start) {}

  TimeNs Now() const override { return now_.load(std::memory_order_relaxed); }
  void SleepNs(uint64_t ns) override {
    now_.fetch_add(ns, std::memory_order_relaxed);
  }
  void Advance(uint64_t ns) { SleepNs(ns); }

 private:
  std::atomic<TimeNs> now_;
};

// Process-wide default clock used where no clock is injected.
Clock& DefaultClock();

}  // namespace springfs

#endif  // SPRINGFS_SUPPORT_CLOCK_H_
