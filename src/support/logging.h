// Minimal leveled logging. Off by default so benchmarks are unperturbed;
// tests and examples can raise the level per-module.

#ifndef SPRINGFS_SUPPORT_LOGGING_H_
#define SPRINGFS_SUPPORT_LOGGING_H_

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace springfs {

enum class LogLevel : int { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

// Global threshold; messages below it are discarded.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal

#define SPRINGFS_LOG(level)                                                 \
  if (::springfs::LogLevel::level < ::springfs::GetLogLevel()) {            \
  } else                                                                    \
    ::springfs::internal::LogMessage(::springfs::LogLevel::level, __FILE__, \
                                     __LINE__)                              \
        .stream()

#define LOG_TRACE SPRINGFS_LOG(kTrace)
#define LOG_DEBUG SPRINGFS_LOG(kDebug)
#define LOG_INFO SPRINGFS_LOG(kInfo)
#define LOG_WARN SPRINGFS_LOG(kWarn)
#define LOG_ERROR SPRINGFS_LOG(kError)

// Invariant check that is active in all build types. Used for conditions
// whose violation means internal corruption (never for user input).
#define SPRINGFS_CHECK(cond)                                            \
  do {                                                                  \
    if (!(cond)) {                                                      \
      std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", __FILE__,     \
                   __LINE__, #cond);                                    \
      std::abort();                                                     \
    }                                                                   \
  } while (0)

}  // namespace springfs

#endif  // SPRINGFS_SUPPORT_LOGGING_H_
