#include "src/support/result.h"

namespace springfs {

const char* ErrorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk:
      return "kOk";
    case ErrorCode::kNotFound:
      return "kNotFound";
    case ErrorCode::kAlreadyExists:
      return "kAlreadyExists";
    case ErrorCode::kInvalidArgument:
      return "kInvalidArgument";
    case ErrorCode::kPermissionDenied:
      return "kPermissionDenied";
    case ErrorCode::kNotADirectory:
      return "kNotADirectory";
    case ErrorCode::kIsADirectory:
      return "kIsADirectory";
    case ErrorCode::kNotEmpty:
      return "kNotEmpty";
    case ErrorCode::kNoSpace:
      return "kNoSpace";
    case ErrorCode::kIoError:
      return "kIoError";
    case ErrorCode::kNotSupported:
      return "kNotSupported";
    case ErrorCode::kWrongType:
      return "kWrongType";
    case ErrorCode::kBusy:
      return "kBusy";
    case ErrorCode::kStale:
      return "kStale";
    case ErrorCode::kCorrupted:
      return "kCorrupted";
    case ErrorCode::kOutOfRange:
      return "kOutOfRange";
    case ErrorCode::kTimedOut:
      return "kTimedOut";
    case ErrorCode::kConnectionLost:
      return "kConnectionLost";
    case ErrorCode::kDeadObject:
      return "kDeadObject";
  }
  return "kUnknown";
}

std::string Status::ToString() const {
  if (ok()) {
    return "OK";
  }
  std::string out = ErrorCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace springfs
