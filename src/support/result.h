// Error model for springfs.
//
// All fallible operations across interface boundaries return Status (for
// void-returning operations) or Result<T>. Exceptions are not thrown across
// interface boundaries; this mirrors OS-systems practice where errors are
// values and control flow is explicit.

#ifndef SPRINGFS_SUPPORT_RESULT_H_
#define SPRINGFS_SUPPORT_RESULT_H_

#include <cassert>
#include <cstdint>
#include <string>
#include <utility>
#include <variant>

namespace springfs {

// Error codes used throughout the system. Kept deliberately close to the
// errno-style vocabulary a UNIX emulation layer (paper section 3.1) expects.
enum class ErrorCode : int32_t {
  kOk = 0,
  kNotFound,          // name or object does not exist
  kAlreadyExists,     // binding or file already present
  kInvalidArgument,   // malformed name, bad offset, bad length
  kPermissionDenied,  // ACL check failed or rights insufficient
  kNotADirectory,     // resolve stepped through a non-context
  kIsADirectory,      // file operation on a context
  kNotEmpty,          // unbind/remove of non-empty context
  kNoSpace,           // device or table exhausted
  kIoError,           // device-level failure
  kNotSupported,      // operation not implemented by this layer
  kWrongType,         // narrow failure
  kBusy,              // object in use (e.g. unmount with open files)
  kStale,             // handle refers to deleted object
  kCorrupted,         // on-disk structure failed validation
  kOutOfRange,        // offset beyond end where not allowed
  kTimedOut,          // simulated network or lock timeout
  kConnectionLost,    // remote node unreachable
  kDeadObject,        // server domain has been destroyed
};

// Human-readable name for an error code.
const char* ErrorCodeName(ErrorCode code);

// A Status is either OK or an error code plus a context message.
class [[nodiscard]] Status {
 public:
  Status() : code_(ErrorCode::kOk) {}
  explicit Status(ErrorCode code, std::string message = "")
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == ErrorCode::kOk; }
  ErrorCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // Renders "kNotFound: no such binding 'x'" style text.
  std::string ToString() const;

  bool operator==(const Status& other) const { return code_ == other.code_; }

 private:
  ErrorCode code_;
  std::string message_;
};

// Convenience constructors, e.g. ErrNotFound("no binding 'x'").
#define SPRINGFS_DEFINE_ERR(Name)                          \
  inline Status Err##Name(std::string message = "") {      \
    return Status(ErrorCode::k##Name, std::move(message)); \
  }
SPRINGFS_DEFINE_ERR(NotFound)
SPRINGFS_DEFINE_ERR(AlreadyExists)
SPRINGFS_DEFINE_ERR(InvalidArgument)
SPRINGFS_DEFINE_ERR(PermissionDenied)
SPRINGFS_DEFINE_ERR(NotADirectory)
SPRINGFS_DEFINE_ERR(IsADirectory)
SPRINGFS_DEFINE_ERR(NotEmpty)
SPRINGFS_DEFINE_ERR(NoSpace)
SPRINGFS_DEFINE_ERR(IoError)
SPRINGFS_DEFINE_ERR(NotSupported)
SPRINGFS_DEFINE_ERR(WrongType)
SPRINGFS_DEFINE_ERR(Busy)
SPRINGFS_DEFINE_ERR(Stale)
SPRINGFS_DEFINE_ERR(Corrupted)
SPRINGFS_DEFINE_ERR(OutOfRange)
SPRINGFS_DEFINE_ERR(TimedOut)
SPRINGFS_DEFINE_ERR(ConnectionLost)
SPRINGFS_DEFINE_ERR(DeadObject)
#undef SPRINGFS_DEFINE_ERR

// Result<T> is either a value of type T or an error Status.
template <typename T>
class [[nodiscard]] Result {
 public:
  // Implicit from value: `return 42;`
  Result(T value) : state_(std::move(value)) {}
  // Implicit from error Status: `return ErrNotFound(...);`
  Result(Status status) : state_(std::move(status)) {
    assert(!std::get<Status>(state_).ok() && "Result constructed from OK status");
  }

  bool ok() const { return std::holds_alternative<T>(state_); }

  const T& value() const& {
    assert(ok());
    return std::get<T>(state_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(state_);
  }
  T&& take_value() {
    assert(ok());
    return std::move(std::get<T>(state_));
  }

  // The error status; OK if this holds a value.
  Status status() const {
    if (ok()) {
      return Status::Ok();
    }
    return std::get<Status>(state_);
  }
  ErrorCode code() const { return status().code(); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> state_;
};

// Propagate an error Status from an expression returning Status.
#define RETURN_IF_ERROR(expr)              \
  do {                                     \
    ::springfs::Status _st = (expr);       \
    if (!_st.ok()) {                       \
      return _st;                          \
    }                                      \
  } while (0)

// Assign a Result's value to `lhs` or propagate its error.
// Usage: ASSIGN_OR_RETURN(auto v, SomeCall());
#define ASSIGN_OR_RETURN(lhs, expr)             \
  ASSIGN_OR_RETURN_IMPL_(                       \
      SPRINGFS_CONCAT_(_res_, __LINE__), lhs, expr)
#define ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr)  \
  auto tmp = (expr);                            \
  if (!tmp.ok()) {                              \
    return tmp.status();                        \
  }                                             \
  lhs = tmp.take_value()
#define SPRINGFS_CONCAT_(a, b) SPRINGFS_CONCAT2_(a, b)
#define SPRINGFS_CONCAT2_(a, b) a##b

}  // namespace springfs

#endif  // SPRINGFS_SUPPORT_RESULT_H_
