// Deterministic pseudo-random number generator (xoshiro256**) for property
// tests and workload generators. All randomized tests take an explicit seed
// so failures reproduce exactly.

#ifndef SPRINGFS_SUPPORT_RNG_H_
#define SPRINGFS_SUPPORT_RNG_H_

#include <cstdint>

#include "src/support/bytes.h"

namespace springfs {

class Rng {
 public:
  explicit Rng(uint64_t seed) {
    // SplitMix64 seeding to fill the xoshiro state from one word.
    uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9E3779B97f4A7C15ull;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      s = z ^ (z >> 31);
    }
  }

  uint64_t Next() {
    uint64_t* s = state_;
    uint64_t result = Rotl(s[1] * 5, 7) * 9;
    uint64_t t = s[1] << 17;
    s[2] ^= s[0];
    s[3] ^= s[1];
    s[1] ^= s[2];
    s[0] ^= s[3];
    s[2] ^= t;
    s[3] = Rotl(s[3], 45);
    return result;
  }

  // Uniform integer in [0, bound). bound must be > 0.
  uint64_t Below(uint64_t bound) { return Next() % bound; }

  // Uniform integer in [lo, hi] inclusive.
  uint64_t Range(uint64_t lo, uint64_t hi) { return lo + Below(hi - lo + 1); }

  // True with probability num/den.
  bool Chance(uint64_t num, uint64_t den) { return Below(den) < num; }

  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  // Fills `dst` with random bytes.
  void Fill(MutableByteSpan dst) {
    size_t i = 0;
    while (i + 8 <= dst.size()) {
      uint64_t v = Next();
      for (int b = 0; b < 8; ++b) {
        dst[i++] = static_cast<uint8_t>(v >> (8 * b));
      }
    }
    if (i < dst.size()) {
      uint64_t v = Next();
      while (i < dst.size()) {
        dst[i++] = static_cast<uint8_t>(v);
        v >>= 8;
      }
    }
  }

  Buffer RandomBuffer(size_t size) {
    Buffer buf(size);
    Fill(buf.mutable_span());
    return buf;
  }

  // Compressible data: runs of repeated bytes with random run lengths, the
  // kind of content COMPFS benchmarks want.
  Buffer CompressibleBuffer(size_t size, uint64_t max_run = 64) {
    Buffer buf(size);
    size_t i = 0;
    while (i < size) {
      uint8_t value = static_cast<uint8_t>(Next());
      size_t run = static_cast<size_t>(Range(1, max_run));
      for (size_t k = 0; k < run && i < size; ++k) {
        buf.data()[i++] = value;
      }
    }
    return buf;
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
};

}  // namespace springfs

#endif  // SPRINGFS_SUPPORT_RNG_H_
