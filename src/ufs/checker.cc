#include "src/ufs/checker.h"

#include <deque>
#include <map>
#include <set>

namespace springfs::ufs {

std::string CheckReport::Summary() const {
  std::string out = "checked " + std::to_string(inodes_checked) + " inodes, " +
                    std::to_string(blocks_referenced) + " data blocks, " +
                    std::to_string(directories_walked) + " directories: ";
  if (clean()) {
    out += "clean";
  } else {
    out += std::to_string(errors.size()) + " error(s)";
    for (const auto& err : errors) {
      out += "\n  - " + err;
    }
  }
  return out;
}

Result<CheckReport> Checker::Check() {
  CheckReport report;
  Buffer block(kBlockSize);

  RETURN_IF_ERROR(device_->ReadBlock(0, block.mutable_span()));
  Result<Superblock> sb_result = Superblock::Decode(block.span());
  if (!sb_result.ok()) {
    report.errors.push_back("superblock: " + sb_result.status().ToString());
    return report;
  }
  Superblock sb = sb_result.take_value();
  if (sb.num_blocks > device_->num_blocks()) {
    report.errors.push_back("superblock block count exceeds device");
    return report;
  }
  // The data area ends where the (optional) journal region begins.
  const uint64_t data_end = sb.jnl_start();
  if (sb.data_start >= data_end) {
    report.errors.push_back("superblock geometry leaves no data area");
    return report;
  }

  // Load bitmaps.
  auto load_bitmap = [&](uint64_t start, uint64_t bits) -> Result<std::vector<uint8_t>> {
    std::vector<uint8_t> raw((bits + 7) / 8, 0);
    uint64_t nblocks = (bits + 8ull * kBlockSize - 1) / (8ull * kBlockSize);
    for (uint64_t b = 0; b < nblocks; ++b) {
      RETURN_IF_ERROR(device_->ReadBlock(start + b, block.mutable_span()));
      size_t offset = b * kBlockSize;
      size_t count = std::min<size_t>(kBlockSize, raw.size() - offset);
      std::memcpy(raw.data() + offset, block.data(), count);
    }
    return raw;
  };
  auto bit_of = [](const std::vector<uint8_t>& raw, uint64_t bit) {
    return (raw[bit / 8] >> (bit % 8)) & 1;
  };

  ASSIGN_OR_RETURN(std::vector<uint8_t> inode_bits,
                   load_bitmap(sb.ibm_start, sb.num_inodes));
  ASSIGN_OR_RETURN(std::vector<uint8_t> data_bits,
                   load_bitmap(sb.dbm_start, sb.num_blocks));

  // Decode all allocated inodes.
  std::map<InodeNum, Inode> inodes;
  for (InodeNum ino = 1; ino < sb.num_inodes; ++ino) {
    if (!bit_of(inode_bits, ino)) {
      continue;
    }
    BlockNum itb_block = sb.itb_start + ino / kInodesPerBlock;
    RETURN_IF_ERROR(device_->ReadBlock(itb_block, block.mutable_span()));
    size_t slot = (ino % kInodesPerBlock) * kInodeSize;
    Result<Inode> decoded = Inode::Decode(block.subspan(slot, kInodeSize));
    if (!decoded.ok()) {
      report.errors.push_back("inode " + std::to_string(ino) + ": " +
                              decoded.status().ToString());
      continue;
    }
    Inode inode = decoded.take_value();
    if (inode.IsFree()) {
      report.errors.push_back("inode " + std::to_string(ino) +
                              " allocated in bitmap but marked free");
      continue;
    }
    if (inode.type != FileType::kRegular &&
        inode.type != FileType::kDirectory &&
        inode.type != FileType::kSymlink) {
      report.errors.push_back("inode " + std::to_string(ino) +
                              " has invalid type");
      continue;
    }
    inodes[ino] = inode;
    ++report.inodes_checked;
  }

  if (inodes.find(kRootInode) == inodes.end()) {
    report.errors.push_back("root inode missing");
  } else if (inodes[kRootInode].type != FileType::kDirectory) {
    report.errors.push_back("root inode is not a directory");
  }

  // Walk every inode's block tree; each data block must be referenced once.
  std::map<BlockNum, InodeNum> referenced;
  auto reference = [&](InodeNum ino, BlockNum b) {
    if (b == 0) {
      return;
    }
    if (b < sb.data_start || b >= data_end) {
      report.errors.push_back("inode " + std::to_string(ino) +
                              " references out-of-area block " +
                              std::to_string(b));
      return;
    }
    auto [it, inserted] = referenced.emplace(b, ino);
    if (!inserted) {
      report.errors.push_back("block " + std::to_string(b) +
                              " referenced by inodes " +
                              std::to_string(it->second) + " and " +
                              std::to_string(ino));
      return;
    }
    if (!bit_of(data_bits, b)) {
      report.errors.push_back("block " + std::to_string(b) +
                              " referenced but free in bitmap");
    }
    ++report.blocks_referenced;
  };

  Buffer ptr_block(kBlockSize);
  Buffer ptr_block2(kBlockSize);
  for (const auto& [ino, inode] : inodes) {
    for (uint32_t i = 0; i < kNumDirect; ++i) {
      reference(ino, inode.direct[i]);
    }
    if (inode.indirect != 0) {
      reference(ino, inode.indirect);
      RETURN_IF_ERROR(device_->ReadBlock(inode.indirect,
                                         ptr_block.mutable_span()));
      for (uint32_t i = 0; i < kPtrsPerBlock; ++i) {
        reference(ino, GetU64(ptr_block.data() + 8 * i));
      }
    }
    if (inode.dindirect != 0) {
      reference(ino, inode.dindirect);
      RETURN_IF_ERROR(device_->ReadBlock(inode.dindirect,
                                         ptr_block.mutable_span()));
      for (uint32_t o = 0; o < kPtrsPerBlock; ++o) {
        BlockNum level2 = GetU64(ptr_block.data() + 8 * o);
        if (level2 == 0) {
          continue;
        }
        reference(ino, level2);
        if (level2 < sb.data_start || level2 >= data_end) {
          continue;
        }
        RETURN_IF_ERROR(device_->ReadBlock(level2, ptr_block2.mutable_span()));
        for (uint32_t i = 0; i < kPtrsPerBlock; ++i) {
          reference(ino, GetU64(ptr_block2.data() + 8 * i));
        }
      }
    }
  }

  // Allocated-but-unreferenced data blocks (leaks).
  uint64_t free_blocks = 0;
  for (BlockNum b = sb.data_start; b < data_end; ++b) {
    bool allocated = bit_of(data_bits, b);
    if (!allocated) {
      ++free_blocks;
      continue;
    }
    if (referenced.find(b) == referenced.end()) {
      report.errors.push_back("block " + std::to_string(b) +
                              " allocated but unreferenced (leak)");
    }
  }
  if (free_blocks != sb.free_blocks) {
    report.errors.push_back(
        "superblock free_blocks=" + std::to_string(sb.free_blocks) +
        " but bitmap says " + std::to_string(free_blocks));
  }
  uint64_t free_inodes = 0;
  for (InodeNum ino = 0; ino < sb.num_inodes; ++ino) {
    if (!bit_of(inode_bits, ino)) {
      ++free_inodes;
    }
  }
  if (free_inodes != sb.free_inodes) {
    report.errors.push_back(
        "superblock free_inodes=" + std::to_string(sb.free_inodes) +
        " but bitmap says " + std::to_string(free_inodes));
  }

  // Directory walk from the root: entries must name allocated inodes; count
  // references for link-count validation and reachability.
  std::map<InodeNum, uint32_t> ref_counts;
  std::set<InodeNum> reachable;
  std::deque<InodeNum> queue;
  if (inodes.count(kRootInode) != 0) {
    queue.push_back(kRootInode);
    reachable.insert(kRootInode);
    ref_counts[kRootInode] = 1;  // the implicit mount reference
  }
  auto map_file_block = [&](const Inode& inode,
                            uint64_t fb) -> Result<BlockNum> {
    if (fb < kNumDirect) {
      return BlockNum{inode.direct[fb]};
    }
    fb -= kNumDirect;
    if (fb < kPtrsPerBlock) {
      if (inode.indirect == 0) {
        return BlockNum{0};
      }
      RETURN_IF_ERROR(device_->ReadBlock(inode.indirect,
                                         ptr_block.mutable_span()));
      return BlockNum{GetU64(ptr_block.data() + 8 * fb)};
    }
    fb -= kPtrsPerBlock;
    if (inode.dindirect == 0) {
      return BlockNum{0};
    }
    RETURN_IF_ERROR(device_->ReadBlock(inode.dindirect,
                                       ptr_block.mutable_span()));
    BlockNum level2 = GetU64(ptr_block.data() + 8 * (fb / kPtrsPerBlock));
    if (level2 == 0) {
      return BlockNum{0};
    }
    RETURN_IF_ERROR(device_->ReadBlock(level2, ptr_block2.mutable_span()));
    return BlockNum{GetU64(ptr_block2.data() + 8 * (fb % kPtrsPerBlock))};
  };

  while (!queue.empty()) {
    InodeNum dir = queue.front();
    queue.pop_front();
    const Inode& dir_inode = inodes[dir];
    ++report.directories_walked;
    uint64_t nblocks = (dir_inode.size + kBlockSize - 1) / kBlockSize;
    for (uint64_t fb = 0; fb < nblocks; ++fb) {
      ASSIGN_OR_RETURN(BlockNum dev_block, map_file_block(dir_inode, fb));
      if (dev_block == 0) {
        continue;
      }
      RETURN_IF_ERROR(device_->ReadBlock(dev_block, block.mutable_span()));
      for (uint32_t e = 0; e < kDirEntriesPerBlock; ++e) {
        DirEntry entry = DirEntry::Decode(block.subspan(e * kDirEntrySize,
                                                        kDirEntrySize));
        if (entry.ino == kInvalidInode) {
          continue;
        }
        auto target = inodes.find(entry.ino);
        if (target == inodes.end()) {
          report.errors.push_back("directory " + std::to_string(dir) +
                                  " entry '" + entry.name +
                                  "' names unallocated inode " +
                                  std::to_string(entry.ino));
          continue;
        }
        ref_counts[entry.ino]++;
        if (reachable.insert(entry.ino).second &&
            target->second.type == FileType::kDirectory) {
          queue.push_back(entry.ino);
        }
      }
    }
  }

  for (const auto& [ino, inode] : inodes) {
    uint32_t refs = ref_counts.count(ino) ? ref_counts[ino] : 0;
    if (inode.nlink != refs) {
      report.errors.push_back("inode " + std::to_string(ino) + " nlink=" +
                              std::to_string(inode.nlink) + " but " +
                              std::to_string(refs) + " references");
    }
    if (reachable.find(ino) == reachable.end()) {
      report.errors.push_back("inode " + std::to_string(ino) +
                              " unreachable from root (orphan)");
    }
  }

  return report;
}

}  // namespace springfs::ufs
