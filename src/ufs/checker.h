// fsck-style consistency checker for the UFS substrate. Property tests run
// random workloads and then assert a clean check; corruption tests flip
// on-disk bits and assert the checker notices.

#ifndef SPRINGFS_UFS_CHECKER_H_
#define SPRINGFS_UFS_CHECKER_H_

#include <string>
#include <vector>

#include "src/blockdev/block_device.h"
#include "src/ufs/layout.h"

namespace springfs::ufs {

struct CheckReport {
  std::vector<std::string> errors;
  uint64_t inodes_checked = 0;
  uint64_t blocks_referenced = 0;
  uint64_t directories_walked = 0;

  bool clean() const { return errors.empty(); }
  std::string Summary() const;
};

// Offline checker: operates on the raw device (the file system must be
// synced/unmounted). Verifies:
//  * superblock decodes and its geometry fits the device
//  * every allocated inode decodes and has a valid type
//  * every block referenced by any inode is inside the data area, marked
//    allocated, and referenced exactly once
//  * the data bitmap has no allocated-but-unreferenced data blocks
//  * free counts in the superblock match the bitmaps
//  * every directory entry names an allocated inode
//  * link counts match the number of directory references
//  * all inodes are reachable from the root directory
class Checker {
 public:
  explicit Checker(BlockDevice* device) : device_(device) {}

  Result<CheckReport> Check();

 private:
  BlockDevice* device_;
};

}  // namespace springfs::ufs

#endif  // SPRINGFS_UFS_CHECKER_H_
