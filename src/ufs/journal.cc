#include "src/ufs/journal.h"

#include "src/support/logging.h"

namespace springfs::ufs {
namespace {

// Commit-record field offsets (all within the first commit block).
constexpr size_t kCrMagic = 0;
constexpr size_t kCrVersion = 4;
constexpr size_t kCrTxId = 8;
constexpr size_t kCrNumRecords = 16;
constexpr size_t kCrDescCrc = 24;
constexpr size_t kCrCrc = 28;  // CRC over bytes [0, kCrCrc)

constexpr uint32_t kJournalVersion = 1;
constexpr uint64_t kDescEntrySize = 16;  // home block u64 + payload tag u64

uint64_t DescBlocksFor(uint64_t num_records) {
  return (num_records * kDescEntrySize + kBlockSize - 1) / kBlockSize;
}

// Integrity tag for a journaled payload. Deliberately NOT Crc32: the
// superblock embeds its own Crc32 as a trailer, which by the CRC residue
// property gives every valid superblock block the same CRC32 — any two
// valid superblocks differ by a CRC codeword, so a linear check (seeded or
// not) cannot tell them apart. Successive transactions reuse the same
// journal slots, so a torn payload write from tx N+1 landing in tx N's
// slot could otherwise masquerade as tx N's record and make replay apply
// a mix of two transactions. FNV-1a is non-linear, and folding in the tx
// id and home block also rejects stale slot contents left by other
// transactions.
uint64_t PayloadTag(uint64_t tx_id, uint64_t home, ByteSpan payload) {
  uint64_t tag = Fnv1a64(payload);
  tag ^= tx_id * 0x9E3779B97F4A7C15ull;
  tag ^= home * 0xC2B2AE3D27D4EB4Full;
  return tag;
}

}  // namespace

Journal::Journal(BlockDevice* device, uint64_t jnl_start)
    : device_(device), jnl_start_(jnl_start) {
  SPRINGFS_CHECK(jnl_start_ < device_->num_blocks());
}

bool Journal::Fits(uint64_t num_records) const {
  uint64_t jnl_blocks = device_->num_blocks() - jnl_start_;
  return 1 + DescBlocksFor(num_records) + num_records <= jnl_blocks;
}

Status Journal::Commit(uint64_t tx_id,
                       const std::map<BlockNum, Buffer>& blocks) {
  if (tx_id == 0) {
    return ErrInvalidArgument("journal tx id 0 is reserved");
  }
  uint64_t n = blocks.size();
  if (n == 0) {
    return ErrInvalidArgument("empty journal transaction");
  }
  if (!Fits(n)) {
    return ErrNoSpace("transaction of " + std::to_string(n) +
                      " blocks exceeds journal capacity");
  }
  uint64_t nb = device_->num_blocks();
  uint64_t desc_blocks = DescBlocksFor(n);
  uint64_t desc_lo = nb - 1 - desc_blocks;
  uint64_t payload_lo = desc_lo - n;

  // Payloads plus the descriptor table; the commit record is written last
  // so that, under the crash model where any unflushed subset may be
  // dropped, a commit record without its records fails its CRC checks.
  Buffer desc(desc_blocks * kBlockSize);
  uint64_t i = 0;
  for (const auto& [home, payload] : blocks) {
    SPRINGFS_CHECK(payload.size() == kBlockSize);
    SPRINGFS_CHECK(home < payload_lo);  // homes never point into the journal
    uint8_t* e = desc.data() + i * kDescEntrySize;
    PutU64(e + 0, home);
    PutU64(e + 8, PayloadTag(tx_id, home, payload.span()));
    RETURN_IF_ERROR(device_->WriteBlock(payload_lo + i, payload.span()));
    ++i;
  }
  for (uint64_t b = 0; b < desc_blocks; ++b) {
    RETURN_IF_ERROR(device_->WriteBlock(
        desc_lo + b, desc.subspan(b * kBlockSize, kBlockSize)));
  }

  Buffer commit(kBlockSize);
  uint8_t* p = commit.data();
  PutU32(p + kCrMagic, kJournalMagic);
  PutU32(p + kCrVersion, kJournalVersion);
  PutU64(p + kCrTxId, tx_id);
  PutU64(p + kCrNumRecords, n);
  PutU32(p + kCrDescCrc, Crc32(desc.subspan(0, n * kDescEntrySize)));
  PutU32(p + kCrCrc, Crc32(commit.subspan(0, kCrCrc)));
  RETURN_IF_ERROR(device_->WriteBlock(nb - 1, commit.span()));
  return device_->Flush();
}

Result<ReplayReport> Journal::Replay(BlockDevice* device) {
  ReplayReport report;
  uint64_t nb = device->num_blocks();
  if (nb < 4) {
    return report;
  }
  Buffer commit(kBlockSize);
  RETURN_IF_ERROR(device->ReadBlock(nb - 1, commit.mutable_span()));
  const uint8_t* p = commit.data();
  if (GetU32(p + kCrMagic) != kJournalMagic ||
      GetU32(p + kCrVersion) != kJournalVersion ||
      GetU32(p + kCrCrc) != Crc32(commit.subspan(0, kCrCrc))) {
    return report;
  }
  uint64_t tx_id = GetU64(p + kCrTxId);
  uint64_t n = GetU64(p + kCrNumRecords);
  if (tx_id == 0 || n == 0 || n >= nb) {
    return report;
  }
  uint64_t desc_blocks = DescBlocksFor(n);
  if (1 + desc_blocks + n >= nb) {  // region must leave room for block 0
    return report;
  }
  uint64_t desc_lo = nb - 1 - desc_blocks;
  uint64_t payload_lo = desc_lo - n;

  Buffer desc(desc_blocks * kBlockSize);
  for (uint64_t b = 0; b < desc_blocks; ++b) {
    RETURN_IF_ERROR(device->ReadBlock(
        desc_lo + b, desc.mutable_span().subspan(b * kBlockSize, kBlockSize)));
  }
  if (GetU32(p + kCrDescCrc) != Crc32(desc.subspan(0, n * kDescEntrySize))) {
    return report;
  }

  // Validate every record before applying any: a single torn payload
  // invalidates the whole transaction.
  std::map<BlockNum, Buffer> records;
  Buffer payload(kBlockSize);
  for (uint64_t i = 0; i < n; ++i) {
    const uint8_t* e = desc.data() + i * kDescEntrySize;
    uint64_t home = GetU64(e + 0);
    if (home >= payload_lo) {
      return report;
    }
    RETURN_IF_ERROR(device->ReadBlock(payload_lo + i, payload.mutable_span()));
    if (GetU64(e + 8) != PayloadTag(tx_id, home, payload.span())) {
      return report;
    }
    records[home] = payload;
  }

  for (const auto& [home, data] : records) {
    RETURN_IF_ERROR(device->WriteBlock(home, data.span()));
  }
  RETURN_IF_ERROR(device->Flush());
  report.tx_id = tx_id;
  report.blocks_replayed = records.size();
  return report;
}

}  // namespace springfs::ufs
