// Write-ahead (redo) journal for the UFS substrate.
//
// The journal turns each Ufs::Sync into an atomic transaction: every block
// that is already referenced by durable metadata (superblock, bitmaps,
// inode table, directory and indirect blocks, and in-place data overwrites)
// is first written to the journal region together with a checksummed commit
// record, flushed, and only then written in place. Recovery scans the
// journal on mount and redoes the last committed transaction, so a crash at
// any point leaves the file system either wholly before or wholly after the
// transaction — never in between.
//
// On-disk layout, inside [jnl_start, num_blocks):
//
//   [region_low, desc_lo)      record payloads, one full block each
//   [desc_lo, num_blocks - 1)  descriptor table: 12 bytes per record
//                              (home block u64, payload CRC u32), packed
//   num_blocks - 1             commit record (written last)
//
// The commit record lives at a fixed location (the device's last block) so
// that recovery needs nothing else to find it — in particular, not the
// superblock, whose in-place update is itself journaled and may be torn at
// the crash point. A commit record is only believed if its own CRC, the
// descriptor-table CRC, and every record payload CRC all verify; a torn or
// reordered journal write therefore invalidates the whole transaction and
// recovery falls back to the previous durable state.
//
// Each transaction overwrites the previous one: because a transaction's
// home-location writes are flushed before the next transaction starts, only
// the most recent committed transaction can ever be un-applied.

#ifndef SPRINGFS_UFS_JOURNAL_H_
#define SPRINGFS_UFS_JOURNAL_H_

#include <map>

#include "src/blockdev/block_device.h"
#include "src/ufs/layout.h"

namespace springfs::ufs {

inline constexpr uint32_t kJournalMagic = 0x4C4E4A53;  // "SJNL"

// Result of a recovery scan.
struct ReplayReport {
  uint64_t tx_id = 0;        // 0 when no committed transaction was found
  uint64_t blocks_replayed = 0;
};

class Journal {
 public:
  // The journal occupies [jnl_start, device->num_blocks()).
  Journal(BlockDevice* device, uint64_t jnl_start);

  uint64_t jnl_start() const { return jnl_start_; }

  // True when a transaction of `num_records` blocks fits in the region
  // (payloads + descriptor blocks + commit record).
  bool Fits(uint64_t num_records) const;

  // Writes `blocks` (home block -> new content) plus descriptors and the
  // commit record for transaction `tx_id`, then flushes the device. After
  // this returns OK the transaction is durable; the caller then writes the
  // blocks to their home locations.
  Status Commit(uint64_t tx_id, const std::map<BlockNum, Buffer>& blocks);

  // Scans the device tail for a committed transaction and, if the commit
  // record, descriptor table, and all payloads verify, rewrites every
  // record to its home location and flushes. Idempotent; returns tx_id 0
  // (not an error) when no valid committed transaction exists.
  static Result<ReplayReport> Replay(BlockDevice* device);

 private:
  BlockDevice* device_;
  uint64_t jnl_start_;
};

}  // namespace springfs::ufs

#endif  // SPRINGFS_UFS_JOURNAL_H_
