#include "src/ufs/layout.h"

#include "src/support/logging.h"

#include <algorithm>

namespace springfs::ufs {
namespace {

// Superblock field offsets.
constexpr size_t kSbCrcOffset = 120;

uint64_t CeilDiv(uint64_t a, uint64_t b) { return (a + b - 1) / b; }

}  // namespace

void Superblock::Encode(MutableByteSpan block) const {
  SPRINGFS_CHECK(block.size() >= kBlockSize);
  std::memset(block.data(), 0, kBlockSize);
  uint8_t* p = block.data();
  PutU32(p + 0, magic);
  PutU32(p + 4, version);
  PutU64(p + 8, num_blocks);
  PutU64(p + 16, num_inodes);
  PutU64(p + 24, ibm_start);
  PutU64(p + 32, ibm_blocks);
  PutU64(p + 40, dbm_start);
  PutU64(p + 48, dbm_blocks);
  PutU64(p + 56, itb_start);
  PutU64(p + 64, itb_blocks);
  PutU64(p + 72, data_start);
  PutU64(p + 80, free_blocks);
  PutU64(p + 88, free_inodes);
  PutU32(p + 96, clean);
  PutU64(p + 100, jnl_blocks);
  PutU64(p + 108, last_tx);
  uint32_t crc = Crc32(ByteSpan(p, kSbCrcOffset));
  PutU32(p + kSbCrcOffset, crc);
}

Result<Superblock> Superblock::Decode(ByteSpan block) {
  if (block.size() < kBlockSize) {
    return ErrInvalidArgument("superblock span too small");
  }
  const uint8_t* p = block.data();
  uint32_t stored_crc = GetU32(p + kSbCrcOffset);
  uint32_t computed_crc = Crc32(ByteSpan(p, kSbCrcOffset));
  if (stored_crc != computed_crc) {
    return ErrCorrupted("superblock CRC mismatch");
  }
  Superblock sb;
  sb.magic = GetU32(p + 0);
  if (sb.magic != kMagic) {
    return ErrCorrupted("bad superblock magic");
  }
  sb.version = GetU32(p + 4);
  if (sb.version != kVersion) {
    return ErrCorrupted("unsupported superblock version");
  }
  sb.num_blocks = GetU64(p + 8);
  sb.num_inodes = GetU64(p + 16);
  sb.ibm_start = GetU64(p + 24);
  sb.ibm_blocks = GetU64(p + 32);
  sb.dbm_start = GetU64(p + 40);
  sb.dbm_blocks = GetU64(p + 48);
  sb.itb_start = GetU64(p + 56);
  sb.itb_blocks = GetU64(p + 64);
  sb.data_start = GetU64(p + 72);
  sb.free_blocks = GetU64(p + 80);
  sb.free_inodes = GetU64(p + 88);
  sb.clean = GetU32(p + 96);
  sb.jnl_blocks = GetU64(p + 100);
  sb.last_tx = GetU64(p + 108);
  if (sb.jnl_blocks >= sb.num_blocks) {
    return ErrCorrupted("journal larger than the device");
  }
  return sb;
}

namespace {
constexpr size_t kInodeCrcOffset = 160;
}  // namespace

void Inode::Encode(MutableByteSpan slot) const {
  SPRINGFS_CHECK(slot.size() >= kInodeSize);
  std::memset(slot.data(), 0, kInodeSize);
  uint8_t* p = slot.data();
  PutU32(p + 0, static_cast<uint32_t>(type));
  PutU32(p + 4, nlink);
  PutU64(p + 8, size);
  PutU64(p + 16, atime_ns);
  PutU64(p + 24, mtime_ns);
  PutU64(p + 32, ctime_ns);
  for (uint32_t i = 0; i < kNumDirect; ++i) {
    PutU64(p + 40 + 8 * i, direct[i]);
  }
  PutU64(p + 136, indirect);
  PutU64(p + 144, dindirect);
  PutU64(p + 152, generation);
  uint32_t crc = Crc32(ByteSpan(p, kInodeCrcOffset));
  PutU32(p + kInodeCrcOffset, crc);
}

Result<Inode> Inode::Decode(ByteSpan slot) {
  if (slot.size() < kInodeSize) {
    return ErrInvalidArgument("inode span too small");
  }
  const uint8_t* p = slot.data();
  uint32_t stored_crc = GetU32(p + kInodeCrcOffset);
  uint32_t computed_crc = Crc32(ByteSpan(p, kInodeCrcOffset));
  if (stored_crc != computed_crc) {
    return ErrCorrupted("inode CRC mismatch");
  }
  Inode inode;
  inode.type = static_cast<FileType>(GetU32(p + 0));
  inode.nlink = GetU32(p + 4);
  inode.size = GetU64(p + 8);
  inode.atime_ns = GetU64(p + 16);
  inode.mtime_ns = GetU64(p + 24);
  inode.ctime_ns = GetU64(p + 32);
  for (uint32_t i = 0; i < kNumDirect; ++i) {
    inode.direct[i] = GetU64(p + 40 + 8 * i);
  }
  inode.indirect = GetU64(p + 136);
  inode.dindirect = GetU64(p + 144);
  inode.generation = GetU64(p + 152);
  return inode;
}

void DirEntry::Encode(MutableByteSpan slot) const {
  SPRINGFS_CHECK(slot.size() >= kDirEntrySize);
  SPRINGFS_CHECK(name.size() <= kMaxNameLen);
  std::memset(slot.data(), 0, kDirEntrySize);
  uint8_t* p = slot.data();
  PutU64(p + 0, ino);
  PutU16(p + 8, static_cast<uint16_t>(name.size()));
  std::memcpy(p + 10, name.data(), name.size());
}

DirEntry DirEntry::Decode(ByteSpan slot) {
  DirEntry entry;
  const uint8_t* p = slot.data();
  entry.ino = GetU64(p + 0);
  uint16_t name_len = std::min<uint16_t>(GetU16(p + 8), kMaxNameLen);
  entry.name.assign(reinterpret_cast<const char*>(p + 10), name_len);
  return entry;
}

Result<Geometry> Geometry::Compute(uint64_t num_blocks, uint64_t num_inodes,
                                   uint64_t jnl_blocks) {
  if (num_blocks < 16) {
    return ErrInvalidArgument("device too small to format");
  }
  if (jnl_blocks >= num_blocks) {
    return ErrInvalidArgument("journal larger than the device");
  }
  Geometry g;
  g.num_blocks = num_blocks;
  g.num_inodes = num_inodes != 0 ? num_inodes : std::max<uint64_t>(num_blocks / 4, 16);
  g.ibm_start = 1;
  g.ibm_blocks = CeilDiv(g.num_inodes, 8ull * kBlockSize);
  g.dbm_start = g.ibm_start + g.ibm_blocks;
  g.dbm_blocks = CeilDiv(num_blocks, 8ull * kBlockSize);
  g.itb_start = g.dbm_start + g.dbm_blocks;
  g.itb_blocks = CeilDiv(g.num_inodes, kInodesPerBlock);
  g.data_start = g.itb_start + g.itb_blocks;
  g.jnl_blocks = jnl_blocks;
  g.jnl_start = num_blocks - jnl_blocks;
  if (g.data_start + 4 > g.jnl_start) {
    return ErrInvalidArgument("device too small for metadata + data");
  }
  return g;
}

}  // namespace springfs::ufs
