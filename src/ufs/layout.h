// On-disk layout of the UFS-like base file system (paper reference [14]).
//
// The disk layer of Spring SFS implements "an on-disk UFS compatible file
// system" (section 6.2). This module defines a from-scratch equivalent:
//
//   block 0                  superblock
//   [ibm_start, +ibm_blocks) inode allocation bitmap
//   [dbm_start, +dbm_blocks) data-block allocation bitmap
//   [itb_start, +itb_blocks) inode table (kInodesPerBlock per block)
//   [data_start, jnl_start)  data blocks
//   [jnl_start, num_blocks)  write-ahead journal (optional; jnl_blocks may
//                            be 0, in which case data runs to num_blocks)
//
// The journal is pinned to the *end* of the device so that crash recovery
// can locate its commit record (always the last device block) without a
// readable superblock — a torn superblock write is itself one of the
// failures the journal repairs.
//
// Inodes hold 12 direct pointers plus single- and double-indirect blocks,
// like classic UFS/FFS. Directories are files containing fixed-size entries.
// All multi-byte integers are little-endian on disk; superblock and inodes
// carry CRCs so the fsck-style checker can detect corruption.

#ifndef SPRINGFS_UFS_LAYOUT_H_
#define SPRINGFS_UFS_LAYOUT_H_

#include <cstdint>
#include <cstring>
#include <string>

#include "src/support/bytes.h"
#include "src/support/result.h"

namespace springfs::ufs {

inline constexpr uint32_t kMagic = 0x53465355;  // "USFS"
inline constexpr uint32_t kVersion = 1;
inline constexpr uint32_t kBlockSize = 4096;
inline constexpr uint32_t kInodeSize = 256;
inline constexpr uint32_t kInodesPerBlock = kBlockSize / kInodeSize;
inline constexpr uint32_t kNumDirect = 12;
inline constexpr uint32_t kPtrsPerBlock = kBlockSize / 8;
inline constexpr uint32_t kDirEntrySize = 64;
inline constexpr uint32_t kMaxNameLen = kDirEntrySize - 8 - 2;  // 54
inline constexpr uint32_t kDirEntriesPerBlock = kBlockSize / kDirEntrySize;

using InodeNum = uint64_t;
inline constexpr InodeNum kInvalidInode = 0;
inline constexpr InodeNum kRootInode = 1;

// Little-endian field codecs.
inline void PutU16(uint8_t* p, uint16_t v) {
  for (int i = 0; i < 2; ++i) p[i] = static_cast<uint8_t>(v >> (8 * i));
}
inline void PutU32(uint8_t* p, uint32_t v) {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<uint8_t>(v >> (8 * i));
}
inline void PutU64(uint8_t* p, uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<uint8_t>(v >> (8 * i));
}
inline uint16_t GetU16(const uint8_t* p) {
  uint16_t v = 0;
  for (int i = 1; i >= 0; --i) v = static_cast<uint16_t>((v << 8) | p[i]);
  return v;
}
inline uint32_t GetU32(const uint8_t* p) {
  uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}
inline uint64_t GetU64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

enum class FileType : uint32_t {
  kFree = 0,
  kRegular = 1,
  kDirectory = 2,
  kSymlink = 3,
};

struct Superblock {
  uint32_t magic = kMagic;
  uint32_t version = kVersion;
  uint64_t num_blocks = 0;
  uint64_t num_inodes = 0;
  uint64_t ibm_start = 0, ibm_blocks = 0;
  uint64_t dbm_start = 0, dbm_blocks = 0;
  uint64_t itb_start = 0, itb_blocks = 0;
  uint64_t data_start = 0;
  uint64_t free_blocks = 0;
  uint64_t free_inodes = 0;
  uint32_t clean = 1;  // cleared while mounted dirty; checker warns if 0
  uint64_t jnl_blocks = 0;  // journal block count; 0 = no journal
  uint64_t last_tx = 0;     // id of the last committed journal transaction

  // First journal block; equals num_blocks when there is no journal, so it
  // always bounds the data area from above.
  uint64_t jnl_start() const { return num_blocks - jnl_blocks; }

  void Encode(MutableByteSpan block) const;
  static Result<Superblock> Decode(ByteSpan block);
};

struct Inode {
  FileType type = FileType::kFree;
  uint32_t nlink = 0;
  uint64_t size = 0;
  uint64_t atime_ns = 0;
  uint64_t mtime_ns = 0;
  uint64_t ctime_ns = 0;
  uint64_t direct[kNumDirect] = {0};
  uint64_t indirect = 0;
  uint64_t dindirect = 0;
  uint64_t generation = 0;

  bool IsFree() const { return type == FileType::kFree; }

  // Encodes into a kInodeSize slot.
  void Encode(MutableByteSpan slot) const;
  static Result<Inode> Decode(ByteSpan slot);
};

struct DirEntry {
  InodeNum ino = kInvalidInode;  // kInvalidInode marks an empty slot
  std::string name;

  void Encode(MutableByteSpan slot) const;
  static DirEntry Decode(ByteSpan slot);
};

// Geometry derived from a device size at format time.
struct Geometry {
  uint64_t num_blocks;
  uint64_t num_inodes;
  uint64_t ibm_start, ibm_blocks;
  uint64_t dbm_start, dbm_blocks;
  uint64_t itb_start, itb_blocks;
  uint64_t data_start;
  uint64_t jnl_start, jnl_blocks;  // journal at the device tail (may be 0)

  // Computes a layout: roughly one inode per 4 data blocks unless
  // overridden; `jnl_blocks` tail blocks are reserved for the journal.
  static Result<Geometry> Compute(uint64_t num_blocks, uint64_t num_inodes = 0,
                                  uint64_t jnl_blocks = 0);
};

}  // namespace springfs::ufs

#endif  // SPRINGFS_UFS_LAYOUT_H_
