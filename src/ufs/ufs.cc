#include "src/ufs/ufs.h"

#include <algorithm>

#include "src/support/logging.h"

namespace springfs::ufs {

// --- Bitmap ---

Bitmap::Bitmap(uint64_t num_bits, uint64_t disk_start)
    : num_bits_(num_bits), disk_start_(disk_start),
      bits_((num_bits + 7) / 8, 0),
      dirty_((num_bits + 8ull * kBlockSize - 1) / (8ull * kBlockSize), false) {}

bool Bitmap::Get(uint64_t bit) const {
  SPRINGFS_CHECK(bit < num_bits_);
  return (bits_[bit / 8] >> (bit % 8)) & 1;
}

void Bitmap::Set(uint64_t bit) {
  SPRINGFS_CHECK(bit < num_bits_);
  bits_[bit / 8] |= static_cast<uint8_t>(1u << (bit % 8));
  dirty_[bit / (8ull * kBlockSize)] = true;
}

void Bitmap::Clear(uint64_t bit) {
  SPRINGFS_CHECK(bit < num_bits_);
  bits_[bit / 8] &= static_cast<uint8_t>(~(1u << (bit % 8)));
  dirty_[bit / (8ull * kBlockSize)] = true;
}

uint64_t Bitmap::FindClear(uint64_t hint) const {
  if (num_bits_ == 0) {
    return kInvalid;
  }
  uint64_t start = hint % num_bits_;
  for (uint64_t i = 0; i < num_bits_; ++i) {
    uint64_t bit = (start + i) % num_bits_;
    if (!Get(bit)) {
      return bit;
    }
  }
  return kInvalid;
}

uint64_t Bitmap::CountSet() const {
  uint64_t count = 0;
  for (uint64_t bit = 0; bit < num_bits_; ++bit) {
    count += Get(bit) ? 1 : 0;
  }
  return count;
}

Status Bitmap::Load(BlockDevice& dev) {
  Buffer block(kBlockSize);
  for (size_t b = 0; b < dirty_.size(); ++b) {
    RETURN_IF_ERROR(dev.ReadBlock(disk_start_ + b, block.mutable_span()));
    size_t offset = b * kBlockSize;
    size_t count = std::min<size_t>(kBlockSize, bits_.size() - offset);
    std::memcpy(bits_.data() + offset, block.data(), count);
    dirty_[b] = false;
  }
  return Status::Ok();
}

Status Bitmap::FlushDirty(const BlockWriter& write) {
  Buffer block(kBlockSize);
  for (size_t b = 0; b < dirty_.size(); ++b) {
    if (!dirty_[b]) {
      continue;
    }
    size_t offset = b * kBlockSize;
    size_t count = std::min<size_t>(kBlockSize, bits_.size() - offset);
    std::memset(block.data(), 0, kBlockSize);
    std::memcpy(block.data(), bits_.data() + offset, count);
    RETURN_IF_ERROR(write(disk_start_ + b, block.span()));
    dirty_[b] = false;
  }
  return Status::Ok();
}

// --- Ufs lifecycle ---

Ufs::Ufs(BlockDevice* device, Clock* clock) : device_(device), clock_(clock) {
  metrics::Registry::Global().RegisterProvider(this);
}

Ufs::~Ufs() {
  metrics::Registry::Global().UnregisterProvider(this);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (abandoned_) {
      return;
    }
  }
  Status st = Sync();
  if (!st.ok()) {
    LOG_ERROR << "unmount sync failed: " << st.ToString();
  }
}

Result<std::unique_ptr<Ufs>> Ufs::Format(BlockDevice* device, Clock* clock,
                                         const FormatOptions& options) {
  if (device->block_size() != kBlockSize) {
    return ErrInvalidArgument("device block size must be " +
                              std::to_string(kBlockSize));
  }
  // Journal sizing: num_blocks/8 clamped to [12, 1024] blocks, shrunk to
  // what the device can spare. A journal too small to hold a realistic
  // transaction is dropped entirely rather than formatted useless; an
  // explicitly requested size is passed through so a bad fit is an error.
  uint64_t jnl_blocks = 0;
  if (options.journal) {
    if (options.journal_blocks != 0) {
      jnl_blocks = options.journal_blocks;
    } else {
      ASSIGN_OR_RETURN(Geometry base, Geometry::Compute(device->num_blocks()));
      uint64_t spare = base.num_blocks - base.data_start - 4;
      uint64_t want = std::clamp<uint64_t>(base.num_blocks / 8, 12, 1024);
      if (std::min(want, spare) >= 8) {
        jnl_blocks = std::min(want, spare);
      }
    }
  }
  ASSIGN_OR_RETURN(Geometry geo,
                   Geometry::Compute(device->num_blocks(), 0, jnl_blocks));

  std::unique_ptr<Ufs> fs(new Ufs(device, clock));
  fs->sb_.num_blocks = geo.num_blocks;
  fs->sb_.num_inodes = geo.num_inodes;
  fs->sb_.ibm_start = geo.ibm_start;
  fs->sb_.ibm_blocks = geo.ibm_blocks;
  fs->sb_.dbm_start = geo.dbm_start;
  fs->sb_.dbm_blocks = geo.dbm_blocks;
  fs->sb_.itb_start = geo.itb_start;
  fs->sb_.itb_blocks = geo.itb_blocks;
  fs->sb_.data_start = geo.data_start;
  fs->sb_.jnl_blocks = geo.jnl_blocks;

  fs->inode_bitmap_ = Bitmap(geo.num_inodes, geo.ibm_start);
  fs->data_bitmap_ = Bitmap(geo.num_blocks, geo.dbm_start);

  // Metadata blocks (superblock through the end of the inode table) and the
  // journal region are permanently allocated in the data bitmap.
  for (uint64_t b = 0; b < geo.data_start; ++b) {
    fs->data_bitmap_.Set(b);
  }
  for (uint64_t b = geo.jnl_start; b < geo.num_blocks; ++b) {
    fs->data_bitmap_.Set(b);
  }
  // Inode 0 is reserved so that 0 can mean "no inode".
  fs->inode_bitmap_.Set(0);

  Buffer zero(kBlockSize);
  // Stale-journal hygiene: a commit record left in the device's last block
  // by a previous file system must never replay into this one.
  RETURN_IF_ERROR(device->WriteBlock(geo.num_blocks - 1, zero.span()));
  // Zero the inode table so undecodable garbage never looks like an inode.
  for (uint64_t b = 0; b < geo.itb_blocks; ++b) {
    RETURN_IF_ERROR(device->WriteBlock(geo.itb_start + b, zero.span()));
  }

  fs->sb_.free_blocks = geo.jnl_start - geo.data_start;
  fs->sb_.free_inodes = geo.num_inodes - 1;

  if (geo.jnl_blocks != 0) {
    fs->journaled_ = true;
    fs->journal_ = std::make_unique<Journal>(device, geo.jnl_start);
    ByteSpan raw = fs->data_bitmap_.raw_bits();
    fs->committed_bits_.assign(raw.begin(), raw.end());
  }

  // Root directory.
  {
    std::lock_guard<std::mutex> lock(fs->mutex_);
    ASSIGN_OR_RETURN(InodeNum root, fs->AllocInode(FileType::kDirectory));
    SPRINGFS_CHECK(root == kRootInode);
    ASSIGN_OR_RETURN(Inode * inode, fs->GetInode(root));
    inode->nlink = 1;
    RETURN_IF_ERROR(fs->WriteInode(root));
  }

  RETURN_IF_ERROR(fs->Sync());
  return fs;
}

Result<std::unique_ptr<Ufs>> Ufs::Mount(BlockDevice* device, Clock* clock) {
  if (device->block_size() != kBlockSize) {
    return ErrInvalidArgument("device block size must be " +
                              std::to_string(kBlockSize));
  }
  Buffer block(kBlockSize);
  RETURN_IF_ERROR(device->ReadBlock(0, block.mutable_span()));
  Result<Superblock> decoded = Superblock::Decode(block.span());
  if (!decoded.ok() || decoded->jnl_blocks > 0) {
    // Journaled image — or an unreadable superblock, which a journal
    // replay may repair (the superblock's own in-place update is
    // journaled, so a crash can tear it). Redo the last committed
    // transaction before trusting anything on the device.
    ASSIGN_OR_RETURN(ReplayReport replayed, Journal::Replay(device));
    if (replayed.blocks_replayed > 0) {
      LOG_INFO << "journal replay: tx " << replayed.tx_id << " ("
               << replayed.blocks_replayed << " blocks)";
    }
    RETURN_IF_ERROR(device->ReadBlock(0, block.mutable_span()));
    decoded = Superblock::Decode(block.span());
  }
  if (!decoded.ok()) {
    return decoded.status();
  }
  Superblock sb = decoded.take_value();
  if (sb.num_blocks > device->num_blocks()) {
    return ErrCorrupted("superblock claims more blocks than the device has");
  }
  if (sb.jnl_blocks > 0 && sb.data_start + 1 > sb.jnl_start()) {
    return ErrCorrupted("journal overlaps file-system metadata");
  }

  std::unique_ptr<Ufs> fs(new Ufs(device, clock));
  fs->sb_ = sb;
  fs->inode_bitmap_ = Bitmap(sb.num_inodes, sb.ibm_start);
  fs->data_bitmap_ = Bitmap(sb.num_blocks, sb.dbm_start);
  RETURN_IF_ERROR(fs->inode_bitmap_.Load(*device));
  RETURN_IF_ERROR(fs->data_bitmap_.Load(*device));
  if (sb.jnl_blocks > 0) {
    fs->journaled_ = true;
    fs->journal_ = std::make_unique<Journal>(device, sb.jnl_start());
    ByteSpan raw = fs->data_bitmap_.raw_bits();
    fs->committed_bits_.assign(raw.begin(), raw.end());
  }
  fs->last_committed_tx_ = sb.last_tx;

  // Find the largest generation in use so new inodes stay unique. A linear
  // scan of allocated inodes at mount time stands in for a mount log.
  {
    std::lock_guard<std::mutex> lock(fs->mutex_);
    for (InodeNum ino = 1; ino < sb.num_inodes; ++ino) {
      if (!fs->inode_bitmap_.Get(ino)) {
        continue;
      }
      ASSIGN_OR_RETURN(Inode * inode, fs->GetInode(ino));
      fs->next_generation_ =
          std::max(fs->next_generation_, inode->generation + 1);
    }
  }
  return fs;
}

// --- inode cache and allocation ---

Result<Inode*> Ufs::GetInode(InodeNum ino) {
  if (ino == kInvalidInode || ino >= sb_.num_inodes) {
    return ErrInvalidArgument("bad inode number " + std::to_string(ino));
  }
  auto it = inode_cache_.find(ino);
  if (it != inode_cache_.end()) {
    ++cache_hits_;
    return &it->second.inode;
  }
  ++cache_misses_;
  if (!inode_bitmap_.Get(ino)) {
    return ErrStale("inode " + std::to_string(ino) + " is not allocated");
  }
  Buffer block(kBlockSize);
  BlockNum itb_block = sb_.itb_start + ino / kInodesPerBlock;
  RETURN_IF_ERROR(ReadDeviceBlock(itb_block, block.mutable_span()));
  size_t slot = (ino % kInodesPerBlock) * kInodeSize;
  ASSIGN_OR_RETURN(Inode inode, Inode::Decode(block.subspan(slot, kInodeSize)));
  auto [pos, inserted] = inode_cache_.emplace(ino, CachedInode{inode, false});
  SPRINGFS_CHECK(inserted);
  return &pos->second.inode;
}

Status Ufs::WriteInode(InodeNum ino) {
  auto it = inode_cache_.find(ino);
  SPRINGFS_CHECK(it != inode_cache_.end());
  it->second.dirty = true;
  return Status::Ok();
}

Result<InodeNum> Ufs::AllocInode(FileType type) {
  uint64_t bit = inode_bitmap_.FindClear(1);
  if (bit == Bitmap::kInvalid || bit == 0) {
    return ErrNoSpace("out of inodes");
  }
  inode_bitmap_.Set(bit);
  --sb_.free_inodes;
  Inode inode;
  inode.type = type;
  inode.nlink = 0;
  uint64_t now = clock_->Now();
  inode.atime_ns = inode.mtime_ns = inode.ctime_ns = now;
  inode.generation = next_generation_++;
  inode_cache_[bit] = CachedInode{inode, true};
  return InodeNum{bit};
}

Status Ufs::FreeInode(InodeNum ino) {
  ASSIGN_OR_RETURN(Inode * inode, GetInode(ino));
  RETURN_IF_ERROR(FreeBlocksFrom(inode, 0));
  inode->type = FileType::kFree;
  inode->size = 0;
  RETURN_IF_ERROR(WriteInode(ino));
  // Write the freed inode through to disk now, then drop it from the cache:
  // a stale cached copy must not resurrect after the number is reused.
  Buffer block(kBlockSize);
  BlockNum itb_block = sb_.itb_start + ino / kInodesPerBlock;
  RETURN_IF_ERROR(ReadDeviceBlock(itb_block, block.mutable_span()));
  size_t slot = (ino % kInodesPerBlock) * kInodeSize;
  inode->Encode(block.mutable_span().subspan(slot, kInodeSize));
  RETURN_IF_ERROR(WriteDeviceBlock(itb_block, block.span()));
  inode_cache_.erase(ino);
  inode_bitmap_.Clear(ino);
  ++sb_.free_inodes;
  return Status::Ok();
}

Result<BlockNum> Ufs::AllocBlock() {
  uint64_t bit = data_bitmap_.FindClear(std::max(alloc_rotor_, sb_.data_start));
  if (bit == Bitmap::kInvalid || bit < sb_.data_start) {
    return ErrNoSpace("out of data blocks");
  }
  data_bitmap_.Set(bit);
  alloc_rotor_ = bit + 1;
  --sb_.free_blocks;
  return BlockNum{bit};
}

Status Ufs::FreeBlock(BlockNum block) {
  SPRINGFS_CHECK(block >= sb_.data_start && block < sb_.num_blocks);
  SPRINGFS_CHECK(data_bitmap_.Get(block));
  data_bitmap_.Clear(block);
  ++sb_.free_blocks;
  return Status::Ok();
}

Status Ufs::ReadDeviceBlock(BlockNum block, MutableByteSpan out) {
  if (journaled_) {
    auto it = pending_.find(block);
    if (it != pending_.end()) {
      SPRINGFS_CHECK(out.size() >= kBlockSize);
      std::memcpy(out.data(), it->second.data(), kBlockSize);
      return Status::Ok();
    }
  }
  return device_->ReadBlock(block, out);
}

Status Ufs::WriteDeviceBlock(BlockNum block, ByteSpan data) {
  if (journaled_) {
    SPRINGFS_CHECK(data.size() == kBlockSize);
    pending_.insert_or_assign(block, Buffer(data));
    return Status::Ok();
  }
  return device_->WriteBlock(block, data);
}

// --- block mapping ---

Result<BlockNum> Ufs::MapFileBlock(Inode* inode, uint64_t file_block,
                                   bool allocate) {
  // Direct pointers.
  if (file_block < kNumDirect) {
    if (inode->direct[file_block] == 0 && allocate) {
      ASSIGN_OR_RETURN(BlockNum fresh, AllocBlock());
      Buffer zero(kBlockSize);
      RETURN_IF_ERROR(WriteDeviceBlock(fresh, zero.span()));
      inode->direct[file_block] = fresh;
    }
    return BlockNum{inode->direct[file_block]};
  }
  file_block -= kNumDirect;

  // Reads/writes one pointer inside a pointer block, allocating the pointer
  // block itself when needed.
  auto step = [&](uint64_t* slot_holder, uint64_t index,
                  bool alloc_leaf) -> Result<BlockNum> {
    if (*slot_holder == 0) {
      if (!allocate) {
        return BlockNum{0};
      }
      ASSIGN_OR_RETURN(BlockNum fresh, AllocBlock());
      Buffer zero(kBlockSize);
      RETURN_IF_ERROR(WriteDeviceBlock(fresh, zero.span()));
      *slot_holder = fresh;
    }
    Buffer ptr_block(kBlockSize);
    RETURN_IF_ERROR(ReadDeviceBlock(*slot_holder, ptr_block.mutable_span()));
    uint64_t target = GetU64(ptr_block.data() + 8 * index);
    if (target == 0 && allocate && alloc_leaf) {
      ASSIGN_OR_RETURN(BlockNum fresh, AllocBlock());
      Buffer zero(kBlockSize);
      RETURN_IF_ERROR(WriteDeviceBlock(fresh, zero.span()));
      PutU64(ptr_block.data() + 8 * index, fresh);
      RETURN_IF_ERROR(WriteDeviceBlock(*slot_holder, ptr_block.span()));
      target = fresh;
    }
    return BlockNum{target};
  };

  // Single indirect.
  if (file_block < kPtrsPerBlock) {
    return step(&inode->indirect, file_block, /*alloc_leaf=*/true);
  }
  file_block -= kPtrsPerBlock;

  // Double indirect.
  if (file_block < static_cast<uint64_t>(kPtrsPerBlock) * kPtrsPerBlock) {
    uint64_t outer = file_block / kPtrsPerBlock;
    uint64_t inner = file_block % kPtrsPerBlock;
    // First hop: find (or create) the second-level pointer block.
    ASSIGN_OR_RETURN(BlockNum level2, step(&inode->dindirect, outer,
                                           /*alloc_leaf=*/allocate));
    if (level2 == 0) {
      return BlockNum{0};
    }
    uint64_t level2_holder = level2;
    return step(&level2_holder, inner, /*alloc_leaf=*/true);
  }
  return ErrOutOfRange("file offset beyond maximum file size");
}

Status Ufs::FreeBlocksFrom(Inode* inode, uint64_t first_block) {
  // Walks the mapped blocks from `first_block` upward and frees them,
  // releasing pointer blocks that become fully unused.
  auto free_if_set = [&](uint64_t* slot) -> Status {
    if (*slot != 0) {
      RETURN_IF_ERROR(FreeBlock(*slot));
      *slot = 0;
    }
    return Status::Ok();
  };

  for (uint64_t i = first_block; i < kNumDirect; ++i) {
    RETURN_IF_ERROR(free_if_set(&inode->direct[i]));
  }

  // Single indirect range: file blocks [kNumDirect, kNumDirect + P).
  if (inode->indirect != 0) {
    uint64_t range_start = kNumDirect;
    if (first_block < range_start + kPtrsPerBlock) {
      uint64_t begin =
          first_block > range_start ? first_block - range_start : 0;
      Buffer ptr_block(kBlockSize);
      RETURN_IF_ERROR(ReadDeviceBlock(inode->indirect, ptr_block.mutable_span()));
      bool any_left = false;
      for (uint64_t i = 0; i < kPtrsPerBlock; ++i) {
        uint64_t target = GetU64(ptr_block.data() + 8 * i);
        if (target == 0) {
          continue;
        }
        if (i >= begin) {
          RETURN_IF_ERROR(FreeBlock(target));
          PutU64(ptr_block.data() + 8 * i, 0);
        } else {
          any_left = true;
        }
      }
      if (!any_left) {
        RETURN_IF_ERROR(free_if_set(&inode->indirect));
      } else {
        RETURN_IF_ERROR(WriteDeviceBlock(inode->indirect, ptr_block.span()));
      }
    }
  }

  // Double indirect range: file blocks [kNumDirect + P, kNumDirect + P + P*P).
  if (inode->dindirect != 0) {
    uint64_t range_start = kNumDirect + kPtrsPerBlock;
    Buffer outer_block(kBlockSize);
    RETURN_IF_ERROR(ReadDeviceBlock(inode->dindirect, outer_block.mutable_span()));
    bool outer_left = false;
    for (uint64_t o = 0; o < kPtrsPerBlock; ++o) {
      uint64_t level2 = GetU64(outer_block.data() + 8 * o);
      if (level2 == 0) {
        continue;
      }
      uint64_t seg_start = range_start + o * kPtrsPerBlock;
      if (first_block >= seg_start + kPtrsPerBlock) {
        outer_left = true;
        continue;
      }
      uint64_t begin = first_block > seg_start ? first_block - seg_start : 0;
      Buffer inner_block(kBlockSize);
      RETURN_IF_ERROR(ReadDeviceBlock(level2, inner_block.mutable_span()));
      bool inner_left = false;
      for (uint64_t i = 0; i < kPtrsPerBlock; ++i) {
        uint64_t target = GetU64(inner_block.data() + 8 * i);
        if (target == 0) {
          continue;
        }
        if (i >= begin) {
          RETURN_IF_ERROR(FreeBlock(target));
          PutU64(inner_block.data() + 8 * i, 0);
        } else {
          inner_left = true;
        }
      }
      if (!inner_left) {
        RETURN_IF_ERROR(FreeBlock(level2));
        PutU64(outer_block.data() + 8 * o, 0);
      } else {
        RETURN_IF_ERROR(WriteDeviceBlock(level2, inner_block.span()));
        outer_left = true;
      }
    }
    if (!outer_left) {
      RETURN_IF_ERROR(free_if_set(&inode->dindirect));
    } else {
      RETURN_IF_ERROR(WriteDeviceBlock(inode->dindirect, outer_block.span()));
    }
  }
  return Status::Ok();
}

// --- directories ---

Result<InodeNum> Ufs::DirLookup(Inode* dir_inode, std::string_view name,
                                uint64_t* slot_block, uint32_t* slot_index) {
  uint64_t num_dir_blocks = (dir_inode->size + kBlockSize - 1) / kBlockSize;
  Buffer block(kBlockSize);
  for (uint64_t b = 0; b < num_dir_blocks; ++b) {
    ASSIGN_OR_RETURN(BlockNum dev_block,
                     MapFileBlock(dir_inode, b, /*allocate=*/false));
    if (dev_block == 0) {
      continue;
    }
    RETURN_IF_ERROR(ReadDeviceBlock(dev_block, block.mutable_span()));
    for (uint32_t e = 0; e < kDirEntriesPerBlock; ++e) {
      DirEntry entry = DirEntry::Decode(block.subspan(e * kDirEntrySize,
                                                      kDirEntrySize));
      if (entry.ino != kInvalidInode && entry.name == name) {
        if (slot_block) {
          *slot_block = b;
        }
        if (slot_index) {
          *slot_index = e;
        }
        return entry.ino;
      }
    }
  }
  return ErrNotFound("no entry '" + std::string(name) + "'");
}

Status Ufs::DirAddEntry(InodeNum dir_ino, Inode* dir_inode,
                        std::string_view name, InodeNum target) {
  if (name.empty() || name.size() > kMaxNameLen) {
    return ErrInvalidArgument("bad name length");
  }
  if (name.find('/') != std::string_view::npos) {
    return ErrInvalidArgument("name contains '/'");
  }
  uint64_t num_dir_blocks = (dir_inode->size + kBlockSize - 1) / kBlockSize;
  Buffer block(kBlockSize);
  // Reuse the first free slot in an existing block.
  for (uint64_t b = 0; b < num_dir_blocks; ++b) {
    ASSIGN_OR_RETURN(BlockNum dev_block,
                     MapFileBlock(dir_inode, b, /*allocate=*/false));
    if (dev_block == 0) {
      continue;
    }
    RETURN_IF_ERROR(ReadDeviceBlock(dev_block, block.mutable_span()));
    for (uint32_t e = 0; e < kDirEntriesPerBlock; ++e) {
      DirEntry entry = DirEntry::Decode(block.subspan(e * kDirEntrySize,
                                                      kDirEntrySize));
      if (entry.ino == kInvalidInode) {
        DirEntry fresh{target, std::string(name)};
        fresh.Encode(block.mutable_span().subspan(e * kDirEntrySize,
                                                  kDirEntrySize));
        return WriteDeviceBlock(dev_block, block.span());
      }
    }
  }
  // All slots full: grow the directory by one block.
  ASSIGN_OR_RETURN(BlockNum dev_block,
                   MapFileBlock(dir_inode, num_dir_blocks, /*allocate=*/true));
  std::memset(block.data(), 0, kBlockSize);
  DirEntry fresh{target, std::string(name)};
  fresh.Encode(block.mutable_span().subspan(0, kDirEntrySize));
  RETURN_IF_ERROR(WriteDeviceBlock(dev_block, block.span()));
  dir_inode->size = (num_dir_blocks + 1) * kBlockSize;
  dir_inode->mtime_ns = clock_->Now();
  return WriteInode(dir_ino);
}

Status Ufs::DirRemoveEntry(Inode* dir_inode, std::string_view name) {
  uint64_t num_dir_blocks = (dir_inode->size + kBlockSize - 1) / kBlockSize;
  Buffer block(kBlockSize);
  for (uint64_t b = 0; b < num_dir_blocks; ++b) {
    ASSIGN_OR_RETURN(BlockNum dev_block,
                     MapFileBlock(dir_inode, b, /*allocate=*/false));
    if (dev_block == 0) {
      continue;
    }
    RETURN_IF_ERROR(ReadDeviceBlock(dev_block, block.mutable_span()));
    for (uint32_t e = 0; e < kDirEntriesPerBlock; ++e) {
      DirEntry entry = DirEntry::Decode(block.subspan(e * kDirEntrySize,
                                                      kDirEntrySize));
      if (entry.ino != kInvalidInode && entry.name == name) {
        DirEntry empty;
        empty.Encode(block.mutable_span().subspan(e * kDirEntrySize,
                                                  kDirEntrySize));
        return WriteDeviceBlock(dev_block, block.span());
      }
    }
  }
  return ErrNotFound("no entry '" + std::string(name) + "'");
}

Result<bool> Ufs::DirIsEmpty(Inode* dir_inode) {
  uint64_t num_dir_blocks = (dir_inode->size + kBlockSize - 1) / kBlockSize;
  Buffer block(kBlockSize);
  for (uint64_t b = 0; b < num_dir_blocks; ++b) {
    ASSIGN_OR_RETURN(BlockNum dev_block,
                     MapFileBlock(dir_inode, b, /*allocate=*/false));
    if (dev_block == 0) {
      continue;
    }
    RETURN_IF_ERROR(ReadDeviceBlock(dev_block, block.mutable_span()));
    for (uint32_t e = 0; e < kDirEntriesPerBlock; ++e) {
      DirEntry entry = DirEntry::Decode(block.subspan(e * kDirEntrySize,
                                                      kDirEntrySize));
      if (entry.ino != kInvalidInode) {
        return false;
      }
    }
  }
  return true;
}

Result<InodeNum> Ufs::Lookup(InodeNum dir, std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto cache_key = std::make_pair(dir, std::string(name));
  auto cached = dirent_cache_.find(cache_key);
  if (cached != dirent_cache_.end()) {
    ++cache_hits_;
    return cached->second;
  }
  ASSIGN_OR_RETURN(Inode * dir_inode, GetInode(dir));
  if (dir_inode->type != FileType::kDirectory) {
    return ErrNotADirectory("inode " + std::to_string(dir));
  }
  ASSIGN_OR_RETURN(InodeNum ino, DirLookup(dir_inode, name, nullptr, nullptr));
  dirent_cache_.emplace(std::move(cache_key), ino);
  return ino;
}

Result<InodeNum> Ufs::Create(InodeNum dir, std::string_view name,
                             FileType type) {
  if (type != FileType::kRegular && type != FileType::kDirectory &&
      type != FileType::kSymlink) {
    return ErrInvalidArgument("cannot create this file type");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  ASSIGN_OR_RETURN(Inode * dir_inode, GetInode(dir));
  if (dir_inode->type != FileType::kDirectory) {
    return ErrNotADirectory("inode " + std::to_string(dir));
  }
  Result<InodeNum> existing = DirLookup(dir_inode, name, nullptr, nullptr);
  if (existing.ok()) {
    return ErrAlreadyExists("'" + std::string(name) + "' exists");
  }
  if (existing.code() != ErrorCode::kNotFound) {
    return existing.status();
  }
  ASSIGN_OR_RETURN(InodeNum ino, AllocInode(type));
  ASSIGN_OR_RETURN(Inode * inode, GetInode(ino));
  inode->nlink = 1;
  RETURN_IF_ERROR(WriteInode(ino));
  Status add = DirAddEntry(dir, dir_inode, name, ino);
  if (!add.ok()) {
    (void)FreeInode(ino);
    return add;
  }
  dirent_cache_[std::make_pair(dir, std::string(name))] = ino;
  return ino;
}

Status Ufs::Remove(InodeNum dir, std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  ASSIGN_OR_RETURN(Inode * dir_inode, GetInode(dir));
  if (dir_inode->type != FileType::kDirectory) {
    return ErrNotADirectory("inode " + std::to_string(dir));
  }
  ASSIGN_OR_RETURN(InodeNum target, DirLookup(dir_inode, name, nullptr, nullptr));
  ASSIGN_OR_RETURN(Inode * inode, GetInode(target));
  if (inode->type == FileType::kDirectory) {
    ASSIGN_OR_RETURN(bool empty, DirIsEmpty(inode));
    if (!empty) {
      return ErrNotEmpty("'" + std::string(name) + "' is not empty");
    }
  }
  RETURN_IF_ERROR(DirRemoveEntry(dir_inode, name));
  dirent_cache_.erase(std::make_pair(dir, std::string(name)));
  SPRINGFS_CHECK(inode->nlink > 0);
  inode->nlink--;
  if (inode->nlink == 0) {
    return FreeInode(target);
  }
  inode->ctime_ns = clock_->Now();
  return WriteInode(target);
}

Status Ufs::Link(InodeNum dir, std::string_view name, InodeNum target) {
  std::lock_guard<std::mutex> lock(mutex_);
  ASSIGN_OR_RETURN(Inode * dir_inode, GetInode(dir));
  if (dir_inode->type != FileType::kDirectory) {
    return ErrNotADirectory("inode " + std::to_string(dir));
  }
  ASSIGN_OR_RETURN(Inode * inode, GetInode(target));
  if (inode->type == FileType::kDirectory) {
    return ErrIsADirectory("hard links to directories are not allowed");
  }
  Result<InodeNum> existing = DirLookup(dir_inode, name, nullptr, nullptr);
  if (existing.ok()) {
    return ErrAlreadyExists("'" + std::string(name) + "' exists");
  }
  if (existing.code() != ErrorCode::kNotFound) {
    return existing.status();
  }
  RETURN_IF_ERROR(DirAddEntry(dir, dir_inode, name, target));
  dirent_cache_[std::make_pair(dir, std::string(name))] = target;
  inode->nlink++;
  inode->ctime_ns = clock_->Now();
  return WriteInode(target);
}

Status Ufs::Rename(InodeNum src_dir, std::string_view src_name,
                   InodeNum dst_dir, std::string_view dst_name) {
  std::lock_guard<std::mutex> lock(mutex_);
  ASSIGN_OR_RETURN(Inode * src_inode, GetInode(src_dir));
  ASSIGN_OR_RETURN(Inode * dst_inode, GetInode(dst_dir));
  if (src_inode->type != FileType::kDirectory ||
      dst_inode->type != FileType::kDirectory) {
    return ErrNotADirectory("rename directories");
  }
  ASSIGN_OR_RETURN(InodeNum target,
                   DirLookup(src_inode, src_name, nullptr, nullptr));
  Result<InodeNum> existing = DirLookup(dst_inode, dst_name, nullptr, nullptr);
  if (existing.ok()) {
    return ErrAlreadyExists("'" + std::string(dst_name) + "' exists");
  }
  if (existing.code() != ErrorCode::kNotFound) {
    return existing.status();
  }
  RETURN_IF_ERROR(DirAddEntry(dst_dir, dst_inode, dst_name, target));
  dirent_cache_.erase(std::make_pair(src_dir, std::string(src_name)));
  dirent_cache_[std::make_pair(dst_dir, std::string(dst_name))] = target;
  return DirRemoveEntry(src_inode, src_name);
}

Result<std::vector<NamedEntry>> Ufs::ReadDir(InodeNum dir) {
  std::lock_guard<std::mutex> lock(mutex_);
  ASSIGN_OR_RETURN(Inode * dir_inode, GetInode(dir));
  if (dir_inode->type != FileType::kDirectory) {
    return ErrNotADirectory("inode " + std::to_string(dir));
  }
  std::vector<NamedEntry> entries;
  uint64_t num_dir_blocks = (dir_inode->size + kBlockSize - 1) / kBlockSize;
  Buffer block(kBlockSize);
  for (uint64_t b = 0; b < num_dir_blocks; ++b) {
    ASSIGN_OR_RETURN(BlockNum dev_block,
                     MapFileBlock(dir_inode, b, /*allocate=*/false));
    if (dev_block == 0) {
      continue;
    }
    RETURN_IF_ERROR(ReadDeviceBlock(dev_block, block.mutable_span()));
    for (uint32_t e = 0; e < kDirEntriesPerBlock; ++e) {
      DirEntry entry = DirEntry::Decode(block.subspan(e * kDirEntrySize,
                                                      kDirEntrySize));
      if (entry.ino == kInvalidInode) {
        continue;
      }
      ASSIGN_OR_RETURN(Inode * inode, GetInode(entry.ino));
      entries.push_back(NamedEntry{entry.name, entry.ino, inode->type});
    }
  }
  return entries;
}

// --- file data ---

Result<size_t> Ufs::Read(InodeNum ino, uint64_t offset, MutableByteSpan out) {
  std::lock_guard<std::mutex> lock(mutex_);
  ASSIGN_OR_RETURN(Inode * inode, GetInode(ino));
  if (inode->type == FileType::kDirectory) {
    return ErrIsADirectory("read of directory inode");
  }
  if (offset >= inode->size) {
    return size_t{0};
  }
  size_t to_read = std::min<uint64_t>(out.size(), inode->size - offset);
  size_t done = 0;
  Buffer block(kBlockSize);
  while (done < to_read) {
    uint64_t file_block = (offset + done) / kBlockSize;
    size_t in_block = (offset + done) % kBlockSize;
    size_t chunk = std::min<size_t>(kBlockSize - in_block, to_read - done);
    ASSIGN_OR_RETURN(BlockNum dev_block,
                     MapFileBlock(inode, file_block, /*allocate=*/false));
    if (dev_block == 0) {
      std::memset(out.data() + done, 0, chunk);  // hole
    } else {
      RETURN_IF_ERROR(ReadDeviceBlock(dev_block, block.mutable_span()));
      std::memcpy(out.data() + done, block.data() + in_block, chunk);
    }
    done += chunk;
  }
  inode->atime_ns = clock_->Now();
  RETURN_IF_ERROR(WriteInode(ino));
  return to_read;
}

Result<size_t> Ufs::Write(InodeNum ino, uint64_t offset, ByteSpan data) {
  std::lock_guard<std::mutex> lock(mutex_);
  ASSIGN_OR_RETURN(Inode * inode, GetInode(ino));
  if (inode->type == FileType::kDirectory) {
    return ErrIsADirectory("write of directory inode");
  }
  size_t done = 0;
  Buffer block(kBlockSize);
  while (done < data.size()) {
    uint64_t file_block = (offset + done) / kBlockSize;
    size_t in_block = (offset + done) % kBlockSize;
    size_t chunk = std::min<size_t>(kBlockSize - in_block, data.size() - done);
    ASSIGN_OR_RETURN(BlockNum dev_block,
                     MapFileBlock(inode, file_block, /*allocate=*/true));
    if (in_block != 0 || chunk != kBlockSize) {
      RETURN_IF_ERROR(ReadDeviceBlock(dev_block, block.mutable_span()));
    } else {
      std::memset(block.data(), 0, kBlockSize);
    }
    std::memcpy(block.data() + in_block, data.data() + done, chunk);
    RETURN_IF_ERROR(WriteDeviceBlock(dev_block, block.span()));
    done += chunk;
  }
  if (offset + data.size() > inode->size) {
    inode->size = offset + data.size();
  }
  inode->mtime_ns = clock_->Now();
  RETURN_IF_ERROR(WriteInode(ino));
  return data.size();
}

Status Ufs::Truncate(InodeNum ino, uint64_t new_size) {
  std::lock_guard<std::mutex> lock(mutex_);
  ASSIGN_OR_RETURN(Inode * inode, GetInode(ino));
  if (inode->type == FileType::kDirectory) {
    return ErrIsADirectory("truncate of directory inode");
  }
  if (new_size < inode->size) {
    uint64_t first_block = (new_size + kBlockSize - 1) / kBlockSize;
    RETURN_IF_ERROR(FreeBlocksFrom(inode, first_block));
    // Zero the tail of the new last block so re-extension reads zeros.
    if (new_size % kBlockSize != 0) {
      ASSIGN_OR_RETURN(BlockNum dev_block,
                       MapFileBlock(inode, new_size / kBlockSize,
                                    /*allocate=*/false));
      if (dev_block != 0) {
        Buffer block(kBlockSize);
        RETURN_IF_ERROR(ReadDeviceBlock(dev_block, block.mutable_span()));
        std::memset(block.data() + new_size % kBlockSize, 0,
                    kBlockSize - new_size % kBlockSize);
        RETURN_IF_ERROR(WriteDeviceBlock(dev_block, block.span()));
      }
    }
  }
  inode->size = new_size;
  inode->mtime_ns = clock_->Now();
  return WriteInode(ino);
}

Status Ufs::ReadFileBlock(InodeNum ino, uint64_t file_block,
                          MutableByteSpan out) {
  if (out.size() != kBlockSize) {
    return ErrInvalidArgument("block read span must be one block");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  ASSIGN_OR_RETURN(Inode * inode, GetInode(ino));
  ASSIGN_OR_RETURN(BlockNum dev_block,
                   MapFileBlock(inode, file_block, /*allocate=*/false));
  if (dev_block == 0) {
    std::memset(out.data(), 0, out.size());
    return Status::Ok();
  }
  return ReadDeviceBlock(dev_block, out);
}

Status Ufs::WriteFileBlock(InodeNum ino, uint64_t file_block, ByteSpan data) {
  if (data.size() != kBlockSize) {
    return ErrInvalidArgument("block write span must be one block");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  ASSIGN_OR_RETURN(Inode * inode, GetInode(ino));
  ASSIGN_OR_RETURN(BlockNum dev_block,
                   MapFileBlock(inode, file_block, /*allocate=*/true));
  RETURN_IF_ERROR(WriteDeviceBlock(dev_block, data));
  return WriteInode(ino);
}

// --- attributes ---

Result<InodeAttrs> Ufs::GetAttrs(InodeNum ino) {
  std::lock_guard<std::mutex> lock(mutex_);
  ASSIGN_OR_RETURN(Inode * inode, GetInode(ino));
  InodeAttrs attrs;
  attrs.type = inode->type;
  attrs.size = inode->size;
  attrs.nlink = inode->nlink;
  attrs.atime_ns = inode->atime_ns;
  attrs.mtime_ns = inode->mtime_ns;
  attrs.ctime_ns = inode->ctime_ns;
  attrs.generation = inode->generation;
  return attrs;
}

Status Ufs::SetTimes(InodeNum ino, uint64_t atime_ns, uint64_t mtime_ns) {
  std::lock_guard<std::mutex> lock(mutex_);
  ASSIGN_OR_RETURN(Inode * inode, GetInode(ino));
  inode->atime_ns = atime_ns;
  inode->mtime_ns = mtime_ns;
  return WriteInode(ino);
}

Status Ufs::SetSize(InodeNum ino, uint64_t size) {
  std::lock_guard<std::mutex> lock(mutex_);
  ASSIGN_OR_RETURN(Inode * inode, GetInode(ino));
  if (inode->type == FileType::kDirectory) {
    return ErrIsADirectory("set_length of directory inode");
  }
  if (size < inode->size) {
    uint64_t first_block = (size + kBlockSize - 1) / kBlockSize;
    RETURN_IF_ERROR(FreeBlocksFrom(inode, first_block));
  }
  inode->size = size;
  return WriteInode(ino);
}

// --- sync ---

Status Ufs::Sync() {
  std::lock_guard<std::mutex> lock(mutex_);
  Buffer block(kBlockSize);
  // Dirty inodes, grouped by inode-table block.
  for (auto& [ino, cached] : inode_cache_) {
    if (!cached.dirty) {
      continue;
    }
    BlockNum itb_block = sb_.itb_start + ino / kInodesPerBlock;
    RETURN_IF_ERROR(ReadDeviceBlock(itb_block, block.mutable_span()));
    size_t slot = (ino % kInodesPerBlock) * kInodeSize;
    cached.inode.Encode(block.mutable_span().subspan(slot, kInodeSize));
    RETURN_IF_ERROR(WriteDeviceBlock(itb_block, block.span()));
    cached.dirty = false;
  }
  Bitmap::BlockWriter writer = [this](BlockNum b, ByteSpan data) {
    return WriteDeviceBlock(b, data);
  };
  RETURN_IF_ERROR(inode_bitmap_.FlushDirty(writer));
  RETURN_IF_ERROR(data_bitmap_.FlushDirty(writer));
  if (journaled_) {
    return SyncJournaled();
  }
  sb_.clean = 1;
  sb_.Encode(block.mutable_span());
  RETURN_IF_ERROR(WriteDeviceBlock(0, block.span()));
  return device_->Flush();
}

Status Ufs::SyncJournaled() {
  if (pending_.empty()) {
    // Nothing changed since the last commit; the on-disk superblock is
    // already current.
    return device_->Flush();
  }
  // Partition the open transaction. Blocks that durable metadata may
  // already reference — the whole metadata area plus data blocks that were
  // allocated at the last commit — must go through the journal, or a crash
  // mid-checkpoint would tear durable state. Blocks that were free at the
  // last commit are invisible until this commit lands, so they are written
  // in place first ("ordered" mode) without journal traffic.
  std::map<BlockNum, Buffer> journaled;
  std::vector<std::pair<BlockNum, const Buffer*>> ordered;
  for (const auto& [b, buf] : pending_) {
    if (b < sb_.data_start || CommittedBitSet(b)) {
      journaled.emplace(b, Buffer(buf.span()));
    } else {
      ordered.emplace_back(b, &buf);
    }
  }
  uint64_t records = journaled.size() + (journaled.count(0) ? 0 : 1);
  Buffer sb_block(kBlockSize);
  if (!journal_->Fits(records)) {
    // Transaction larger than the journal: fall back to unprotected
    // in-place writes — for this sync the guarantees degrade to those of a
    // journal-less file system. The stale commit record must go first:
    // replaying it over these newer writes would roll blocks back.
    ++journal_overflow_syncs_;
    Buffer zero(kBlockSize);
    RETURN_IF_ERROR(device_->WriteBlock(sb_.num_blocks - 1, zero.span()));
    RETURN_IF_ERROR(device_->Flush());
    sb_.clean = 1;
    sb_.Encode(sb_block.mutable_span());
    RETURN_IF_ERROR(device_->WriteBlock(0, sb_block.span()));
    for (const auto& [b, buf] : pending_) {
      if (b == 0) {
        continue;  // superblock freshly encoded above
      }
      RETURN_IF_ERROR(device_->WriteBlock(b, buf.span()));
    }
    RETURN_IF_ERROR(device_->Flush());
    FinishJournalEpoch();
    return Status::Ok();
  }

  uint64_t tx = last_committed_tx_ + 1;
  sb_.clean = 1;
  sb_.last_tx = tx;
  sb_.Encode(sb_block.mutable_span());
  journaled.insert_or_assign(0, std::move(sb_block));

  // Phase 1: ordered writes. These blocks are unreferenced until the
  // commit record lands, so a crash in this window is invisible.
  if (!ordered.empty()) {
    for (const auto& [b, buf] : ordered) {
      RETURN_IF_ERROR(device_->WriteBlock(b, buf->span()));
    }
    RETURN_IF_ERROR(device_->Flush());
  }
  // Phase 2: journal payloads, descriptor table, commit record (flushed).
  // After this returns the transaction is durable.
  RETURN_IF_ERROR(journal_->Commit(tx, journaled));
  last_committed_tx_ = tx;
  ++journal_commits_;
  // Phase 3: checkpoint to home locations. A crash in this window is
  // repaired by replay on the next mount.
  for (const auto& [b, buf] : journaled) {
    RETURN_IF_ERROR(device_->WriteBlock(b, buf.span()));
  }
  RETURN_IF_ERROR(device_->Flush());
  FinishJournalEpoch();
  return Status::Ok();
}

bool Ufs::CommittedBitSet(BlockNum block) const {
  uint64_t byte = block / 8;
  if (byte >= committed_bits_.size()) {
    return true;  // untracked: journal it to be safe
  }
  return (committed_bits_[byte] >> (block % 8)) & 1;
}

void Ufs::FinishJournalEpoch() {
  pending_.clear();
  ByteSpan raw = data_bitmap_.raw_bits();
  committed_bits_.assign(raw.begin(), raw.end());
}

void Ufs::Abandon() {
  std::lock_guard<std::mutex> lock(mutex_);
  abandoned_ = true;
}

uint64_t Ufs::last_committed_tx() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return last_committed_tx_;
}

void Ufs::CollectStats(const metrics::StatsEmitter& emit) const {
  std::lock_guard<std::mutex> lock(mutex_);
  emit("inode_cache_hits", cache_hits_);
  emit("inode_cache_misses", cache_misses_);
  emit("journal_commits", journal_commits_);
  // Syncs whose transaction exceeded the journal and fell back to
  // unprotected in-place writes (crash tests keep this at 0).
  emit("journal_overflow_syncs", journal_overflow_syncs_);
}

uint64_t Ufs::FreeBlocks() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return sb_.free_blocks;
}

uint64_t Ufs::FreeInodes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return sb_.free_inodes;
}

}  // namespace springfs::ufs
