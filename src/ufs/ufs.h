// UFS-like file system over a BlockDevice.
//
// This is the storage substrate underneath the Spring disk layer. It keeps
// an in-memory inode cache (the paper notes the disk layer "maintains its
// own cache to handle open and stat operations without requiring disk
// I/Os") but deliberately performs no data caching: reads and writes go to
// the device, matching Table 2's disk-layer behaviour ("reads and writes to
// the disk layer do require disk I/Os"). Data caching is the job of the VMM
// and the coherency layer above.

#ifndef SPRINGFS_UFS_UFS_H_
#define SPRINGFS_UFS_UFS_H_

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "src/blockdev/block_device.h"
#include "src/obs/metrics.h"
#include "src/support/clock.h"
#include "src/ufs/journal.h"
#include "src/ufs/layout.h"

namespace springfs::ufs {

// In-memory allocation bitmap with dirty-block write-back.
class Bitmap {
 public:
  Bitmap() = default;
  Bitmap(uint64_t num_bits, uint64_t disk_start);

  bool Get(uint64_t bit) const;
  void Set(uint64_t bit);
  void Clear(uint64_t bit);
  // First clear bit at or after `hint` (wrapping); kInvalid if full.
  static constexpr uint64_t kInvalid = ~0ull;
  uint64_t FindClear(uint64_t hint) const;
  uint64_t CountSet() const;

  uint64_t num_bits() const { return num_bits_; }

  // The raw backing bytes (for snapshotting the committed state).
  ByteSpan raw_bits() const { return ByteSpan(bits_.data(), bits_.size()); }

  Status Load(BlockDevice& dev);
  // Encodes each dirty on-disk bitmap block and hands it to `write`; the
  // caller decides whether it goes straight to the device or into a
  // journal transaction.
  using BlockWriter = std::function<Status(BlockNum, ByteSpan)>;
  Status FlushDirty(const BlockWriter& write);

 private:
  uint64_t num_bits_ = 0;
  uint64_t disk_start_ = 0;  // first device block of this bitmap
  std::vector<uint8_t> bits_;
  std::vector<bool> dirty_;  // one flag per on-disk bitmap block
};

struct InodeAttrs {
  FileType type = FileType::kFree;
  uint64_t size = 0;
  uint32_t nlink = 0;
  uint64_t atime_ns = 0;
  uint64_t mtime_ns = 0;
  uint64_t ctime_ns = 0;
  uint64_t generation = 0;
};

struct NamedEntry {
  std::string name;
  InodeNum ino;
  FileType type;
};

struct FormatOptions {
  // Reserve a write-ahead journal so metadata survives crashes. On devices
  // too small to host a useful journal the region is silently omitted.
  bool journal = true;
  // Explicit journal size in blocks (0 = auto: num_blocks/8, clamped).
  uint64_t journal_blocks = 0;
};

class Ufs : public metrics::StatsProvider {
 public:
  // Writes a fresh empty file system (with a root directory) to `device`.
  static Result<std::unique_ptr<Ufs>> Format(BlockDevice* device,
                                             Clock* clock = &DefaultClock(),
                                             const FormatOptions& options = {});

  // Mounts an existing file system.
  static Result<std::unique_ptr<Ufs>> Mount(BlockDevice* device,
                                            Clock* clock = &DefaultClock());

  ~Ufs();

  // --- directory operations ---
  Result<InodeNum> Lookup(InodeNum dir, std::string_view name);
  Result<InodeNum> Create(InodeNum dir, std::string_view name, FileType type);
  Status Remove(InodeNum dir, std::string_view name);
  // Hard link: binds `name` in `dir` to existing inode `target`.
  Status Link(InodeNum dir, std::string_view name, InodeNum target);
  Status Rename(InodeNum src_dir, std::string_view src_name, InodeNum dst_dir,
                std::string_view dst_name);
  Result<std::vector<NamedEntry>> ReadDir(InodeNum dir);

  // --- file data ---
  // Byte-granularity read; returns bytes read (short at EOF).
  Result<size_t> Read(InodeNum ino, uint64_t offset, MutableByteSpan out);
  // Byte-granularity write; extends the file as needed.
  Result<size_t> Write(InodeNum ino, uint64_t offset, ByteSpan data);
  Status Truncate(InodeNum ino, uint64_t new_size);

  // Block-granularity access for the pager path: reads/writes one
  // kBlockSize-sized file block. Reads of holes return zeros; block writes
  // never extend inode size (callers manage length via SetSize).
  Status ReadFileBlock(InodeNum ino, uint64_t file_block, MutableByteSpan out);
  Status WriteFileBlock(InodeNum ino, uint64_t file_block, ByteSpan data);

  // --- attributes ---
  Result<InodeAttrs> GetAttrs(InodeNum ino);
  Status SetTimes(InodeNum ino, uint64_t atime_ns, uint64_t mtime_ns);
  Status SetSize(InodeNum ino, uint64_t size);

  // Writes all dirty state (inodes, bitmaps, superblock) to the device.
  // When journaled, the whole sync is one atomic transaction: a crash at
  // any device write leaves the file system either before or after it.
  Status Sync();

  // Marks the instance dead: the destructor skips its unmount sync. For
  // crash tests that abandon a file system on a failed device.
  void Abandon();

  // True when this file system has a write-ahead journal.
  bool journaled() const { return journaled_; }
  // Id of the last journal transaction known durable (0 = none / no
  // journal). After a crash and remount this identifies which sync's state
  // the recovered image carries.
  uint64_t last_committed_tx() const;

  const Superblock& superblock() const { return sb_; }
  // --- StatsProvider ---
  std::string stats_prefix() const override { return "ufs"; }
  void CollectStats(const metrics::StatsEmitter& emit) const override;

  uint64_t FreeBlocks() const;
  uint64_t FreeInodes() const;

 private:
  Ufs(BlockDevice* device, Clock* clock);

  // All private methods assume mutex_ is held.
  Result<Inode*> GetInode(InodeNum ino);
  Status WriteInode(InodeNum ino);
  Result<InodeNum> AllocInode(FileType type);
  Status FreeInode(InodeNum ino);
  Result<BlockNum> AllocBlock();
  Status FreeBlock(BlockNum block);

  // Maps file block index -> device block. With allocate=false, returns 0
  // for holes; with allocate=true, allocates and records a new block.
  Result<BlockNum> MapFileBlock(Inode* inode, uint64_t file_block,
                                bool allocate);
  // Frees all blocks mapping file indices >= first_block.
  Status FreeBlocksFrom(Inode* inode, uint64_t first_block);

  // Device access. When journaled, writes land in `pending_` (the open
  // transaction) and reads see pending content first; nothing touches the
  // device between syncs except cache-miss reads.
  Status ReadDeviceBlock(BlockNum block, MutableByteSpan out);
  Status WriteDeviceBlock(BlockNum block, ByteSpan data);

  // Journaled sync: partitions `pending_` into freshly-allocated data
  // blocks (written in place, "ordered" mode) and everything durable
  // metadata may reference (journaled), then commits and checkpoints.
  Status SyncJournaled();
  // True when `block` was allocated at the last committed transaction, so
  // an in-place write would be visible after a crash.
  bool CommittedBitSet(BlockNum block) const;
  void FinishJournalEpoch();

  // Directory helpers.
  Result<InodeNum> DirLookup(Inode* dir_inode, std::string_view name,
                             uint64_t* slot_block, uint32_t* slot_index);
  Status DirAddEntry(InodeNum dir_ino, Inode* dir_inode, std::string_view name,
                     InodeNum target);
  Status DirRemoveEntry(Inode* dir_inode, std::string_view name);
  Result<bool> DirIsEmpty(Inode* dir_inode);

  struct CachedInode {
    Inode inode;
    bool dirty = false;
  };

  BlockDevice* device_;
  Clock* clock_;
  mutable std::mutex mutex_;
  Superblock sb_;
  Bitmap inode_bitmap_;
  Bitmap data_bitmap_;
  std::map<InodeNum, CachedInode> inode_cache_;
  // Directory-entry cache: with the inode cache it lets the disk layer
  // "handle open and stat operations without requiring disk I/Os" (paper
  // Table 2 commentary).
  std::map<std::pair<InodeNum, std::string>, InodeNum> dirent_cache_;
  uint64_t alloc_rotor_ = 0;
  uint64_t next_generation_ = 1;
  mutable uint64_t cache_hits_ = 0;
  mutable uint64_t cache_misses_ = 0;

  // Journal state (only used when journaled_).
  bool journaled_ = false;
  bool abandoned_ = false;
  std::unique_ptr<Journal> journal_;
  std::map<BlockNum, Buffer> pending_;   // open transaction: block -> content
  std::vector<uint8_t> committed_bits_;  // data bitmap at the last commit
  uint64_t last_committed_tx_ = 0;
  uint64_t journal_commits_ = 0;
  uint64_t journal_overflow_syncs_ = 0;
};

}  // namespace springfs::ufs

#endif  // SPRINGFS_UFS_UFS_H_
