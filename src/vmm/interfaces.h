// The Spring virtual-memory interfaces (paper section 3.3 + Appendices A/B).
//
// The two-way connection between a VMM (or any cache manager) and a data
// provider ("pager") is a pair of objects:
//
//   * the cache manager implements a cache_object, which the pager invokes
//     for coherency actions (flush_back, deny_writes, ...), and
//   * the pager implements a pager_object, which the cache manager invokes
//     to obtain and write out data (page_in, page_out, ...).
//
// A memory object is an abstraction of mappable store; the *file* interface
// inherits from it. Crucially (Table 1) the memory object carries no paging
// operations: the bind() operation connects the caller to the pager behind
// the memory object, returning a cache_rights object. Two equivalent memory
// objects (same underlying file) yield the same cache_rights, which is how
// a VMM shares one copy of cached data between them, and how a stacked file
// system (DFS, Figure 7) can forward bind to the layer below so both layers
// use the very same cached pages.

#ifndef SPRINGFS_VMM_INTERFACES_H_
#define SPRINGFS_VMM_INTERFACES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/obj/object.h"
#include "src/support/bytes.h"
#include "src/support/result.h"

namespace springfs {

using Offset = uint64_t;
inline constexpr uint32_t kPageSize = 4096;

inline constexpr Offset PageFloor(Offset offset) {
  return offset & ~Offset{kPageSize - 1};
}
inline constexpr Offset PageCeil(Offset offset) {
  return PageFloor(offset + kPageSize - 1);
}

// A byte range within a memory object. Every coherency-facing operation
// takes a Range instead of a bare (Offset, Offset) pair so that swapped
// offset/size arguments are a type error at the call site, not a data
// corruption at runtime.
struct Range {
  Offset offset = 0;
  Offset size = 0;

  // The whole memory object ([0, ~0)); the conventional argument for
  // whole-file flushes and teardown.
  static constexpr Range All() { return Range{0, ~Offset{0}}; }
  static constexpr Range FromTo(Offset begin, Offset end) {
    return Range{begin, end - begin};
  }

  // One-past-the-end offset, saturating at the top of the offset space so
  // Range::All() and other huge ranges never wrap.
  constexpr Offset end() const {
    Offset e = offset + size;
    return e < offset ? ~Offset{0} : e;
  }
  constexpr bool empty() const { return size == 0; }
  constexpr bool Contains(Offset o) const { return o >= offset && o < end(); }

  // Expands to whole pages: page-floors the start, keeps the (saturating)
  // end. This is the granularity coherency state is kept at.
  constexpr Range PageExpanded() const {
    Offset begin = PageFloor(offset);
    return Range{begin, end() - begin};
  }

  constexpr bool operator==(const Range& other) const {
    return offset == other.offset && size == other.size;
  }
};

enum class AccessRights : uint8_t {
  kReadOnly,
  kReadWrite,
};

// One page-aligned run of data handed between a cache manager and a pager.
struct BlockData {
  Offset offset = 0;  // page-aligned offset within the memory object
  Buffer data;        // kPageSize bytes per page
};

// --- Appendix A: cache objects, implemented by cache managers -------------
//
// "Cache objects are implemented by cache managers and are invoked by
// pagers." The VMM is one cache manager; pagers can also act as cache
// managers to other pagers (section 4.2), which is the basis of coherent
// file-system stacking.
class CacheObject : public virtual Object {
 public:
  const char* interface_name() const override { return "cache_object"; }

  // Removes data from the cache and returns modified blocks to the pager.
  virtual Result<std::vector<BlockData>> FlushBack(Range range) = 0;

  // Downgrades read-write blocks to read-only and returns modified blocks.
  virtual Result<std::vector<BlockData>> DenyWrites(Range range) = 0;

  // Returns modified blocks; data is retained in the cache in the same mode
  // as before the call.
  virtual Result<std::vector<BlockData>> WriteBack(Range range) = 0;

  // Removes data from the cache; no data is returned.
  virtual Status DeleteRange(Range range) = 0;

  // Indicates that a particular range of the cache is zero-filled.
  virtual Status ZeroFill(Range range) = 0;

  // Introduces data into the cache.
  virtual Status Populate(Offset offset, AccessRights access,
                          ByteSpan data) = 0;

  // Tears the cache down (the pager is going away).
  virtual Status DestroyCache() = 0;
};

// --- Appendix B: pager objects, implemented by pagers ---------------------
class PagerObject : public virtual Object {
 public:
  const char* interface_name() const override { return "pager_object"; }

  // Requests `size` bytes at `offset` (both page-aligned) in the given
  // mode. The pager may return more data than asked (read-ahead); the
  // result is at least min(size, whatever exists) rounded to whole pages.
  virtual Result<Buffer> PageIn(Offset offset, Offset size,
                                AccessRights access) = 0;

  // Writes data to the pager; the caller no longer retains it.
  virtual Status PageOut(Offset offset, ByteSpan data) = 0;

  // Writes data to the pager; the caller retains it read-only.
  virtual Status WriteOut(Offset offset, ByteSpan data) = 0;

  // Writes data to the pager; the caller retains it in the same mode.
  virtual Status Sync(Offset offset, ByteSpan data) = 0;

  // Called by the cache manager when it closes its end of the connection.
  virtual void DoneWithPagerObject() = 0;
};

// Identifies a pager-cache channel; returned by bind. Two equivalent memory
// objects mapped at the same cache manager return the *same* cache_rights
// object, letting the manager find existing cached pages.
class CacheRights : public virtual Object {
 public:
  const char* interface_name() const override { return "cache_rights"; }

  // Opaque channel identity, unique within the issuing cache manager.
  virtual uint64_t channel_id() const = 0;
};

class CacheManager;

// --- memory objects --------------------------------------------------------
class MemoryObject : public virtual Object {
 public:
  const char* interface_name() const override { return "memory_object"; }

  // Connects `caller` (a cache manager) to this memory object's pager and
  // returns the cache_rights object identifying the pager-cache channel to
  // use. If no channel exists yet between the pager and `caller`, the pager
  // contacts the caller (CacheManager::EstablishChannel) and the two
  // exchange pager / cache / cache_rights objects.
  virtual Result<sp<CacheRights>> Bind(const sp<CacheManager>& caller,
                                       AccessRights requested_access) = 0;

  virtual Result<Offset> GetLength() = 0;
  virtual Status SetLength(Offset length) = 0;
};

// A cache manager: anything that caches memory-object data — the VMM, or a
// file-system layer acting as a cache manager for the layer below it.
class CacheManager : public virtual Object {
 public:
  const char* interface_name() const override { return "cache_manager"; }

  struct ChannelSetup {
    sp<CacheObject> cache;
    sp<CacheRights> rights;
  };

  // Invoked by a pager while servicing a bind: creates (or finds) this
  // manager's end of the channel for the pager-side identity `pager_key`,
  // remembering `pager` as the data source. Idempotent per (this,
  // pager_key).
  virtual Result<ChannelSetup> EstablishChannel(uint64_t pager_key,
                                                sp<PagerObject> pager) = 0;

  // Diagnostic identity.
  virtual std::string cache_manager_name() const = 0;
};

}  // namespace springfs

#endif  // SPRINGFS_VMM_INTERFACES_H_
