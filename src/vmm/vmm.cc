#include "src/vmm/vmm.h"

#include <algorithm>
#include <cstring>

#include "src/obs/trace.h"

namespace springfs {
namespace {

metrics::OpMetric& FaultMetric() {
  static metrics::OpMetric metric("vmm/fault");
  return metric;
}

metrics::OpMetric& MapMetric() {
  static metrics::OpMetric metric("vmm/map");
  return metric;
}

// Distribution of fault cluster widths, in pages. A healthy sequential
// workload shows mass in the high power-of-two buckets; pure random access
// stays in bucket 1.
metrics::Histogram& ClusterSizeHistogram() {
  static metrics::Histogram& histogram =
      metrics::Registry::Global().histogram("vmm/fault.cluster_pages");
  return histogram;
}

// A contiguous run of pages headed for one multi-page pager call.
struct DirtyRun {
  Offset offset = 0;
  Buffer data;
};

}  // namespace

// cache_rights servant handed back from bind; names one channel of one VMM.
class VmmCacheRights : public CacheRights {
 public:
  explicit VmmCacheRights(uint64_t channel_id) : channel_id_(channel_id) {}
  uint64_t channel_id() const override { return channel_id_; }

 private:
  uint64_t channel_id_;
};

// The VMM's cache-object servant for one channel; pagers invoke it for
// coherency actions. Runs in the VMM's domain like any servant.
class VmmCacheObject : public CacheObject, public Servant {
 public:
  VmmCacheObject(sp<Domain> domain, wp<Vmm> vmm, uint64_t channel_id)
      : Servant(std::move(domain)), vmm_(std::move(vmm)),
        channel_id_(channel_id) {}

  Result<std::vector<BlockData>> FlushBack(Range range) override {
    return InDomain([&]() -> Result<std::vector<BlockData>> {
      sp<Vmm> vmm = vmm_.lock();
      if (!vmm) {
        return ErrDeadObject("vmm gone");
      }
      return vmm->CacheFlushBack(channel_id_, range);
    });
  }

  Result<std::vector<BlockData>> DenyWrites(Range range) override {
    return InDomain([&]() -> Result<std::vector<BlockData>> {
      sp<Vmm> vmm = vmm_.lock();
      if (!vmm) {
        return ErrDeadObject("vmm gone");
      }
      return vmm->CacheDenyWrites(channel_id_, range);
    });
  }

  Result<std::vector<BlockData>> WriteBack(Range range) override {
    return InDomain([&]() -> Result<std::vector<BlockData>> {
      sp<Vmm> vmm = vmm_.lock();
      if (!vmm) {
        return ErrDeadObject("vmm gone");
      }
      return vmm->CacheWriteBack(channel_id_, range);
    });
  }

  Status DeleteRange(Range range) override {
    return InDomain([&]() -> Status {
      sp<Vmm> vmm = vmm_.lock();
      if (!vmm) {
        return ErrDeadObject("vmm gone");
      }
      return vmm->CacheDeleteRange(channel_id_, range);
    });
  }

  Status ZeroFill(Range range) override {
    return InDomain([&]() -> Status {
      sp<Vmm> vmm = vmm_.lock();
      if (!vmm) {
        return ErrDeadObject("vmm gone");
      }
      return vmm->CacheZeroFill(channel_id_, range);
    });
  }

  Status Populate(Offset offset, AccessRights access, ByteSpan data) override {
    return InDomain([&]() -> Status {
      sp<Vmm> vmm = vmm_.lock();
      if (!vmm) {
        return ErrDeadObject("vmm gone");
      }
      return vmm->CachePopulate(channel_id_, offset, access, data);
    });
  }

  Status DestroyCache() override {
    return InDomain([&]() -> Status {
      sp<Vmm> vmm = vmm_.lock();
      if (!vmm) {
        return ErrDeadObject("vmm gone");
      }
      return vmm->CacheDestroy(channel_id_);
    });
  }

 private:
  wp<Vmm> vmm_;
  uint64_t channel_id_;
};

sp<Vmm> Vmm::Create(sp<Domain> domain, std::string name, size_t max_pages) {
  VmmOptions options;
  options.max_pages = max_pages;
  return Create(std::move(domain), std::move(name), options);
}

sp<Vmm> Vmm::Create(sp<Domain> domain, std::string name, VmmOptions options) {
  return sp<Vmm>(new Vmm(std::move(domain), std::move(name), options));
}

Vmm::Vmm(sp<Domain> domain, std::string name, VmmOptions options)
    : Servant(std::move(domain)), name_(std::move(name)),
      max_pages_(options.max_pages),
      read_ahead_pages_(options.read_ahead_pages) {
  metrics::Registry::Global().RegisterProvider(this);
}

Vmm::~Vmm() { metrics::Registry::Global().UnregisterProvider(this); }

void Vmm::CollectStats(const metrics::StatsEmitter& emit) const {
  emit("faults", faults_.load(std::memory_order_relaxed));
  emit("page_hits", page_hits_.load(std::memory_order_relaxed));
  emit("read_ahead_hits", read_ahead_hits_.load(std::memory_order_relaxed));
  emit("evictions", evictions_.load(std::memory_order_relaxed));
  emit("pages_cached", total_pages_.load(std::memory_order_relaxed));
  emit("flush_backs", flush_backs_.load(std::memory_order_relaxed));
  emit("deny_writes", deny_writes_.load(std::memory_order_relaxed));
  emit("write_backs", write_backs_.load(std::memory_order_relaxed));
}

Result<CacheManager::ChannelSetup> Vmm::EstablishChannel(
    uint64_t pager_key, sp<PagerObject> pager) {
  return InDomain([&]() -> Result<ChannelSetup> {
    std::lock_guard<std::mutex> lock(channels_mutex_);
    auto existing = channel_by_pager_key_.find(pager_key);
    if (existing != channel_by_pager_key_.end()) {
      const sp<Channel>& ch = channels_.at(existing->second);
      return ChannelSetup{ch->cache_object, ch->rights_object};
    }
    uint64_t id = next_channel_id_++;
    auto ch = std::make_shared<Channel>();
    ch->id = id;
    ch->pager_key = pager_key;
    ch->pager = std::move(pager);
    ch->cache_object = std::make_shared<VmmCacheObject>(
        domain(), std::dynamic_pointer_cast<Vmm>(shared_from_this()), id);
    ch->rights_object = std::make_shared<VmmCacheRights>(id);
    ChannelSetup setup{ch->cache_object, ch->rights_object};
    channels_.emplace(id, std::move(ch));
    channel_by_pager_key_.emplace(pager_key, id);
    return setup;
  });
}

sp<Vmm::Channel> Vmm::FindChannel(uint64_t channel_id) const {
  std::lock_guard<std::mutex> lock(channels_mutex_);
  auto it = channels_.find(channel_id);
  return it == channels_.end() ? nullptr : it->second;
}

Result<sp<MappedRegion>> Vmm::Map(const sp<MemoryObject>& object,
                                  AccessRights access) {
  metrics::TimedOp timed(MapMetric(), "vmm.map");
  sp<Vmm> self = std::dynamic_pointer_cast<Vmm>(shared_from_this());
  ASSIGN_OR_RETURN(sp<CacheRights> rights, object->Bind(self, access));
  uint64_t channel_id = rights->channel_id();
  if (FindChannel(channel_id) == nullptr) {
    return ErrInvalidArgument(
        "bind returned cache rights for a channel this VMM does not own");
  }
  return std::make_shared<MappedRegion>(self, channel_id, access);
}

void Vmm::InsertPageLocked(Channel& ch, Offset offset, AccessRights access,
                           Buffer&& data, Offset demanded) {
  auto it = ch.pages.find(offset);
  if (it != ch.pages.end()) {
    Page& existing = it->second;
    // A page that appeared (or was dirtied) while the pager call was in
    // flight is newer than what the pager returned: keep it. Only the
    // demanded page may upgrade a still-clean read-only mapping in place.
    if (offset != demanded || existing.dirty ||
        existing.rights == AccessRights::kReadWrite) {
      return;
    }
    existing.data = std::move(data);
    existing.rights = access;
    existing.prefetched = false;
    existing.lru_tick = NextLruTick();
    return;
  }
  Page page;
  page.data = std::move(data);
  page.rights = access;
  page.dirty = false;
  page.prefetched = (offset != demanded);
  page.lru_tick = NextLruTick();
  ch.pages.emplace(offset, std::move(page));
  total_pages_.fetch_add(1, std::memory_order_relaxed);
}

Status Vmm::FaultCluster(Channel& ch, Offset page_offset, AccessRights access) {
  // Pick the cluster width from the sequential detector. Write faults are
  // never widened: a clustered read-write page_in would claim write
  // ownership over pages nobody is storing to, inflating coherency traffic.
  uint32_t cluster = 1;
  {
    std::lock_guard<std::mutex> lock(ch.mutex);
    if (ch.destroyed) {
      return ErrStale("channel destroyed");
    }
    if (access == AccessRights::kReadOnly && read_ahead_pages_ > 0) {
      if (ch.next_expected == page_offset) {
        ch.cluster_pages =
            std::min<uint32_t>(ch.cluster_pages * 2, read_ahead_pages_);
      } else {
        ch.cluster_pages = 1;
      }
      cluster = std::max<uint32_t>(ch.cluster_pages, 1);
    }
    ch.next_expected = page_offset + Offset{cluster} * kPageSize;
  }

  // Issue the page_in with no lock held — the pager's coherency protocol
  // may re-enter our cache objects (deny_writes on another channel, or
  // even this one).
  faults_.fetch_add(1, std::memory_order_relaxed);
  ClusterSizeHistogram().Record(cluster);
  Result<Buffer> reply = [&] {
    metrics::TimedOp timed(FaultMetric(), "vmm.fault");
    return ch.pager->PageIn(page_offset, Offset{cluster} * kPageSize, access);
  }();
  if (!reply.ok() && cluster > 1) {
    // A widened fault may cross a range the pager refuses (EOF, a hole, a
    // revoked region). The demanded page alone must still be served.
    faults_.fetch_add(1, std::memory_order_relaxed);
    ClusterSizeHistogram().Record(1);
    metrics::TimedOp timed(FaultMetric(), "vmm.fault");
    reply = ch.pager->PageIn(page_offset, kPageSize, access);
  }
  RETURN_IF_ERROR(reply.status());
  Buffer data = std::move(*reply);
  if (data.size() == 0 || data.size() % kPageSize != 0) {
    data.resize(PageCeil(std::max<Offset>(data.size(), 1)));
  }

  {
    std::lock_guard<std::mutex> lock(ch.mutex);
    if (ch.destroyed) {
      return ErrStale("channel destroyed during fault");
    }
    if (data.size() == kPageSize) {
      // Exactly one page: adopt the reply buffer, no copy.
      InsertPageLocked(ch, page_offset, access, std::move(data), page_offset);
    } else {
      for (Offset off = 0; off < data.size(); off += kPageSize) {
        InsertPageLocked(ch, page_offset + off, access,
                         Buffer(data.subspan(off, kPageSize)), page_offset);
      }
    }
    // The pager may have over-delivered (its own read-ahead); count a fault
    // at the end of whatever actually arrived as sequential too.
    if (access == AccessRights::kReadOnly) {
      ch.next_expected =
          std::max<Offset>(ch.next_expected, page_offset + data.size());
    }
  }
  return EvictIfNeeded();
}

Status Vmm::EvictIfNeeded() {
  if (max_pages_ == 0) {
    return Status::Ok();
  }
  while (total_pages_.load(std::memory_order_relaxed) > max_pages_) {
    // Phase 1: find the globally least-recently-used page, taking one
    // channel lock at a time.
    std::vector<sp<Channel>> snapshot;
    {
      std::lock_guard<std::mutex> lock(channels_mutex_);
      snapshot.reserve(channels_.size());
      for (const auto& [id, ch] : channels_) {
        snapshot.push_back(ch);
      }
    }
    sp<Channel> victim_ch;
    Offset victim_offset = 0;
    uint64_t best_tick = ~0ull;
    for (const sp<Channel>& ch : snapshot) {
      std::lock_guard<std::mutex> lock(ch->mutex);
      for (const auto& [off, page] : ch->pages) {
        if (page.lru_tick < best_tick) {
          best_tick = page.lru_tick;
          victim_ch = ch;
          victim_offset = off;
        }
      }
    }
    if (victim_ch == nullptr) {
      return Status::Ok();
    }

    // Phase 2: re-lock the victim's channel, re-verify, and evict. A dirty
    // victim takes its contiguous dirty neighbours with it so the write-back
    // is one multi-page page_out (cluster write-back).
    DirtyRun run;
    bool dirty = false;
    {
      std::lock_guard<std::mutex> lock(victim_ch->mutex);
      auto it = victim_ch->pages.find(victim_offset);
      if (it == victim_ch->pages.end()) {
        continue;  // raced with an invalidation; rescan
      }
      dirty = it->second.dirty;
      if (!dirty) {
        victim_ch->pages.erase(it);
        total_pages_.fetch_sub(1, std::memory_order_relaxed);
        evictions_.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      Offset lo = victim_offset;
      Offset hi = victim_offset + kPageSize;
      while (lo >= kPageSize) {
        auto prev = victim_ch->pages.find(lo - kPageSize);
        if (prev == victim_ch->pages.end() || !prev->second.dirty) {
          break;
        }
        lo -= kPageSize;
      }
      for (;;) {
        auto next = victim_ch->pages.find(hi);
        if (next == victim_ch->pages.end() || !next->second.dirty) {
          break;
        }
        hi += kPageSize;
      }
      run.offset = lo;
      run.data = Buffer(hi - lo);
      size_t evicted = 0;
      for (Offset off = lo; off < hi; off += kPageSize) {
        auto page_it = victim_ch->pages.find(off);
        std::memcpy(run.data.data() + (off - lo), page_it->second.data.data(),
                    kPageSize);
        victim_ch->pages.erase(page_it);
        ++evicted;
      }
      total_pages_.fetch_sub(evicted, std::memory_order_relaxed);
      evictions_.fetch_add(evicted, std::memory_order_relaxed);
    }
    if (dirty) {
      trace::ScopedSpan span("vmm.evict");
      RETURN_IF_ERROR(victim_ch->pager->PageOut(run.offset, run.data.span()));
    }
  }
  return Status::Ok();
}

Status Vmm::RegionRead(uint64_t channel_id, Offset offset,
                       MutableByteSpan out) {
  size_t done = 0;
  while (done < out.size()) {
    Offset page_offset = PageFloor(offset + done);
    size_t in_page = (offset + done) - page_offset;
    size_t chunk = std::min<size_t>(kPageSize - in_page, out.size() - done);
    RETURN_IF_ERROR(EnsurePageAnd(
        channel_id, page_offset, AccessRights::kReadOnly, [&](Page& page) {
          std::memcpy(out.data() + done, page.data.data() + in_page, chunk);
        }));
    done += chunk;
  }
  return Status::Ok();
}

Status Vmm::RegionWrite(uint64_t channel_id, Offset offset, ByteSpan data) {
  size_t done = 0;
  while (done < data.size()) {
    Offset page_offset = PageFloor(offset + done);
    size_t in_page = (offset + done) - page_offset;
    size_t chunk = std::min<size_t>(kPageSize - in_page, data.size() - done);
    RETURN_IF_ERROR(EnsurePageAnd(
        channel_id, page_offset, AccessRights::kReadWrite, [&](Page& page) {
          std::memcpy(page.data.data() + in_page, data.data() + done, chunk);
          page.dirty = true;
        }));
    done += chunk;
  }
  return Status::Ok();
}

Status Vmm::RegionSync(uint64_t channel_id) {
  trace::ScopedSpan span("vmm.sync");
  sp<Channel> ch = FindChannel(channel_id);
  if (ch == nullptr) {
    return ErrStale("channel destroyed");
  }
  // Coalesce contiguous dirty pages into single multi-page sync calls.
  std::vector<DirtyRun> runs;
  {
    std::lock_guard<std::mutex> lock(ch->mutex);
    Offset run_end = 0;
    for (const auto& [off, page] : ch->pages) {
      if (!page.dirty) {
        continue;
      }
      if (runs.empty() || off != run_end) {
        runs.push_back(DirtyRun{off, Buffer(page.data.span())});
      } else {
        runs.back().data.WriteAt(runs.back().data.size(), page.data.span());
      }
      run_end = off + kPageSize;
    }
  }
  for (const DirtyRun& run : runs) {
    RETURN_IF_ERROR(ch->pager->Sync(run.offset, run.data.span()));
  }
  {
    std::lock_guard<std::mutex> lock(ch->mutex);
    for (const DirtyRun& run : runs) {
      for (Offset off = run.offset; off < run.offset + run.data.size();
           off += kPageSize) {
        auto page_it = ch->pages.find(off);
        if (page_it != ch->pages.end()) {
          page_it->second.dirty = false;
        }
      }
    }
  }
  return Status::Ok();
}

// --- cache-object callbacks ---

Result<std::vector<BlockData>> Vmm::CacheFlushBack(uint64_t channel_id,
                                                   Range range) {
  trace::ScopedSpan span("vmm.flush_back");
  flush_backs_.fetch_add(1, std::memory_order_relaxed);
  sp<Channel> ch = FindChannel(channel_id);
  if (ch == nullptr) {
    return ErrStale("channel destroyed");
  }
  std::lock_guard<std::mutex> lock(ch->mutex);
  Offset end = range.end();
  std::vector<BlockData> modified;
  auto it = ch->pages.lower_bound(PageFloor(range.offset));
  while (it != ch->pages.end() && it->first < end) {
    if (it->second.dirty) {
      modified.push_back(BlockData{it->first, std::move(it->second.data)});
    }
    it = ch->pages.erase(it);
    total_pages_.fetch_sub(1, std::memory_order_relaxed);
  }
  return modified;
}

Result<std::vector<BlockData>> Vmm::CacheDenyWrites(uint64_t channel_id,
                                                    Range range) {
  trace::ScopedSpan span("vmm.deny_writes");
  deny_writes_.fetch_add(1, std::memory_order_relaxed);
  sp<Channel> ch = FindChannel(channel_id);
  if (ch == nullptr) {
    return ErrStale("channel destroyed");
  }
  std::lock_guard<std::mutex> lock(ch->mutex);
  Offset end = range.end();
  std::vector<BlockData> modified;
  for (auto it = ch->pages.lower_bound(PageFloor(range.offset));
       it != ch->pages.end() && it->first < end; ++it) {
    Page& page = it->second;
    if (page.dirty) {
      modified.push_back(BlockData{it->first, page.data});
      page.dirty = false;
    }
    page.rights = AccessRights::kReadOnly;
  }
  return modified;
}

Result<std::vector<BlockData>> Vmm::CacheWriteBack(uint64_t channel_id,
                                                   Range range) {
  trace::ScopedSpan span("vmm.write_back");
  write_backs_.fetch_add(1, std::memory_order_relaxed);
  sp<Channel> ch = FindChannel(channel_id);
  if (ch == nullptr) {
    return ErrStale("channel destroyed");
  }
  std::lock_guard<std::mutex> lock(ch->mutex);
  Offset end = range.end();
  std::vector<BlockData> modified;
  for (auto it = ch->pages.lower_bound(PageFloor(range.offset));
       it != ch->pages.end() && it->first < end; ++it) {
    Page& page = it->second;
    if (page.dirty) {
      modified.push_back(BlockData{it->first, page.data});
      page.dirty = false;
    }
  }
  return modified;
}

Status Vmm::CacheDeleteRange(uint64_t channel_id, Range range) {
  sp<Channel> ch = FindChannel(channel_id);
  if (ch == nullptr) {
    return ErrStale("channel destroyed");
  }
  std::lock_guard<std::mutex> lock(ch->mutex);
  Offset end = range.end();
  auto it = ch->pages.lower_bound(PageFloor(range.offset));
  while (it != ch->pages.end() && it->first < end) {
    it = ch->pages.erase(it);
    total_pages_.fetch_sub(1, std::memory_order_relaxed);
  }
  return Status::Ok();
}

Status Vmm::CacheZeroFill(uint64_t channel_id, Range range) {
  sp<Channel> ch = FindChannel(channel_id);
  if (ch == nullptr) {
    return ErrStale("channel destroyed");
  }
  std::lock_guard<std::mutex> lock(ch->mutex);
  Offset end = range.end();
  for (auto it = ch->pages.lower_bound(PageFloor(range.offset));
       it != ch->pages.end() && it->first < end; ++it) {
    std::memset(it->second.data.data(), 0, it->second.data.size());
    it->second.dirty = false;
  }
  return Status::Ok();
}

Status Vmm::CachePopulate(uint64_t channel_id, Offset offset,
                          AccessRights access, ByteSpan data) {
  if (offset % kPageSize != 0 || data.size() % kPageSize != 0) {
    return ErrInvalidArgument("populate must be page-aligned");
  }
  sp<Channel> ch = FindChannel(channel_id);
  if (ch == nullptr) {
    return ErrStale("channel destroyed");
  }
  {
    std::lock_guard<std::mutex> lock(ch->mutex);
    if (ch->destroyed) {
      return ErrStale("channel destroyed");
    }
    // The pager is authoritative here: populate overwrites unconditionally.
    for (Offset off = 0; off < data.size(); off += kPageSize) {
      Page page;
      page.data = Buffer(data.subspan(off, kPageSize));
      page.rights = access;
      page.dirty = false;
      page.lru_tick = NextLruTick();
      auto [it, inserted] =
          ch->pages.insert_or_assign(offset + off, std::move(page));
      (void)it;
      if (inserted) {
        total_pages_.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
  return EvictIfNeeded();
}

Status Vmm::CacheDestroy(uint64_t channel_id) {
  sp<Channel> ch;
  {
    std::lock_guard<std::mutex> lock(channels_mutex_);
    auto it = channels_.find(channel_id);
    if (it == channels_.end()) {
      return Status::Ok();
    }
    ch = it->second;
    channel_by_pager_key_.erase(ch->pager_key);
    channels_.erase(it);
  }
  std::lock_guard<std::mutex> lock(ch->mutex);
  ch->destroyed = true;
  total_pages_.fetch_sub(ch->pages.size(), std::memory_order_relaxed);
  ch->pages.clear();
  return Status::Ok();
}

Status Vmm::DropAllPages() {
  std::vector<sp<Channel>> snapshot;
  {
    std::lock_guard<std::mutex> lock(channels_mutex_);
    snapshot.reserve(channels_.size());
    for (const auto& [id, ch] : channels_) {
      snapshot.push_back(ch);
    }
  }
  Status first_error;
  for (const sp<Channel>& ch : snapshot) {
    // Coalesce contiguous dirty pages into single multi-page page_outs.
    std::vector<DirtyRun> runs;
    {
      std::lock_guard<std::mutex> lock(ch->mutex);
      Offset run_end = 0;
      for (auto& [off, page] : ch->pages) {
        if (page.dirty) {
          if (runs.empty() || off != run_end) {
            runs.push_back(DirtyRun{off, std::move(page.data)});
          } else {
            runs.back().data.WriteAt(runs.back().data.size(),
                                     page.data.span());
          }
          run_end = off + kPageSize;
        }
      }
      total_pages_.fetch_sub(ch->pages.size(), std::memory_order_relaxed);
      ch->pages.clear();
    }
    // Best effort across channels: one channel whose pager rejects the
    // write-back (e.g. a fenced/stale DFS channel after a server-side
    // eviction) must not strand every other channel's dirty data. The
    // first error is still reported.
    for (const DirtyRun& run : runs) {
      Status st = ch->pager->PageOut(run.offset, run.data.span());
      if (!st.ok() && first_error.ok()) {
        first_error = st;
      }
    }
  }
  return first_error;
}

void Vmm::ResetStats() {
  faults_.store(0, std::memory_order_relaxed);
  page_hits_.store(0, std::memory_order_relaxed);
  read_ahead_hits_.store(0, std::memory_order_relaxed);
  evictions_.store(0, std::memory_order_relaxed);
  flush_backs_.store(0, std::memory_order_relaxed);
  deny_writes_.store(0, std::memory_order_relaxed);
  write_backs_.store(0, std::memory_order_relaxed);
}

// --- MappedRegion ---

MappedRegion::MappedRegion(sp<Vmm> vmm, uint64_t channel_id,
                           AccessRights access)
    : vmm_(std::move(vmm)), channel_id_(channel_id), access_(access) {}

Status MappedRegion::Read(Offset offset, MutableByteSpan out) {
  return vmm_->RegionRead(channel_id_, offset, out);
}

Status MappedRegion::Write(Offset offset, ByteSpan data) {
  if (access_ != AccessRights::kReadWrite) {
    return ErrPermissionDenied("store to read-only mapping");
  }
  return vmm_->RegionWrite(channel_id_, offset, data);
}

Status MappedRegion::Sync() { return vmm_->RegionSync(channel_id_); }

// --- AddressSpace ---

Result<sp<MappedRegion>> AddressSpace::Map(const sp<MemoryObject>& object,
                                           AccessRights access) {
  ASSIGN_OR_RETURN(sp<MappedRegion> region, vmm_->Map(object, access));
  std::lock_guard<std::mutex> lock(mutex_);
  mappings_.push_back(region);
  return region;
}

void AddressSpace::Unmap(const sp<MappedRegion>& region) {
  std::lock_guard<std::mutex> lock(mutex_);
  mappings_.erase(std::remove(mappings_.begin(), mappings_.end(), region),
                  mappings_.end());
}

size_t AddressSpace::NumMappings() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return mappings_.size();
}

}  // namespace springfs
