#include "src/vmm/vmm.h"

#include <algorithm>
#include <functional>

#include "src/obs/trace.h"

namespace springfs {
namespace {

metrics::OpMetric& FaultMetric() {
  static metrics::OpMetric metric("vmm/fault");
  return metric;
}

metrics::OpMetric& MapMetric() {
  static metrics::OpMetric metric("vmm/map");
  return metric;
}

}  // namespace

// cache_rights servant handed back from bind; names one channel of one VMM.
class VmmCacheRights : public CacheRights {
 public:
  explicit VmmCacheRights(uint64_t channel_id) : channel_id_(channel_id) {}
  uint64_t channel_id() const override { return channel_id_; }

 private:
  uint64_t channel_id_;
};

// The VMM's cache-object servant for one channel; pagers invoke it for
// coherency actions. Runs in the VMM's domain like any servant.
class VmmCacheObject : public CacheObject, public Servant {
 public:
  VmmCacheObject(sp<Domain> domain, wp<Vmm> vmm, uint64_t channel_id)
      : Servant(std::move(domain)), vmm_(std::move(vmm)),
        channel_id_(channel_id) {}

  Result<std::vector<BlockData>> FlushBack(Range range) override {
    return InDomain([&]() -> Result<std::vector<BlockData>> {
      sp<Vmm> vmm = vmm_.lock();
      if (!vmm) {
        return ErrDeadObject("vmm gone");
      }
      return vmm->CacheFlushBack(channel_id_, range);
    });
  }

  Result<std::vector<BlockData>> DenyWrites(Range range) override {
    return InDomain([&]() -> Result<std::vector<BlockData>> {
      sp<Vmm> vmm = vmm_.lock();
      if (!vmm) {
        return ErrDeadObject("vmm gone");
      }
      return vmm->CacheDenyWrites(channel_id_, range);
    });
  }

  Result<std::vector<BlockData>> WriteBack(Range range) override {
    return InDomain([&]() -> Result<std::vector<BlockData>> {
      sp<Vmm> vmm = vmm_.lock();
      if (!vmm) {
        return ErrDeadObject("vmm gone");
      }
      return vmm->CacheWriteBack(channel_id_, range);
    });
  }

  Status DeleteRange(Range range) override {
    return InDomain([&]() -> Status {
      sp<Vmm> vmm = vmm_.lock();
      if (!vmm) {
        return ErrDeadObject("vmm gone");
      }
      return vmm->CacheDeleteRange(channel_id_, range);
    });
  }

  Status ZeroFill(Range range) override {
    return InDomain([&]() -> Status {
      sp<Vmm> vmm = vmm_.lock();
      if (!vmm) {
        return ErrDeadObject("vmm gone");
      }
      return vmm->CacheZeroFill(channel_id_, range);
    });
  }

  Status Populate(Offset offset, AccessRights access, ByteSpan data) override {
    return InDomain([&]() -> Status {
      sp<Vmm> vmm = vmm_.lock();
      if (!vmm) {
        return ErrDeadObject("vmm gone");
      }
      return vmm->CachePopulate(channel_id_, offset, access, data);
    });
  }

  Status DestroyCache() override {
    return InDomain([&]() -> Status {
      sp<Vmm> vmm = vmm_.lock();
      if (!vmm) {
        return ErrDeadObject("vmm gone");
      }
      return vmm->CacheDestroy(channel_id_);
    });
  }

 private:
  wp<Vmm> vmm_;
  uint64_t channel_id_;
};

sp<Vmm> Vmm::Create(sp<Domain> domain, std::string name, size_t max_pages) {
  return sp<Vmm>(new Vmm(std::move(domain), std::move(name), max_pages));
}

Vmm::Vmm(sp<Domain> domain, std::string name, size_t max_pages)
    : Servant(std::move(domain)), name_(std::move(name)),
      max_pages_(max_pages) {
  metrics::Registry::Global().RegisterProvider(this);
}

Vmm::~Vmm() { metrics::Registry::Global().UnregisterProvider(this); }

void Vmm::CollectStats(const metrics::StatsEmitter& emit) const {
  std::lock_guard<std::mutex> lock(mutex_);
  emit("faults", stats_.faults);
  emit("page_hits", stats_.page_hits);
  emit("evictions", stats_.evictions);
  emit("pages_cached", stats_.pages_cached);
  emit("flush_backs", stats_.flush_backs);
  emit("deny_writes", stats_.deny_writes);
  emit("write_backs", stats_.write_backs);
}

Result<CacheManager::ChannelSetup> Vmm::EstablishChannel(
    uint64_t pager_key, sp<PagerObject> pager) {
  return InDomain([&]() -> Result<ChannelSetup> {
    std::lock_guard<std::mutex> lock(mutex_);
    auto existing = channel_by_pager_key_.find(pager_key);
    if (existing != channel_by_pager_key_.end()) {
      Channel& ch = channels_.at(existing->second);
      return ChannelSetup{ch.cache_object, ch.rights_object};
    }
    uint64_t id = next_channel_id_++;
    Channel ch;
    ch.id = id;
    ch.pager_key = pager_key;
    ch.pager = std::move(pager);
    ch.cache_object = std::make_shared<VmmCacheObject>(
        domain(), std::dynamic_pointer_cast<Vmm>(shared_from_this()), id);
    ch.rights_object = std::make_shared<VmmCacheRights>(id);
    ChannelSetup setup{ch.cache_object, ch.rights_object};
    channels_.emplace(id, std::move(ch));
    channel_by_pager_key_.emplace(pager_key, id);
    return setup;
  });
}

Result<sp<MappedRegion>> Vmm::Map(const sp<MemoryObject>& object,
                                  AccessRights access) {
  metrics::TimedOp timed(MapMetric(), "vmm.map");
  sp<Vmm> self = std::dynamic_pointer_cast<Vmm>(shared_from_this());
  ASSIGN_OR_RETURN(sp<CacheRights> rights, object->Bind(self, access));
  uint64_t channel_id = rights->channel_id();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (channels_.find(channel_id) == channels_.end()) {
      return ErrInvalidArgument(
          "bind returned cache rights for a channel this VMM does not own");
    }
  }
  return std::make_shared<MappedRegion>(self, channel_id, access);
}

Status Vmm::EnsurePageAnd(uint64_t channel_id, Offset page_offset,
                          AccessRights access,
                          const std::function<void(Page&)>& with_page) {
  for (int attempt = 0; attempt < 64; ++attempt) {
    sp<PagerObject> pager;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      auto ch_it = channels_.find(channel_id);
      if (ch_it == channels_.end()) {
        return ErrStale("channel destroyed");
      }
      Channel& ch = ch_it->second;
      auto page_it = ch.pages.find(page_offset);
      if (page_it != ch.pages.end() &&
          (access == AccessRights::kReadOnly ||
           page_it->second.rights == AccessRights::kReadWrite)) {
        ++stats_.page_hits;
        page_it->second.lru_tick = ++lru_clock_;
        with_page(page_it->second);
        return Status::Ok();
      }
      pager = ch.pager;
      ++stats_.faults;
    }

    // Fault: issue the page_in with no lock held — the pager's coherency
    // protocol may re-enter our cache objects (deny_writes on another
    // channel, or even this one).
    metrics::TimedOp timed(FaultMetric(), "vmm.fault");
    ASSIGN_OR_RETURN(Buffer data, pager->PageIn(page_offset, kPageSize, access));
    if (data.size() < kPageSize || data.size() % kPageSize != 0) {
      data.resize(PageCeil(std::max<Offset>(data.size(), 1)));
    }

    {
      std::lock_guard<std::mutex> lock(mutex_);
      auto ch_it = channels_.find(channel_id);
      if (ch_it == channels_.end()) {
        return ErrStale("channel destroyed during fault");
      }
      Channel& ch = ch_it->second;
      for (Offset off = 0; off < data.size(); off += kPageSize) {
        Page page;
        page.data = Buffer(data.subspan(off, kPageSize));
        page.rights = access;
        page.dirty = false;
        page.lru_tick = ++lru_clock_;
        auto [it, inserted] = ch.pages.insert_or_assign(page_offset + off,
                                                        std::move(page));
        (void)it;
        if (inserted) {
          ++total_pages_;
        }
      }
      stats_.pages_cached = total_pages_;
    }
    RETURN_IF_ERROR(EvictIfNeeded());
    // Loop: re-check under the lock (a concurrent coherency action may have
    // already invalidated what we just brought in).
  }
  return ErrBusy("page repeatedly invalidated during fault");
}

Status Vmm::EvictIfNeeded() {
  for (;;) {
    sp<PagerObject> pager;
    Offset victim_offset = 0;
    Buffer victim_data;
    bool victim_dirty = false;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (max_pages_ == 0 || total_pages_ <= max_pages_) {
        stats_.pages_cached = total_pages_;
        return Status::Ok();
      }
      // Global LRU scan.
      Channel* victim_channel = nullptr;
      std::map<Offset, Page>::iterator victim_it;
      uint64_t best_tick = ~0ull;
      for (auto& [id, ch] : channels_) {
        for (auto it = ch.pages.begin(); it != ch.pages.end(); ++it) {
          if (it->second.lru_tick < best_tick) {
            best_tick = it->second.lru_tick;
            victim_channel = &ch;
            victim_it = it;
          }
        }
      }
      if (victim_channel == nullptr) {
        return Status::Ok();
      }
      pager = victim_channel->pager;
      victim_offset = victim_it->first;
      victim_dirty = victim_it->second.dirty;
      victim_data = std::move(victim_it->second.data);
      victim_channel->pages.erase(victim_it);
      --total_pages_;
      ++stats_.evictions;
      stats_.pages_cached = total_pages_;
    }
    if (victim_dirty) {
      trace::ScopedSpan span("vmm.evict");
      RETURN_IF_ERROR(pager->PageOut(victim_offset, victim_data.span()));
    }
  }
}

Status Vmm::RegionRead(uint64_t channel_id, Offset offset,
                       MutableByteSpan out) {
  size_t done = 0;
  while (done < out.size()) {
    Offset page_offset = PageFloor(offset + done);
    size_t in_page = (offset + done) - page_offset;
    size_t chunk = std::min<size_t>(kPageSize - in_page, out.size() - done);
    RETURN_IF_ERROR(EnsurePageAnd(
        channel_id, page_offset, AccessRights::kReadOnly, [&](Page& page) {
          std::memcpy(out.data() + done, page.data.data() + in_page, chunk);
        }));
    done += chunk;
  }
  return Status::Ok();
}

Status Vmm::RegionWrite(uint64_t channel_id, Offset offset, ByteSpan data) {
  size_t done = 0;
  while (done < data.size()) {
    Offset page_offset = PageFloor(offset + done);
    size_t in_page = (offset + done) - page_offset;
    size_t chunk = std::min<size_t>(kPageSize - in_page, data.size() - done);
    RETURN_IF_ERROR(EnsurePageAnd(
        channel_id, page_offset, AccessRights::kReadWrite, [&](Page& page) {
          std::memcpy(page.data.data() + in_page, data.data() + done, chunk);
          page.dirty = true;
        }));
    done += chunk;
  }
  return Status::Ok();
}

Status Vmm::RegionSync(uint64_t channel_id) {
  trace::ScopedSpan span("vmm.sync");
  sp<PagerObject> pager;
  std::vector<BlockData> dirty;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto ch_it = channels_.find(channel_id);
    if (ch_it == channels_.end()) {
      return ErrStale("channel destroyed");
    }
    Channel& ch = ch_it->second;
    pager = ch.pager;
    for (auto& [off, page] : ch.pages) {
      if (page.dirty) {
        dirty.push_back(BlockData{off, page.data});
      }
    }
  }
  for (const BlockData& block : dirty) {
    RETURN_IF_ERROR(pager->Sync(block.offset, block.data.span()));
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto ch_it = channels_.find(channel_id);
    if (ch_it == channels_.end()) {
      return Status::Ok();
    }
    for (const BlockData& block : dirty) {
      auto page_it = ch_it->second.pages.find(block.offset);
      if (page_it != ch_it->second.pages.end()) {
        page_it->second.dirty = false;
      }
    }
  }
  return Status::Ok();
}

// --- cache-object callbacks ---

Result<std::vector<BlockData>> Vmm::CacheFlushBack(uint64_t channel_id,
                                                   Range range) {
  trace::ScopedSpan span("vmm.flush_back");
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.flush_backs;
  auto ch_it = channels_.find(channel_id);
  if (ch_it == channels_.end()) {
    return ErrStale("channel destroyed");
  }
  Channel& ch = ch_it->second;
  Offset end = range.end();
  std::vector<BlockData> modified;
  auto it = ch.pages.lower_bound(PageFloor(range.offset));
  while (it != ch.pages.end() && it->first < end) {
    if (it->second.dirty) {
      modified.push_back(BlockData{it->first, std::move(it->second.data)});
    }
    it = ch.pages.erase(it);
    --total_pages_;
  }
  stats_.pages_cached = total_pages_;
  return modified;
}

Result<std::vector<BlockData>> Vmm::CacheDenyWrites(uint64_t channel_id,
                                                    Range range) {
  trace::ScopedSpan span("vmm.deny_writes");
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.deny_writes;
  auto ch_it = channels_.find(channel_id);
  if (ch_it == channels_.end()) {
    return ErrStale("channel destroyed");
  }
  Channel& ch = ch_it->second;
  Offset end = range.end();
  std::vector<BlockData> modified;
  for (auto it = ch.pages.lower_bound(PageFloor(range.offset));
       it != ch.pages.end() && it->first < end; ++it) {
    Page& page = it->second;
    if (page.dirty) {
      modified.push_back(BlockData{it->first, page.data});
      page.dirty = false;
    }
    page.rights = AccessRights::kReadOnly;
  }
  return modified;
}

Result<std::vector<BlockData>> Vmm::CacheWriteBack(uint64_t channel_id,
                                                   Range range) {
  trace::ScopedSpan span("vmm.write_back");
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.write_backs;
  auto ch_it = channels_.find(channel_id);
  if (ch_it == channels_.end()) {
    return ErrStale("channel destroyed");
  }
  Channel& ch = ch_it->second;
  Offset end = range.end();
  std::vector<BlockData> modified;
  for (auto it = ch.pages.lower_bound(PageFloor(range.offset));
       it != ch.pages.end() && it->first < end; ++it) {
    Page& page = it->second;
    if (page.dirty) {
      modified.push_back(BlockData{it->first, page.data});
      page.dirty = false;
    }
  }
  return modified;
}

Status Vmm::CacheDeleteRange(uint64_t channel_id, Range range) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto ch_it = channels_.find(channel_id);
  if (ch_it == channels_.end()) {
    return ErrStale("channel destroyed");
  }
  Channel& ch = ch_it->second;
  Offset end = range.end();
  auto it = ch.pages.lower_bound(PageFloor(range.offset));
  while (it != ch.pages.end() && it->first < end) {
    it = ch.pages.erase(it);
    --total_pages_;
  }
  stats_.pages_cached = total_pages_;
  return Status::Ok();
}

Status Vmm::CacheZeroFill(uint64_t channel_id, Range range) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto ch_it = channels_.find(channel_id);
  if (ch_it == channels_.end()) {
    return ErrStale("channel destroyed");
  }
  Channel& ch = ch_it->second;
  Offset end = range.end();
  for (auto it = ch.pages.lower_bound(PageFloor(range.offset));
       it != ch.pages.end() && it->first < end; ++it) {
    std::memset(it->second.data.data(), 0, it->second.data.size());
    it->second.dirty = false;
  }
  return Status::Ok();
}

Status Vmm::CachePopulate(uint64_t channel_id, Offset offset,
                          AccessRights access, ByteSpan data) {
  if (offset % kPageSize != 0 || data.size() % kPageSize != 0) {
    return ErrInvalidArgument("populate must be page-aligned");
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto ch_it = channels_.find(channel_id);
    if (ch_it == channels_.end()) {
      return ErrStale("channel destroyed");
    }
    Channel& ch = ch_it->second;
    for (Offset off = 0; off < data.size(); off += kPageSize) {
      Page page;
      page.data = Buffer(data.subspan(off, kPageSize));
      page.rights = access;
      page.dirty = false;
      page.lru_tick = ++lru_clock_;
      auto [it, inserted] =
          ch.pages.insert_or_assign(offset + off, std::move(page));
      (void)it;
      if (inserted) {
        ++total_pages_;
      }
    }
    stats_.pages_cached = total_pages_;
  }
  return EvictIfNeeded();
}

Status Vmm::CacheDestroy(uint64_t channel_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto ch_it = channels_.find(channel_id);
  if (ch_it == channels_.end()) {
    return Status::Ok();
  }
  total_pages_ -= ch_it->second.pages.size();
  channel_by_pager_key_.erase(ch_it->second.pager_key);
  channels_.erase(ch_it);
  stats_.pages_cached = total_pages_;
  return Status::Ok();
}

Status Vmm::DropAllPages() {
  std::vector<std::pair<sp<PagerObject>, BlockData>> dirty;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& [id, ch] : channels_) {
      for (auto& [off, page] : ch.pages) {
        if (page.dirty) {
          dirty.emplace_back(ch.pager, BlockData{off, std::move(page.data)});
        }
        --total_pages_;
      }
      ch.pages.clear();
    }
    stats_.pages_cached = total_pages_;
  }
  for (auto& [pager, block] : dirty) {
    RETURN_IF_ERROR(pager->PageOut(block.offset, block.data.span()));
  }
  return Status::Ok();
}

VmmStats Vmm::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void Vmm::ResetStats() {
  std::lock_guard<std::mutex> lock(mutex_);
  size_t cached = stats_.pages_cached;
  stats_ = VmmStats{};
  stats_.pages_cached = cached;
}

// --- MappedRegion ---

MappedRegion::MappedRegion(sp<Vmm> vmm, uint64_t channel_id,
                           AccessRights access)
    : vmm_(std::move(vmm)), channel_id_(channel_id), access_(access) {}

Status MappedRegion::Read(Offset offset, MutableByteSpan out) {
  return vmm_->RegionRead(channel_id_, offset, out);
}

Status MappedRegion::Write(Offset offset, ByteSpan data) {
  if (access_ != AccessRights::kReadWrite) {
    return ErrPermissionDenied("store to read-only mapping");
  }
  return vmm_->RegionWrite(channel_id_, offset, data);
}

Status MappedRegion::Sync() { return vmm_->RegionSync(channel_id_); }

// --- AddressSpace ---

Result<sp<MappedRegion>> AddressSpace::Map(const sp<MemoryObject>& object,
                                           AccessRights access) {
  ASSIGN_OR_RETURN(sp<MappedRegion> region, vmm_->Map(object, access));
  std::lock_guard<std::mutex> lock(mutex_);
  mappings_.push_back(region);
  return region;
}

void AddressSpace::Unmap(const sp<MappedRegion>& region) {
  std::lock_guard<std::mutex> lock(mutex_);
  mappings_.erase(std::remove(mappings_.begin(), mappings_.end(), region),
                  mappings_.end());
}

size_t AddressSpace::NumMappings() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return mappings_.size();
}

}  // namespace springfs
