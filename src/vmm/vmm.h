// The per-node virtual memory manager (paper section 3.3).
//
// The VMM "is responsible for handling mapping, sharing, and caching of
// local memory" and "depends on external pagers for accessing backing store
// and maintaining inter-machine coherency." This implementation:
//
//   * implements the CacheManager / CacheObject side of pager-cache
//     channels (Appendix A),
//   * maintains a page cache keyed by channel identity, so that two
//     equivalent memory objects — or a stacked file system that forwards
//     bind to the layer below — share the same cached pages,
//   * serves MappedRegion accesses with fault-driven page_in, write faults
//     that upgrade to read-write rights (letting the pager run its
//     coherency protocol), and LRU eviction with page_out of dirty pages.
//
// "Mapped" access is simulated: MappedRegion::Read/Write perform page-
// granular faulting and memcpy instead of relying on an MMU. The fault and
// coherency traffic — which is what the architecture is about — is real.

#ifndef SPRINGFS_VMM_VMM_H_
#define SPRINGFS_VMM_VMM_H_

#include <map>
#include <mutex>
#include <vector>

#include "src/obj/domain.h"
#include "src/obs/metrics.h"
#include "src/vmm/interfaces.h"

namespace springfs {

class MappedRegion;

// Deprecated: read the metrics registry ("vmm/<name>/..." keys) instead.
struct VmmStats {
  uint64_t faults = 0;        // page_in calls issued
  uint64_t page_hits = 0;     // page accesses served from cache
  uint64_t evictions = 0;
  uint64_t pages_cached = 0;  // current
  uint64_t flush_backs = 0;   // coherency callbacks received
  uint64_t deny_writes = 0;
  uint64_t write_backs = 0;
};

class Vmm : public CacheManager, public Servant, public metrics::StatsProvider {
 public:
  // `max_pages` bounds the page cache; 0 means unbounded.
  static sp<Vmm> Create(sp<Domain> domain, std::string name,
                        size_t max_pages = 0);
  ~Vmm() override;

  // Maps `object` for this node. The bind operation on the memory object
  // establishes (or reuses) a pager-cache channel.
  Result<sp<MappedRegion>> Map(const sp<MemoryObject>& object,
                               AccessRights access);

  // --- CacheManager ---
  Result<ChannelSetup> EstablishChannel(uint64_t pager_key,
                                        sp<PagerObject> pager) override;
  std::string cache_manager_name() const override { return name_; }

  // --- StatsProvider ---
  std::string stats_prefix() const override { return "vmm/" + name_; }
  void CollectStats(const metrics::StatsEmitter& emit) const override;

  // Deprecated forwarder kept for one PR; equals the registry's
  // "vmm/<name>/..." values.
  VmmStats stats() const;
  void ResetStats();

  // Drops every cached page of every channel (testing: simulates memory
  // pressure). Dirty pages are paged out first.
  Status DropAllPages();

 private:
  friend class MappedRegion;
  friend class VmmCacheObject;

  Vmm(sp<Domain> domain, std::string name, size_t max_pages);

  struct Page {
    Buffer data;
    AccessRights rights = AccessRights::kReadOnly;
    bool dirty = false;
    uint64_t lru_tick = 0;
  };

  struct Channel {
    uint64_t id = 0;
    uint64_t pager_key = 0;
    sp<PagerObject> pager;
    sp<CacheObject> cache_object;
    sp<CacheRights> rights_object;
    std::map<Offset, Page> pages;
  };

  // MappedRegion entry points.
  Status RegionRead(uint64_t channel_id, Offset offset, MutableByteSpan out);
  Status RegionWrite(uint64_t channel_id, Offset offset, ByteSpan data);
  Status RegionSync(uint64_t channel_id);

  // Ensures the page at `page_offset` is cached with at least `access`;
  // returns through `fill` under the lock. Issues page_in without holding
  // the lock (pagers may call back into our cache objects re-entrantly).
  Status EnsurePageAnd(uint64_t channel_id, Offset page_offset,
                       AccessRights access,
                       const std::function<void(Page&)>& with_page);

  // Evicts LRU pages until the cache fits; never called with the lock held.
  Status EvictIfNeeded();

  // Cache-object callbacks (invoked by pagers), one per channel.
  Result<std::vector<BlockData>> CacheFlushBack(uint64_t channel_id,
                                                Range range);
  Result<std::vector<BlockData>> CacheDenyWrites(uint64_t channel_id,
                                                 Range range);
  Result<std::vector<BlockData>> CacheWriteBack(uint64_t channel_id,
                                                Range range);
  Status CacheDeleteRange(uint64_t channel_id, Range range);
  Status CacheZeroFill(uint64_t channel_id, Range range);
  Status CachePopulate(uint64_t channel_id, Offset offset, AccessRights access,
                       ByteSpan data);
  Status CacheDestroy(uint64_t channel_id);

  std::string name_;
  size_t max_pages_;

  mutable std::mutex mutex_;
  std::map<uint64_t, Channel> channels_;              // by channel id
  std::map<uint64_t, uint64_t> channel_by_pager_key_;
  uint64_t next_channel_id_ = 1;
  uint64_t lru_clock_ = 0;
  size_t total_pages_ = 0;
  VmmStats stats_;
};

// A memory object mapped into an address space. Read/Write simulate
// load/store access to the mapping: they fault pages in through the
// pager-cache channel and copy through the VMM page cache.
class MappedRegion : public virtual Object {
 public:
  MappedRegion(sp<Vmm> vmm, uint64_t channel_id, AccessRights access);

  const char* interface_name() const override { return "mapped_region"; }

  // Load from the mapping. Faults pages read-only.
  Status Read(Offset offset, MutableByteSpan out);

  // Store to the mapping. Faults pages read-write (kPermissionDenied for
  // read-only mappings).
  Status Write(Offset offset, ByteSpan data);

  // Pushes dirty pages to the pager (pager_object::sync); pages stay cached.
  Status Sync();

  uint64_t channel_id() const { return channel_id_; }
  AccessRights access() const { return access_; }

 private:
  sp<Vmm> vmm_;
  uint64_t channel_id_;
  AccessRights access_;
};

// An address space (paper section 3.3.1): the set of memory objects a
// domain has mapped. Bookkeeping wrapper over Vmm::Map, used by file-system
// layers that implement read/write by mapping files into their own space.
class AddressSpace {
 public:
  explicit AddressSpace(sp<Vmm> vmm) : vmm_(std::move(vmm)) {}

  Result<sp<MappedRegion>> Map(const sp<MemoryObject>& object,
                               AccessRights access);
  void Unmap(const sp<MappedRegion>& region);
  size_t NumMappings() const;

  const sp<Vmm>& vmm() const { return vmm_; }

 private:
  mutable std::mutex mutex_;
  sp<Vmm> vmm_;
  std::vector<sp<MappedRegion>> mappings_;
};

}  // namespace springfs

#endif  // SPRINGFS_VMM_VMM_H_
