// The per-node virtual memory manager (paper section 3.3).
//
// The VMM "is responsible for handling mapping, sharing, and caching of
// local memory" and "depends on external pagers for accessing backing store
// and maintaining inter-machine coherency." This implementation:
//
//   * implements the CacheManager / CacheObject side of pager-cache
//     channels (Appendix A),
//   * maintains a page cache keyed by channel identity, so that two
//     equivalent memory objects — or a stacked file system that forwards
//     bind to the layer below — share the same cached pages,
//   * serves MappedRegion accesses with fault-driven page_in, write faults
//     that upgrade to read-write rights (letting the pager run its
//     coherency protocol), and LRU eviction with page_out of dirty pages,
//   * clusters read faults: sequential access widens an adaptive window
//     (doubling up to read_ahead_pages, resetting on random access) so one
//     page_in brings in many pages, and contiguous dirty pages are written
//     back as single multi-page page_out / sync calls.
//
// Concurrency: the page cache is sharded per channel. A channel's page map
// and read-ahead state are guarded by that channel's own mutex; the channel
// table is guarded by a separate registry mutex, and the LRU clock, page
// count, and statistics are atomics. Faulting threads on different files
// therefore never contend on a shared lock.
//
// "Mapped" access is simulated: MappedRegion::Read/Write perform page-
// granular faulting and memcpy instead of relying on an MMU. The fault and
// coherency traffic — which is what the architecture is about — is real.

#ifndef SPRINGFS_VMM_VMM_H_
#define SPRINGFS_VMM_VMM_H_

#include <atomic>
#include <map>
#include <mutex>
#include <vector>

#include "src/obj/domain.h"
#include "src/obs/metrics.h"
#include "src/vmm/interfaces.h"

namespace springfs {

class MappedRegion;

struct VmmOptions {
  // Bounds the page cache; 0 means unbounded.
  size_t max_pages = 0;
  // Maximum fault cluster, in pages. A read fault that continues a
  // sequential run issues one page_in for an adaptive cluster (1, 2, 4, ...
  // capped here); random access resets the window to one page, and write
  // faults are never widened (the writer set must stay tight under the
  // MRSW protocol). 0 disables clustering entirely.
  uint32_t read_ahead_pages = 8;
};

class Vmm : public CacheManager, public Servant, public metrics::StatsProvider {
 public:
  // `max_pages` bounds the page cache; 0 means unbounded.
  static sp<Vmm> Create(sp<Domain> domain, std::string name,
                        size_t max_pages = 0);
  static sp<Vmm> Create(sp<Domain> domain, std::string name,
                        VmmOptions options);
  ~Vmm() override;

  // Maps `object` for this node. The bind operation on the memory object
  // establishes (or reuses) a pager-cache channel.
  Result<sp<MappedRegion>> Map(const sp<MemoryObject>& object,
                               AccessRights access);

  // --- CacheManager ---
  Result<ChannelSetup> EstablishChannel(uint64_t pager_key,
                                        sp<PagerObject> pager) override;
  std::string cache_manager_name() const override { return name_; }

  // --- StatsProvider ---
  std::string stats_prefix() const override { return "vmm/" + name_; }
  void CollectStats(const metrics::StatsEmitter& emit) const override;

  // Zeroes the fault/cache accounting (bench phase isolation);
  // pages_cached, being a level not a counter, is left alone.
  void ResetStats();

  // Drops every cached page of every channel (testing: simulates memory
  // pressure). Dirty pages are paged out first, contiguous runs coalesced.
  Status DropAllPages();

 private:
  friend class MappedRegion;
  friend class VmmCacheObject;

  Vmm(sp<Domain> domain, std::string name, VmmOptions options);

  struct Page {
    Buffer data;
    AccessRights rights = AccessRights::kReadOnly;
    bool dirty = false;
    // Brought in by fault clustering but not yet demanded; the first
    // demand hit counts as a read_ahead_hit and clears the flag.
    bool prefetched = false;
    uint64_t lru_tick = 0;
  };

  static constexpr Offset kNoPrediction = ~Offset{0};

  // One pager-cache channel; one shard of the page cache. `mutex` guards
  // `pages` and the read-ahead state. The identity fields and `pager` are
  // immutable after EstablishChannel and need no lock.
  struct Channel {
    uint64_t id = 0;
    uint64_t pager_key = 0;
    sp<PagerObject> pager;
    sp<CacheObject> cache_object;
    sp<CacheRights> rights_object;

    std::mutex mutex;
    std::map<Offset, Page> pages;
    // Set by CacheDestroy under `mutex`; an in-flight fault must not
    // repopulate a torn-down channel (the page count would leak).
    bool destroyed = false;
    // Adaptive fault clustering: the offset at which the next fault counts
    // as sequential, and the current cluster width in pages.
    Offset next_expected = kNoPrediction;
    uint32_t cluster_pages = 1;
  };

  // MappedRegion entry points.
  Status RegionRead(uint64_t channel_id, Offset offset, MutableByteSpan out);
  Status RegionWrite(uint64_t channel_id, Offset offset, ByteSpan data);
  Status RegionSync(uint64_t channel_id);

  sp<Channel> FindChannel(uint64_t channel_id) const;

  uint64_t NextLruTick() {
    return lru_clock_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  // Ensures the page at `page_offset` is cached with at least `access`;
  // invokes `with_page` under the channel lock. The hot hit path takes only
  // that channel's lock and allocates nothing; misses go through the cold
  // clustered-fault path.
  template <typename WithPage>
  Status EnsurePageAnd(uint64_t channel_id, Offset page_offset,
                       AccessRights access, WithPage&& with_page) {
    for (int attempt = 0; attempt < 64; ++attempt) {
      sp<Channel> ch = FindChannel(channel_id);
      if (ch == nullptr) {
        return ErrStale("channel destroyed");
      }
      {
        std::lock_guard<std::mutex> lock(ch->mutex);
        auto page_it = ch->pages.find(page_offset);
        if (page_it != ch->pages.end() &&
            (access == AccessRights::kReadOnly ||
             page_it->second.rights == AccessRights::kReadWrite)) {
          Page& page = page_it->second;
          page_hits_.fetch_add(1, std::memory_order_relaxed);
          if (page.prefetched) {
            page.prefetched = false;
            read_ahead_hits_.fetch_add(1, std::memory_order_relaxed);
          }
          page.lru_tick = NextLruTick();
          with_page(page);
          return Status::Ok();
        }
      }
      RETURN_IF_ERROR(FaultCluster(*ch, page_offset, access));
      // Loop: re-check under the lock (a concurrent coherency action may
      // have already invalidated what we just brought in).
    }
    return ErrBusy("page repeatedly invalidated during fault");
  }

  // Cold fault path: picks a cluster size from the channel's sequential
  // detector, issues one page_in for the whole cluster with no lock held
  // (pagers may call back into our cache objects re-entrantly), and
  // populates every returned page.
  Status FaultCluster(Channel& ch, Offset page_offset, AccessRights access);

  // Inserts one page under `ch.mutex`. Pages that appeared (or were
  // dirtied) while a pager call was in flight are never clobbered; only the
  // demanded page may upgrade a still-clean mapping in place.
  void InsertPageLocked(Channel& ch, Offset offset, AccessRights access,
                        Buffer&& data, Offset demanded);

  // Evicts LRU pages until the cache fits; never called with a lock held.
  // Dirty victims take their contiguous dirty neighbours with them in one
  // multi-page page_out (cluster write-back).
  Status EvictIfNeeded();

  // Cache-object callbacks (invoked by pagers), one per channel.
  Result<std::vector<BlockData>> CacheFlushBack(uint64_t channel_id,
                                                Range range);
  Result<std::vector<BlockData>> CacheDenyWrites(uint64_t channel_id,
                                                 Range range);
  Result<std::vector<BlockData>> CacheWriteBack(uint64_t channel_id,
                                                Range range);
  Status CacheDeleteRange(uint64_t channel_id, Range range);
  Status CacheZeroFill(uint64_t channel_id, Range range);
  Status CachePopulate(uint64_t channel_id, Offset offset, AccessRights access,
                       ByteSpan data);
  Status CacheDestroy(uint64_t channel_id);

  std::string name_;
  const size_t max_pages_;
  const uint32_t read_ahead_pages_;

  // Guards only the channel table; per-channel state has its own lock.
  mutable std::mutex channels_mutex_;
  std::map<uint64_t, sp<Channel>> channels_;          // by channel id
  std::map<uint64_t, uint64_t> channel_by_pager_key_;
  uint64_t next_channel_id_ = 1;

  std::atomic<uint64_t> lru_clock_{0};
  std::atomic<size_t> total_pages_{0};

  std::atomic<uint64_t> faults_{0};
  std::atomic<uint64_t> page_hits_{0};
  std::atomic<uint64_t> read_ahead_hits_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> flush_backs_{0};
  std::atomic<uint64_t> deny_writes_{0};
  std::atomic<uint64_t> write_backs_{0};
};

// A memory object mapped into an address space. Read/Write simulate
// load/store access to the mapping: they fault pages in through the
// pager-cache channel and copy through the VMM page cache.
class MappedRegion : public virtual Object {
 public:
  MappedRegion(sp<Vmm> vmm, uint64_t channel_id, AccessRights access);

  const char* interface_name() const override { return "mapped_region"; }

  // Load from the mapping. Faults pages read-only.
  Status Read(Offset offset, MutableByteSpan out);

  // Store to the mapping. Faults pages read-write (kPermissionDenied for
  // read-only mappings).
  Status Write(Offset offset, ByteSpan data);

  // Pushes dirty pages to the pager (pager_object::sync); pages stay cached.
  Status Sync();

  uint64_t channel_id() const { return channel_id_; }
  AccessRights access() const { return access_; }

 private:
  sp<Vmm> vmm_;
  uint64_t channel_id_;
  AccessRights access_;
};

// An address space (paper section 3.3.1): the set of memory objects a
// domain has mapped. Bookkeeping wrapper over Vmm::Map, used by file-system
// layers that implement read/write by mapping files into their own space.
class AddressSpace {
 public:
  explicit AddressSpace(sp<Vmm> vmm) : vmm_(std::move(vmm)) {}

  Result<sp<MappedRegion>> Map(const sp<MemoryObject>& object,
                               AccessRights access);
  void Unmap(const sp<MappedRegion>& region);
  size_t NumMappings() const;

  const sp<Vmm>& vmm() const { return vmm_; }

 private:
  mutable std::mutex mutex_;
  sp<Vmm> vmm_;
  std::vector<sp<MappedRegion>> mappings_;
};

}  // namespace springfs

#endif  // SPRINGFS_VMM_VMM_H_
