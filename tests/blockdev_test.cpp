// Unit tests for the block-device substrate: RAM device, latency model,
// fault injection.

#include <gtest/gtest.h>

#include "src/blockdev/block_device.h"
#include "src/blockdev/decorators.h"
#include "src/support/rng.h"
#include "src/ufs/ufs.h"

namespace springfs {
namespace {

constexpr uint32_t kBs = 4096;

TEST(MemBlockDeviceTest, ReadsBackWrites) {
  MemBlockDevice dev(kBs, 8);
  Rng rng(3);
  Buffer data = rng.RandomBuffer(kBs);
  ASSERT_TRUE(dev.WriteBlock(5, data.span()).ok());
  Buffer out(kBs);
  ASSERT_TRUE(dev.ReadBlock(5, out.mutable_span()).ok());
  EXPECT_EQ(out, data);
}

TEST(MemBlockDeviceTest, FreshDeviceReadsZeros) {
  MemBlockDevice dev(kBs, 2);
  Buffer out(kBs);
  ASSERT_TRUE(dev.ReadBlock(1, out.mutable_span()).ok());
  for (size_t i = 0; i < kBs; ++i) {
    ASSERT_EQ(out.data()[i], 0);
  }
}

TEST(MemBlockDeviceTest, RejectsOutOfRangeBlock) {
  MemBlockDevice dev(kBs, 4);
  Buffer buf(kBs);
  EXPECT_EQ(dev.ReadBlock(4, buf.mutable_span()).code(),
            ErrorCode::kOutOfRange);
  EXPECT_EQ(dev.WriteBlock(100, buf.span()).code(), ErrorCode::kOutOfRange);
}

TEST(MemBlockDeviceTest, RejectsWrongSpanSize) {
  MemBlockDevice dev(kBs, 4);
  Buffer small(16);
  EXPECT_EQ(dev.ReadBlock(0, small.mutable_span()).code(),
            ErrorCode::kInvalidArgument);
  EXPECT_EQ(dev.WriteBlock(0, small.span()).code(),
            ErrorCode::kInvalidArgument);
}

TEST(MemBlockDeviceTest, CountsOperations) {
  MemBlockDevice dev(kBs, 4);
  Buffer buf(kBs);
  ASSERT_TRUE(dev.WriteBlock(0, buf.span()).ok());
  ASSERT_TRUE(dev.ReadBlock(0, buf.mutable_span()).ok());
  ASSERT_TRUE(dev.ReadBlock(0, buf.mutable_span()).ok());
  ASSERT_TRUE(dev.Flush().ok());
  BlockDeviceStats stats = dev.stats();
  EXPECT_EQ(stats.reads, 2u);
  EXPECT_EQ(stats.writes, 1u);
  EXPECT_EQ(stats.flushes, 1u);
  dev.ResetStats();
  EXPECT_EQ(dev.stats().reads, 0u);
}

TEST(DiskLatencyModelTest, SeekScalesWithDistance) {
  DiskLatencyModel model;
  uint64_t near = model.LatencyNs(0, 0, 1000);
  uint64_t mid = model.LatencyNs(0, 500, 1000);
  uint64_t far = model.LatencyNs(0, 999, 1000);
  // Strip the (deterministic) rotational component by comparing lower
  // bounds: far seeks must cost at least the seek-time delta more.
  EXPECT_GT(far + model.rotation_ns, mid);
  EXPECT_GT(mid + model.rotation_ns, near);
  EXPECT_GE(far, model.fixed_ns + model.max_seek_ns * 999 / 999);
}

TEST(DiskLatencyModelTest, RotationIsDeterministicPerBlock) {
  DiskLatencyModel model;
  EXPECT_EQ(model.LatencyNs(10, 20, 100), model.LatencyNs(10, 20, 100));
}

TEST(LatencyBlockDeviceTest, ChargesTimeAndPreservesData) {
  FakeClock clock;
  auto base = std::make_unique<MemBlockDevice>(kBs, 16);
  DiskLatencyModel model;
  LatencyBlockDevice dev(std::move(base), model, &clock);
  Buffer data(kBs);
  data.data()[0] = 0xAB;
  TimeNs before = clock.Now();
  ASSERT_TRUE(dev.WriteBlock(3, data.span()).ok());
  EXPECT_GT(clock.Now(), before);
  EXPECT_GE(dev.total_latency_ns(), model.fixed_ns);
  Buffer out(kBs);
  ASSERT_TRUE(dev.ReadBlock(3, out.mutable_span()).ok());
  EXPECT_EQ(out.data()[0], 0xAB);
}

TEST(LatencyBlockDeviceTest, SequentialCheaperThanRandom) {
  FakeClock clock;
  DiskLatencyModel model;
  LatencyBlockDevice dev(std::make_unique<MemBlockDevice>(kBs, 4096), model,
                         &clock);
  Buffer buf(kBs);

  TimeNs t0 = clock.Now();
  for (BlockNum b = 100; b < 164; ++b) {
    ASSERT_TRUE(dev.ReadBlock(b, buf.mutable_span()).ok());
  }
  TimeNs sequential = clock.Now() - t0;

  Rng rng(5);
  t0 = clock.Now();
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(dev.ReadBlock(rng.Below(4096), buf.mutable_span()).ok());
  }
  TimeNs random = clock.Now() - t0;
  EXPECT_LT(sequential, random);
}

TEST(FaultyBlockDeviceTest, PassesThroughByDefault) {
  FaultyBlockDevice dev(std::make_unique<MemBlockDevice>(kBs, 4));
  Buffer buf(kBs);
  EXPECT_TRUE(dev.WriteBlock(0, buf.span()).ok());
  EXPECT_TRUE(dev.ReadBlock(0, buf.mutable_span()).ok());
  EXPECT_TRUE(dev.Flush().ok());
}

TEST(FaultyBlockDeviceTest, PredicateInjectsErrors) {
  FaultyBlockDevice dev(std::make_unique<MemBlockDevice>(kBs, 8),
                        [](int op, BlockNum block) {
                          return op == 0 && block == 3;
                        });
  Buffer buf(kBs);
  EXPECT_TRUE(dev.ReadBlock(2, buf.mutable_span()).ok());
  EXPECT_EQ(dev.ReadBlock(3, buf.mutable_span()).code(), ErrorCode::kIoError);
  EXPECT_TRUE(dev.WriteBlock(3, buf.span()).ok());  // writes unaffected
  EXPECT_EQ(dev.stats().read_errors, 1u);
  EXPECT_EQ(dev.stats().write_errors, 0u);
}

TEST(FaultyBlockDeviceTest, WriteFaultsCountAsWriteErrors) {
  FaultyBlockDevice dev(std::make_unique<MemBlockDevice>(kBs, 8),
                        [](int op, BlockNum block) {
                          return op == 1 && block >= 4;
                        });
  Buffer buf(kBs);
  EXPECT_TRUE(dev.WriteBlock(3, buf.span()).ok());
  EXPECT_EQ(dev.WriteBlock(4, buf.span()).code(), ErrorCode::kIoError);
  EXPECT_EQ(dev.WriteBlock(7, buf.span()).code(), ErrorCode::kIoError);
  EXPECT_TRUE(dev.ReadBlock(4, buf.mutable_span()).ok());  // reads unaffected
  BlockDeviceStats stats = dev.stats();
  EXPECT_EQ(stats.write_errors, 2u);
  EXPECT_EQ(stats.read_errors, 0u);
  dev.ResetStats();
  EXPECT_EQ(dev.stats().write_errors, 0u);
}

TEST(FaultyBlockDeviceTest, BrokenDeviceCountsBothErrorKinds) {
  FaultyBlockDevice dev(std::make_unique<MemBlockDevice>(kBs, 8));
  Buffer buf(kBs);
  dev.set_broken(true);
  EXPECT_EQ(dev.ReadBlock(0, buf.mutable_span()).code(), ErrorCode::kIoError);
  EXPECT_EQ(dev.WriteBlock(0, buf.span()).code(), ErrorCode::kIoError);
  EXPECT_EQ(dev.WriteBlock(1, buf.span()).code(), ErrorCode::kIoError);
  EXPECT_EQ(dev.stats().read_errors, 1u);
  EXPECT_EQ(dev.stats().write_errors, 2u);
}

TEST(FaultyBlockDeviceTest, BrokenDeviceFailsEverything) {
  FaultyBlockDevice dev(std::make_unique<MemBlockDevice>(kBs, 8));
  Buffer buf(kBs);
  dev.set_broken(true);
  EXPECT_EQ(dev.ReadBlock(0, buf.mutable_span()).code(), ErrorCode::kIoError);
  EXPECT_EQ(dev.WriteBlock(0, buf.span()).code(), ErrorCode::kIoError);
  EXPECT_EQ(dev.Flush().code(), ErrorCode::kIoError);
  dev.set_broken(false);
  EXPECT_TRUE(dev.ReadBlock(0, buf.mutable_span()).ok());
}

TEST(FaultyBlockDeviceTest, PredicateCanBeSwapped) {
  FaultyBlockDevice dev(std::make_unique<MemBlockDevice>(kBs, 8));
  Buffer buf(kBs);
  EXPECT_TRUE(dev.WriteBlock(1, buf.span()).ok());
  dev.set_predicate([](int op, BlockNum) { return op == 1; });
  EXPECT_EQ(dev.WriteBlock(1, buf.span()).code(), ErrorCode::kIoError);
  dev.set_predicate(nullptr);
  EXPECT_TRUE(dev.WriteBlock(1, buf.span()).ok());
}


TEST(FileBlockDeviceTest, PersistsAcrossReopen) {
  std::string path = ::testing::TempDir() + "/springfs_fbd_test.img";
  ::remove(path.c_str());
  Rng rng(9);
  Buffer data = rng.RandomBuffer(kBs);
  {
    Result<std::unique_ptr<FileBlockDevice>> dev =
        FileBlockDevice::Open(path, kBs, 16);
    ASSERT_TRUE(dev.ok()) << dev.status().ToString();
    ASSERT_TRUE((*dev)->WriteBlock(7, data.span()).ok());
    ASSERT_TRUE((*dev)->Flush().ok());
  }
  {
    std::unique_ptr<FileBlockDevice> dev =
        FileBlockDevice::Open(path, kBs, 16).take_value();
    Buffer out(kBs);
    ASSERT_TRUE(dev->ReadBlock(7, out.mutable_span()).ok());
    EXPECT_EQ(out, data);
    EXPECT_EQ(dev->ReadBlock(16, out.mutable_span()).code(),
              ErrorCode::kOutOfRange);
  }
  ::remove(path.c_str());
}

TEST(FileBlockDeviceTest, WholeUfsSurvivesProcessStyleRemount) {
  std::string path = ::testing::TempDir() + "/springfs_fbd_ufs.img";
  ::remove(path.c_str());
  {
    std::unique_ptr<FileBlockDevice> dev =
        FileBlockDevice::Open(path, kBs, 256).take_value();
    // Format + write through the real UFS; destructor syncs.
    auto fs = springfs::ufs::Ufs::Format(dev.get()).take_value();
    auto ino = fs->Create(springfs::ufs::kRootInode, "persistent",
                          springfs::ufs::FileType::kRegular).take_value();
    Buffer text(std::string("on the host file system"));
    ASSERT_TRUE(fs->Write(ino, 0, text.span()).ok());
    ASSERT_TRUE(fs->Sync().ok());
  }
  {
    std::unique_ptr<FileBlockDevice> dev =
        FileBlockDevice::Open(path, kBs, 256).take_value();
    auto fs = springfs::ufs::Ufs::Mount(dev.get()).take_value();
    auto ino = fs->Lookup(springfs::ufs::kRootInode, "persistent").take_value();
    Buffer out(23);
    ASSERT_TRUE(fs->Read(ino, 0, out.mutable_span()).ok());
    EXPECT_EQ(out.ToString(), "on the host file system");
  }
  ::remove(path.c_str());
}

}  // namespace
}  // namespace springfs
