// Seeded network-chaos property harness for DFS (DESIGN.md §11).
//
// Two writer clients work disjoint pages of one exported file while the
// schedule kills and revives clients, restarts the server, partitions and
// heals links, and arms seeded FaultPlans that drop/duplicate/delay
// requests and responses. After every schedule the world is healed and the
// harness asserts:
//
//   * no lost acknowledged writes — every page's final server-side value is
//     one of {last acknowledged write} ∪ {writes whose fate was unknown};
//   * eventual convergence — a fresh verifier mount and every surviving
//     client (after invalidating its caches) read the same value;
//   * the server's per-file coherency invariants hold.
//
// Schedules are deterministic from their seed (FakeClock + seeded Rng +
// seeded FaultPlans); a failure prints "seed=N" for replay.
//
// The file also carries deterministic exactly-once tests for duplicated
// frames and the multi-threaded fault-injection tests the TSan CI job
// exercises.

#include <gtest/gtest.h>

#include <cstdio>
#include <set>
#include <string>
#include <thread>

#include "src/layers/dfs/cluster_stats.h"
#include "src/layers/dfs/dfs_client.h"
#include "src/layers/dfs/dfs_server.h"
#include "src/layers/dfs/striped_client.h"
#include "src/layers/sfs/sfs.h"
#include "src/obs/flight_recorder.h"
#include "src/support/rng.h"
#include "src/vmm/vmm.h"

namespace springfs {
namespace {

using dfs::DfsClient;
using dfs::DfsServer;

constexpr int kClients = 2;
constexpr int kPagesPerClient = 2;
constexpr int kPages = kClients * kPagesPerClient;

Buffer TagBuffer(uint64_t value) {
  Buffer out(8);
  for (int i = 0; i < 8; ++i) {
    out.data()[i] = static_cast<uint8_t>(value >> (8 * i));
  }
  return out;
}

Result<uint64_t> ReadTag(const sp<File>& file, int page) {
  Buffer out(8);
  ASSIGN_OR_RETURN(size_t n,
                   file->Read(static_cast<Offset>(page) * kPageSize,
                              out.mutable_span()));
  uint64_t value = 0;
  for (int i = static_cast<int>(n) - 1; i >= 0; --i) {
    value = (value << 8) | out.data()[i];
  }
  return value;
}

// One simulated cluster: a server node exporting one SFS file, two client
// nodes with VMMs, and a spare node for the end-of-schedule verifier.
struct ChaosWorld {
  Credentials sys = Credentials::System();
  FakeClock clock;
  std::unique_ptr<net::Network> network;
  sp<net::Node> server_node, client_nodes[kClients], verifier_node;
  std::unique_ptr<MemBlockDevice> device;
  Sfs sfs;
  sp<DfsServer> server;
  // Replaced servers stay alive until the end of the schedule: destroying
  // one would stamp its tombstone over the live successor's service.
  std::vector<sp<DfsServer>> retired_servers;
  sp<DfsClient> clients[kClients];
  sp<Vmm> vmms[kClients];
  sp<File> files[kClients];

  bool delegated = false;

  explicit ChaosWorld(uint64_t lease_ns = 10'000'000, bool pipelined = false,
                      bool with_delegations = false)
      : delegated(with_delegations) {
    network = std::make_unique<net::Network>(&clock, 1000);
    server_node = network->AddNode("server");
    verifier_node = network->AddNode("verifier");
    for (int i = 0; i < kClients; ++i) {
      client_nodes[i] = network->AddNode("client" + std::to_string(i));
    }
    device = std::make_unique<MemBlockDevice>(ufs::kBlockSize, 8192);
    sfs = *CreateSfs(device.get(), SfsOptions{}, &clock);
    dfs::DfsServerOptions options;
    options.lease_ns = lease_ns;
    server = *DfsServer::Create(server_node, network.get(), "dfs", sfs.root,
                                &clock, options);
    sp<File> seeded = *sfs.root->CreateFile(*Name::Parse("chaos"), sys);
    EXPECT_TRUE(seeded->SetLength(kPages * kPageSize).ok());
    // Pipelined worlds mount the clients over the async channel, tuned for
    // this fabric (1µs links, 50µs injected delays): the 100µs RTO beats
    // nothing that merely crawled, but recovers drops long before the sync
    // path's logical backoff would.
    dfs::DfsClientOptions client_options;
    if (delegated) {
      // Compound opens asking for read delegations: grants, recalls,
      // conflicts, and expiry now ride every schedule.
      client_options.compound = true;
      client_options.delegations = true;
    }
    if (pipelined) {
      client_options.pipelined = true;
      client_options.async_depth = 4;
      client_options.channel.rto_ns = 100'000;
      client_options.channel.rack_reorder_ns = 10'000;
      client_options.channel.max_retransmits = 3;
    }
    for (int i = 0; i < kClients; ++i) {
      clients[i] = *DfsClient::Mount(client_nodes[i], network.get(), "server",
                                     "dfs", &clock, client_options);
      vmms[i] = Vmm::Create(client_nodes[i]->domain(),
                            "vmm" + std::to_string(i));
      files[i] = *ResolveAs<File>(clients[i], "chaos", sys);
    }
  }

  void RestartServer() {
    dfs::DfsServerOptions options;
    options.lease_ns = 10'000'000;
    if (delegated) {
      // A successor cannot know the delegations its predecessor granted;
      // grace >= the predecessor's lease keeps mutations out until every
      // pre-restart delegation has provably expired (DESIGN.md §13).
      options.grace_ns = options.lease_ns;
    }
    retired_servers.push_back(server);
    server = *DfsServer::Create(server_node, network.get(), "dfs", sfs.root,
                                &clock, options);
  }
};

// Model of one page: the last write the writer saw acknowledged, plus every
// write whose fate is unknown (errored out, or sitting unsynced in a cache
// when its client was killed). The server's value must always be in
// {acked} ∪ pending.
struct PageModel {
  uint64_t acked = 0;  // pages start zero-filled
  std::set<uint64_t> pending;

  bool Allows(uint64_t value) const {
    return value == acked || pending.count(value) > 0;
  }
  std::string Describe() const {
    std::string out = "acked=" + std::to_string(acked) + " pending={";
    for (uint64_t v : pending) {
      out += std::to_string(v) + ",";
    }
    return out + "}";
  }
  void Ack(uint64_t value) {
    acked = value;
    pending.clear();
  }
};

// Accumulated across a shard so the sweep can prove it exercised the
// delegation machinery (individual seeds may legitimately never grant).
struct DelegationTeeth {
  uint64_t granted = 0;
  uint64_t recalled = 0;
};

void RunChaosSeed(uint64_t seed, bool pipelined = false,
                  bool delegated = false,
                  DelegationTeeth* teeth = nullptr) {
  // Per-seed black box: the flight recorder holds only this schedule's
  // events, so a failure dump reads as the seed's own story.
  flight::Clear();
  SCOPED_TRACE("seed=" + std::to_string(seed) +
               (pipelined ? " (pipelined)" : "") +
               (delegated ? " (delegated)" : ""));
  ChaosWorld world(10'000'000, pipelined, delegated);
  Rng rng(seed);
  PageModel model[kPages];
  sp<MappedRegion> regions[kClients];
  uint64_t mapped_value[kPages] = {};  // latest value written via a mapping
  // A sync may only acknowledge a mapped value if the page is still the
  // client's dirty copy: a recall (triggered by a direct write) or a cache
  // invalidation in between means the sync pushed nothing.
  bool mapped_dirty[kPages] = {};
  uint64_t invalidations_at_write[kPages] = {};
  bool dead[kClients] = {};
  bool faults_armed = false;
  uint64_t next_value = 1;

  auto own_page = [&](int client) {
    return client * kPagesPerClient +
           static_cast<int>(rng.Below(kPagesPerClient));
  };

  constexpr int kSteps = 40;
  for (int step = 0; step < kSteps; ++step) {
    world.clock.Advance(rng.Range(1, 2'000'000));
    int c = static_cast<int>(rng.Below(kClients));
    uint64_t action = rng.Below(100);

    if (action < 30) {
      // Direct write to an own page. ok => acknowledged; error => fate
      // unknown (a dropped response means it may have applied anyway).
      if (dead[c]) continue;
      int page = own_page(c);
      uint64_t value = next_value++;
      Buffer tag = TagBuffer(value);
      Result<size_t> wrote =
          world.files[c]->Write(static_cast<Offset>(page) * kPageSize,
                                tag.span());
      if (wrote.ok()) {
        model[page].Ack(value);
      } else {
        model[page].pending.insert(value);
      }
      // Either way the server-side acquire recalled (or orphaned) whatever
      // mapped copy the client held; a later sync pushes nothing.
      mapped_dirty[page] = false;
    } else if (action < 45) {
      // Direct read of any page: whatever comes back must be a value the
      // model allows (this also recalls other clients' cached dirty data
      // through the server's coherency engine).
      if (dead[c]) continue;
      if (world.delegated && rng.Chance(1, 3)) {
        // Re-open: zero trips under a valid delegation, else a fresh
        // compound open (which may re-grant).
        Result<sp<File>> reopened =
            ResolveAs<File>(world.clients[c], "chaos", world.sys);
        if (reopened.ok()) {
          world.files[c] = *reopened;
        }
      }
      int page = static_cast<int>(rng.Below(kPages));
      Result<uint64_t> value = ReadTag(world.files[c], page);
      if (value.ok()) {
        EXPECT_TRUE(model[page].Allows(*value))
            << "step " << step << " page " << page << " read " << *value
            << " but model has " << model[page].Describe();
      }
    } else if (action < 60) {
      // Mapped write to an own page: lands only in the client's cache, so
      // it is pending until a sync (or a server-side recall) pushes it.
      if (dead[c]) continue;
      if (!regions[c]) {
        Result<sp<MappedRegion>> mapped =
            world.vmms[c]->Map(world.files[c], AccessRights::kReadWrite);
        if (!mapped.ok()) continue;
        regions[c] = *mapped;
      }
      int page = own_page(c);
      uint64_t value = next_value++;
      Buffer tag = TagBuffer(value);
      if (regions[c]->Write(static_cast<Offset>(page) * kPageSize,
                            tag.span()).ok()) {
        model[page].pending.insert(value);
        mapped_value[page] = value;
        mapped_dirty[page] = true;
        invalidations_at_write[page] =
            metrics::StatValue(*world.clients[c], "channels_invalidated");
      } else {
        // The region's channel is gone (evicted / invalidated); remap on
        // the next mapped action.
        regions[c].reset();
      }
    } else if (action < 70) {
      // Sync the mapping: success acknowledges the latest mapped value of
      // every own page that is still this client's dirty copy.
      if (dead[c] || !regions[c]) continue;
      if (regions[c]->Sync().ok()) {
        uint64_t invalidations =
            metrics::StatValue(*world.clients[c], "channels_invalidated");
        for (int p = c * kPagesPerClient; p < (c + 1) * kPagesPerClient;
             ++p) {
          if (mapped_dirty[p] && mapped_value[p] != 0 &&
              invalidations_at_write[p] == invalidations) {
            model[p].Ack(mapped_value[p]);
          }
          mapped_dirty[p] = false;
        }
      } else {
        regions[c].reset();
      }
    } else if (action < 80) {
      // Kill / revive. A killed client keeps whatever it cached; a revived
      // one must not trust it (it has likely been evicted), so revival
      // invalidates the caches and drops the mapping.
      if (!dead[c]) {
        world.network->SetPartitioned(world.client_nodes[c]->name(), true);
        dead[c] = true;
      } else {
        world.network->SetPartitioned(world.client_nodes[c]->name(), false);
        world.clients[c]->InvalidateCaches();
        regions[c].reset();
        for (int p = c * kPagesPerClient; p < (c + 1) * kPagesPerClient;
             ++p) {
          mapped_dirty[p] = false;
        }
        dead[c] = false;
      }
    } else if (action < 85) {
      world.RestartServer();
    } else if (action < 92) {
      // Toggle seeded message loss (sometimes global, sometimes one link).
      if (faults_armed) {
        world.network->DisarmFaults();
        faults_armed = false;
      } else {
        net::FaultPlan plan;
        plan.seed = seed ^ (0x9E3779B97F4A7C15ull * (step + 1));
        plan.drop_request_pct = 15;
        plan.drop_response_pct = 15;
        plan.dup_request_pct = 10;
        plan.delay_pct = 10;
        plan.delay_ns = 50'000;
        if (rng.Chance(1, 2)) {
          world.network->ArmFaults(plan);
        } else {
          world.network->ArmFaultsOnLink(
              world.client_nodes[rng.Below(kClients)]->name(), "server",
              plan);
        }
        faults_armed = true;
      }
    } else {
      // Long silence: leases lapse, so the next conflicting acquire evicts
      // idle holders instead of calling them.
      world.clock.Advance(rng.Range(15'000'000, 30'000'000));
    }
  }

  // Heal the world and converge.
  world.network->DisarmFaults();
  for (int c = 0; c < kClients; ++c) {
    world.network->SetPartitioned(world.client_nodes[c]->name(), false);
    world.clients[c]->InvalidateCaches();
    regions[c].reset();
  }
  ASSERT_TRUE(world.server->CheckCoherencyInvariants());

  sp<DfsClient> verifier = *DfsClient::Mount(
      world.verifier_node, world.network.get(), "server", "dfs",
      &world.clock);
  sp<File> verified = *ResolveAs<File>(verifier, "chaos", world.sys);
  for (int page = 0; page < kPages; ++page) {
    Result<uint64_t> value = ReadTag(verified, page);
    ASSERT_TRUE(value.ok()) << value.status().ToString();
    EXPECT_TRUE(model[page].Allows(*value))
        << "page " << page << " converged to " << *value
        << " but model has " << model[page].Describe()
        << " — an acknowledged write was lost";
    // Every surviving client agrees with the verifier.
    for (int c = 0; c < kClients; ++c) {
      Result<uint64_t> theirs = ReadTag(world.files[c], page);
      ASSERT_TRUE(theirs.ok()) << theirs.status().ToString();
      EXPECT_EQ(*theirs, *value) << "client " << c << " diverges on page "
                                 << page;
    }
  }
  ASSERT_TRUE(world.server->CheckCoherencyInvariants());
  if (teeth) {
    teeth->granted += metrics::StatValue(*world.server, "delegations_granted");
    teeth->recalled +=
        metrics::StatValue(*world.server, "delegations_recalled");
    for (const auto& retired : world.retired_servers) {
      teeth->granted += metrics::StatValue(*retired, "delegations_granted");
      teeth->recalled += metrics::StatValue(*retired, "delegations_recalled");
    }
  }
}

// On the first seed that fails, print the flight recorder — the drops,
// retries, dedup replays, and evictions that preceded the bad assertion —
// and save it to a file CI uploads as an artifact.
void DumpFlightOnFailure(uint64_t seed, bool* dumped) {
  if (*dumped || !::testing::Test::HasFailure()) {
    return;
  }
  *dumped = true;
  std::string header = "chaos seed=" + std::to_string(seed);
  std::fprintf(stderr, "=== flight recorder (%s, last 64 events) ===\n%s",
               header.c_str(), flight::Dump(64).c_str());
  flight::DumpToArtifact("chaos", header);
}

// 4 shards x 55 seeds = 220 schedules, each run three times: over the
// synchronous transport, pipelined, and with compound opens + read
// delegations enabled (same seeds, so every sweep faces the same
// schedules).
void RunChaosShard(uint64_t first_seed, bool pipelined = false,
                   bool delegated = false) {
  bool dumped = false;
  DelegationTeeth teeth;
  for (uint64_t seed = first_seed; seed < first_seed + 55; ++seed) {
    RunChaosSeed(seed, pipelined, delegated, &teeth);
    DumpFlightOnFailure(seed, &dumped);
    if (::testing::Test::HasFatalFailure()) {
      return;
    }
  }
  if (delegated) {
    EXPECT_GT(teeth.granted, 0u) << "the sweep never granted a delegation";
    EXPECT_GT(teeth.recalled, 0u) << "the sweep never recalled a delegation";
  }
}

TEST(ChaosDfs, SeededSchedulesShard0) { RunChaosShard(1000); }
TEST(ChaosDfs, SeededSchedulesShard1) { RunChaosShard(2000); }
TEST(ChaosDfs, SeededSchedulesShard2) { RunChaosShard(3000); }
TEST(ChaosDfs, SeededSchedulesShard3) { RunChaosShard(4000); }

TEST(ChaosDfs, DelegatedSeededSchedulesShard0) {
  RunChaosShard(1000, false, true);
}
TEST(ChaosDfs, DelegatedSeededSchedulesShard1) {
  RunChaosShard(2000, false, true);
}
TEST(ChaosDfs, DelegatedSeededSchedulesShard2) {
  RunChaosShard(3000, false, true);
}
TEST(ChaosDfs, DelegatedSeededSchedulesShard3) {
  RunChaosShard(4000, false, true);
}

TEST(ChaosDfs, PipelinedSeededSchedulesShard0) { RunChaosShard(1000, true); }
TEST(ChaosDfs, PipelinedSeededSchedulesShard1) { RunChaosShard(2000, true); }
TEST(ChaosDfs, PipelinedSeededSchedulesShard2) { RunChaosShard(3000, true); }
TEST(ChaosDfs, PipelinedSeededSchedulesShard3) { RunChaosShard(4000, true); }

// On a delay-heavy plan the pipelined transport must converge in strictly
// fewer virtual-clock ticks than the synchronous one: a crawling request
// pins a synchronous caller for the whole injected delay, while the
// channel's RTO copy races past it.
struct DelayHeavyRun {
  uint64_t ticks = 0;
  uint64_t recoveries = 0;  // rack + rto retransmits spent
};

DelayHeavyRun MeasureDelayHeavyRun(bool pipelined) {
  DelayHeavyRun run;
  ChaosWorld world(10'000'000, pipelined);
  net::FaultPlan plan;
  plan.seed = 3;
  plan.delay_pct = 60;
  plan.delay_ns = 500'000;
  world.network->ArmFaultsOnLink("client0", "server", plan);
  TimeNs before = world.clock.Now();
  for (uint64_t i = 1; i <= 12; ++i) {
    Buffer tag = TagBuffer(i);
    Result<size_t> wrote = world.files[0]->Write(0, tag.span());
    EXPECT_TRUE(wrote.ok()) << wrote.status().ToString();
    Result<uint64_t> back = ReadTag(world.files[0], 0);
    EXPECT_TRUE(back.ok()) << back.status().ToString();
    if (back.ok()) {
      EXPECT_EQ(*back, i);
    }
  }
  run.ticks = world.clock.Now() - before;
  run.recoveries = metrics::StatValue(*world.network, "rack_retransmits") +
                   metrics::StatValue(*world.network, "rto_retransmits");
  world.network->DisarmFaults();
  return run;
}

TEST(ChaosDfs, PipelinedConvergesInFewerTicksThanSyncUnderDelay) {
  DelayHeavyRun sync = MeasureDelayHeavyRun(false);
  DelayHeavyRun piped = MeasureDelayHeavyRun(true);
  EXPECT_LT(piped.ticks, sync.ticks)
      << "pipelined recovery must beat synchronous waiting on delay-heavy "
         "plans";
  EXPECT_EQ(sync.recoveries, 0u) << "sync transport never retransmits";
  EXPECT_GT(piped.recoveries, 0u)
      << "the speedup should come from RTO/RACK copies racing the delays";
}

// The chaos machinery must have teeth: across a handful of schedules the
// interesting failure paths actually fire (otherwise the harness is
// asserting nothing).
TEST(ChaosDfs, SchedulesExerciseTheFailurePaths) {
  metrics::Registry::Global().counter("coh/evictions").Reset();
  uint64_t dedup_hits = 0, evicted = 0, dropped = 0, restarts = 0;
  bool dumped = false;
  for (uint64_t seed = 7000; seed < 7012; ++seed) {
    RunChaosSeed(seed);
    DumpFlightOnFailure(seed, &dumped);
    if (::testing::Test::HasFatalFailure()) {
      return;
    }
  }
  evicted = metrics::Registry::Global().counter("coh/evictions").Value();
  // Network + client counters are per-world, so re-run one seed and sample.
  {
    ChaosWorld world;
    net::FaultPlan plan;
    plan.seed = 42;
    plan.drop_response_pct = 100;
    world.network->ArmFaultsOnLink("client0", "server", plan);
    Buffer tag = TagBuffer(77);
    (void)world.files[0]->Write(0, tag.span());
    world.network->DisarmFaults();
    dedup_hits = metrics::StatValue(*world.server, "dedup_hits");
    dropped = metrics::StatValue(*world.network, "dropped_responses");
    restarts = metrics::StatValue(*world.clients[0], "retries");
  }
  EXPECT_GT(evicted, 0u) << "no schedule ever evicted a holder";
  EXPECT_GT(dedup_hits, 0u) << "dedup window never answered";
  EXPECT_GT(dropped, 0u);
  EXPECT_GT(restarts, 0u);
}

// --- deterministic exactly-once tests ---

TEST(ChaosDfs, DuplicatedMutatingFrameAppliesExactlyOnce) {
  ChaosWorld world;
  // Every request from client0 is delivered twice; the duplicate carries
  // the same request id, so the dedup window must swallow the second run.
  net::FaultPlan plan;
  plan.seed = 9;
  plan.dup_request_pct = 100;
  world.network->ArmFaultsOnLink("client0", "server", plan);
  Result<sp<File>> created =
      world.clients[0]->CreateFile(*Name::Parse("dup-once"), world.sys);
  world.network->DisarmFaults();
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  EXPECT_GT(metrics::StatValue(*world.network, "duplicated_requests"), 0u);
  EXPECT_GT(metrics::StatValue(*world.server, "dedup_hits"), 0u)
      << "the duplicate must be answered from the window, not re-executed";
  EXPECT_TRUE(ResolveAs<File>(world.sfs.root, "dup-once", world.sys).ok());
}

TEST(ChaosDfs, DroppedResponseRetransmissionAppliesExactlyOnce) {
  ChaosWorld world;
  world.network->DropNextResponses("client0", "server", 1);
  Buffer tag = TagBuffer(123);
  // The write executes, its response is lost, the client retries the same
  // request id, and the dedup window replays the original response.
  Result<size_t> wrote = world.files[0]->Write(0, tag.span());
  ASSERT_TRUE(wrote.ok()) << wrote.status().ToString();
  EXPECT_EQ(metrics::StatValue(*world.server, "dedup_hits"), 1u);
  EXPECT_EQ(*ReadTag(world.files[1], 0), 123u);
}

// --- striped chaos: data-server kills and restarts mid-workload ---
//
// A striped cluster (metadata server + two data servers, one-page stripes)
// under a seeded schedule of single-page reads and writes interleaved with
// partitioning and restarting individual data servers. Per-page model as
// above: acknowledged writes must never be lost, errored writes have
// unknown fate. After healing, the surviving client and a fresh verifier
// mount must agree on every page, and the sweep as a whole must have
// exercised per-stripe recovery (stripe rebinds after restarts).

constexpr int kStripedWidth = 2;
constexpr int kStripedPages = 4;  // one-page stripes: pages 0,2 on data0

struct StripedChaosWorld {
  Credentials sys = Credentials::System();
  FakeClock clock;
  std::unique_ptr<net::Network> network;
  sp<net::Node> client_node, verifier_node, mds_node;
  sp<net::Node> data_nodes[kStripedWidth];
  std::vector<std::unique_ptr<MemBlockDevice>> devices;
  std::vector<Sfs> stores;  // data stores, then the metadata store
  sp<dfs::DfsServer> data_servers[kStripedWidth];
  std::vector<sp<dfs::DfsServer>> retired_servers;
  sp<dfs::DfsServer> mds;
  sp<dfs::StripedDfsClient> client;
  sp<File> file;
  dfs::DfsServerOptions mds_options;

  // The single-copy sweep pins replicas = 1: it asserts PR-8 semantics
  // (a dead target's stripes fail, recovery is rebind-after-restart). The
  // replicated sweep below runs the same world at replicas = 2.
  explicit StripedChaosWorld(uint32_t replicas = 1) {
    network = std::make_unique<net::Network>(&clock, 1000);
    client_node = network->AddNode("client");
    verifier_node = network->AddNode("verifier");
    mds_node = network->AddNode("mds");
    mds_options.stripe_size = kPageSize;
    mds_options.stripe_replicas = replicas;
    for (int k = 0; k < kStripedWidth; ++k) {
      data_nodes[k] = network->AddNode("data" + std::to_string(k));
      devices.push_back(
          std::make_unique<MemBlockDevice>(ufs::kBlockSize, 4096));
      stores.push_back(*CreateSfs(devices.back().get(), SfsOptions{},
                                  &clock));
      data_servers[k] = *dfs::DfsServer::Create(
          data_nodes[k], network.get(), "dfs-data", stores[k].root, &clock);
      mds_options.stripe_targets.push_back(
          {data_nodes[k]->name(), "dfs-data"});
    }
    devices.push_back(std::make_unique<MemBlockDevice>(ufs::kBlockSize, 4096));
    stores.push_back(*CreateSfs(devices.back().get(), SfsOptions{}, &clock));
    mds = *dfs::DfsServer::Create(mds_node, network.get(), "dfs-meta",
                                  stores.back().root, &clock, mds_options);
    client = *dfs::StripedDfsClient::Mount(client_node, network.get(), "mds",
                                           "dfs-meta", &clock);
    file = *client->CreateStriped("chaos");
    EXPECT_TRUE(file->SetLength(kStripedPages * kPageSize).ok());
  }

  // New instance over the same store: new boot epoch, fresh handle space.
  // The predecessor is retired, not destroyed (its tombstone would stamp
  // the successor's service).
  void RestartDataServer(int k) {
    retired_servers.push_back(data_servers[k]);
    data_servers[k] = *dfs::DfsServer::Create(
        data_nodes[k], network.get(), "dfs-data", stores[k].root, &clock);
  }

  // Reads lane `lane`'s stripe object on data server k through its own
  // plain DFS mount (server-side caches cannot hide unflushed pages).
  Buffer ReadLaneObject(int k, const std::string& object_name, size_t lane) {
    std::string name = object_name;
    if (lane > 0) {
      name += "-r" + std::to_string(lane);
    }
    sp<dfs::DfsClient> direct = *dfs::DfsClient::Mount(
        verifier_node, network.get(), data_nodes[k]->name(), "dfs-data",
        &clock);
    Result<sp<File>> object = ResolveAs<File>(direct, name, sys);
    if (!object.ok()) {
      return Buffer{};
    }
    uint64_t len = *(*object)->GetLength();
    Buffer out(len);
    EXPECT_EQ(*(*object)->Read(0, out.mutable_span()), len);
    return out;
  }

  // The stripe object's durable (lane-0) name off a data store's root.
  // Replica lanes append "-r<lane>", so the base name is the shortest
  // "stripe-" match.
  std::string StripeObjectName(int k) {
    std::string best;
    std::vector<BindingInfo> entries = *stores[k].root->List(sys);
    for (const BindingInfo& entry : entries) {
      if (entry.name.rfind("stripe-", 0) == 0 &&
          (best.empty() || entry.name.size() < best.size())) {
        best = entry.name;
      }
    }
    return best;
  }
};

// Accumulated across a shard so the sweep can prove the recovery paths ran
// (one seed may legitimately never kill a server mid-binding).
struct StripedTeeth {
  uint64_t rebinds = 0;
  uint64_t restarts_seen = 0;
};

void RunStripedChaosSeed(uint64_t seed, StripedTeeth* teeth) {
  flight::Clear();
  SCOPED_TRACE("striped seed=" + std::to_string(seed));
  StripedChaosWorld world;
  Rng rng(seed);
  PageModel model[kStripedPages];
  bool dead[kStripedWidth] = {};
  uint64_t next_value = 1;

  constexpr int kSteps = 30;
  for (int step = 0; step < kSteps; ++step) {
    world.clock.Advance(rng.Range(1, 2'000'000));
    uint64_t action = rng.Below(100);

    if (action < 40) {
      // Single-page write (one stripe extent — exactly one data server).
      // ok => acknowledged; error => fate unknown: the extent may have
      // landed before the failure was declared.
      int page = static_cast<int>(rng.Below(kStripedPages));
      uint64_t value = next_value++;
      Buffer tag = TagBuffer(value);
      Result<size_t> wrote =
          world.file->Write(static_cast<Offset>(page) * kPageSize,
                            tag.span());
      if (wrote.ok()) {
        model[page].Ack(value);
      } else {
        model[page].pending.insert(value);
      }
    } else if (action < 70) {
      // Single-page read: whatever comes back must be model-allowed. A
      // page on a dead or restarting target may just fail, which asserts
      // nothing — the teeth counters prove recoveries happen often enough.
      int page = static_cast<int>(rng.Below(kStripedPages));
      Result<uint64_t> value =
          ReadTag(world.file, page);
      if (value.ok()) {
        EXPECT_TRUE(model[page].Allows(*value))
            << "step " << step << " page " << page << " read " << *value
            << " but model has " << model[page].Describe();
      }
    } else if (action < 85) {
      // Kill / heal one data server. Its stripes fail while it is out;
      // the other server's stripes must keep their own fate.
      int k = static_cast<int>(rng.Below(kStripedWidth));
      world.network->SetPartitioned(world.data_nodes[k]->name(), !dead[k]);
      dead[k] = !dead[k];
    } else if (action < 95) {
      // Restart one data server (fresh boot epoch): every handle and
      // cache binding the client holds for its stripes goes stale, and
      // the next touch must refetch the map and rebind just that stripe.
      int k = static_cast<int>(rng.Below(kStripedWidth));
      world.RestartDataServer(k);
    } else {
      // Long silence: data-server leases lapse under the client.
      world.clock.Advance(rng.Range(15'000'000, 30'000'000));
    }
  }

  // Heal and converge: every page settles to a model-allowed value, and a
  // fresh verifier mount agrees with the surviving client byte for byte.
  for (int k = 0; k < kStripedWidth; ++k) {
    world.network->SetPartitioned(world.data_nodes[k]->name(), false);
  }
  sp<dfs::StripedDfsClient> verifier = *dfs::StripedDfsClient::Mount(
      world.verifier_node, world.network.get(), "mds", "dfs-meta",
      &world.clock);
  Result<sp<File>> verified = verifier->OpenStriped("chaos");
  ASSERT_TRUE(verified.ok()) << verified.status().ToString();
  for (int page = 0; page < kStripedPages; ++page) {
    Result<uint64_t> value = ReadTag(*verified, page);
    ASSERT_TRUE(value.ok()) << value.status().ToString();
    EXPECT_TRUE(model[page].Allows(*value))
        << "page " << page << " converged to " << *value << " but model has "
        << model[page].Describe() << " — an acknowledged write was lost";
    Result<uint64_t> theirs = ReadTag(world.file, page);
    ASSERT_TRUE(theirs.ok()) << theirs.status().ToString();
    EXPECT_EQ(*theirs, *value) << "surviving client diverges on page "
                               << page;
  }
  for (int k = 0; k < kStripedWidth; ++k) {
    ASSERT_TRUE(world.data_servers[k]->CheckCoherencyInvariants());
  }
  if (teeth) {
    teeth->rebinds += metrics::StatValue(*world.client, "stripe_rebinds");
    teeth->restarts_seen +=
        metrics::StatValue(*world.client, "target_restarts");
  }
}

// 4 shards x 55 seeds = 220 striped schedules.
void RunStripedChaosShard(uint64_t first_seed) {
  bool dumped = false;
  StripedTeeth teeth;
  for (uint64_t seed = first_seed; seed < first_seed + 55; ++seed) {
    RunStripedChaosSeed(seed, &teeth);
    DumpFlightOnFailure(seed, &dumped);
    if (::testing::Test::HasFatalFailure()) {
      return;
    }
  }
  EXPECT_GT(teeth.rebinds, 0u)
      << "no schedule ever rebound a stripe after a data-server restart";
  EXPECT_GT(teeth.restarts_seen, 0u)
      << "no schedule ever observed a data-server boot-epoch bump";
}

TEST(ChaosStripedDfs, SeededSchedulesShard0) { RunStripedChaosShard(1000); }
TEST(ChaosStripedDfs, SeededSchedulesShard1) { RunStripedChaosShard(2000); }
TEST(ChaosStripedDfs, SeededSchedulesShard2) { RunStripedChaosShard(3000); }
TEST(ChaosStripedDfs, SeededSchedulesShard3) { RunStripedChaosShard(4000); }

// --- replicated striped chaos: a dead server is absorbed, rebuild converges ---
//
// The same cluster at replica factor 2: every one-page stripe has a copy
// on both data servers (lane 1 of stripe s sits on target (s + 1) % 2). A
// seeded schedule kills (partitions) ONE data server mid-workload; from
// that step on every client op must STILL SUCCEED — reads fail over to the
// surviving replica inside the fan-out, writes complete degraded after the
// client reports the dead target stale to the metadata server. The model
// is therefore exact (last acknowledged value per page), not a pending
// set: at R=2 a single failure is absorbed, never surfaced.
//
// After the schedule the partition heals, a successor comes up over the
// same store, and one rebuild pass must re-sync its lane objects
// byte-for-byte and clear the stale marks — a second pass finds nothing
// to do, and a fresh verifier mount agrees with the model on every page.

struct ReplicatedTeeth {
  uint64_t failovers = 0;        // reads served by the surviving replica
  uint64_t degraded_writes = 0;  // writes completed on one copy of two
  uint64_t rebuilds = 0;         // targets re-synced by rebuild passes
  uint64_t stale_visible = 0;    // stale targets seen via kGetHealth
};

void RunReplicatedChaosSeed(uint64_t seed, ReplicatedTeeth* teeth) {
  flight::Clear();
  SCOPED_TRACE("replicated seed=" + std::to_string(seed));
  StripedChaosWorld world(/*replicas=*/2);
  Rng rng(seed);
  uint64_t model[kStripedPages] = {};  // 0 == never written (reads as zeros)
  uint64_t next_value = 1;
  const int victim = static_cast<int>(rng.Below(kStripedWidth));
  const int kill_step = static_cast<int>(rng.Range(5, 20));

  constexpr int kSteps = 30;
  for (int step = 0; step < kSteps; ++step) {
    world.clock.Advance(rng.Range(1, 2'000'000));
    if (step == kill_step) {
      world.network->SetPartitioned(world.data_nodes[victim]->name(), true);
    }
    uint64_t action = rng.Below(100);
    if (action < 50) {
      int page = static_cast<int>(rng.Below(kStripedPages));
      uint64_t value = next_value++;
      Buffer tag = TagBuffer(value);
      Result<size_t> wrote = world.file->Write(
          static_cast<Offset>(page) * kPageSize, tag.span());
      ASSERT_TRUE(wrote.ok())
          << "step " << step << ": write failed with one replica of two "
          << "down — " << wrote.status().ToString();
      model[page] = value;
    } else if (action < 90) {
      int page = static_cast<int>(rng.Below(kStripedPages));
      Result<uint64_t> value = ReadTag(world.file, page);
      ASSERT_TRUE(value.ok())
          << "step " << step << ": read failed with one replica of two "
          << "down — " << value.status().ToString();
      EXPECT_EQ(*value, model[page]) << "step " << step << " page " << page;
    } else {
      // Long silence: leases lapse under the client. Recovery from that
      // must not surface errors either.
      world.clock.Advance(rng.Range(15'000'000, 30'000'000));
    }
  }

  // Heal the partition, bring a successor up over the victim's store, and
  // rebuild. Whether anything is stale depends on the schedule (a seed may
  // never write after the kill); the shard-level teeth prove the degraded
  // paths ran across the sweep.
  world.network->SetPartitioned(world.data_nodes[victim]->name(), false);

  // Degraded state must be visible *through the wire*, not just to code
  // holding a server pointer: scrape the MDS's kGetHealth and check the
  // stale sets against what this schedule actually did.
  dfs::ClusterStatsClient scraper("verifier", world.network.get());
  scraper.AddServer("mds", "dfs-meta");
  auto scrape_health = [&]() -> dfs::HealthResponse {
    std::vector<dfs::ServerScrape> scrapes = scraper.ScrapeAll();
    EXPECT_EQ(scrapes.size(), 1u);
    if (scrapes.size() == 1) {
      EXPECT_TRUE(scrapes[0].health_status.ok())
          << scrapes[0].health_status.ToString();
      return scrapes[0].health;
    }
    return {};
  };
  auto stale_count = [](const dfs::HealthResponse& health) {
    size_t stale = 0;
    for (const auto& file : health.files) {
      stale += file.stale_targets.size();
    }
    return stale;
  };
  dfs::HealthResponse before_rebuild = scrape_health();
  EXPECT_EQ(before_rebuild.role, dfs::HealthResponse::Role::kMetadata);
  EXPECT_EQ(before_rebuild.stripe_width, 2u);
  EXPECT_EQ(before_rebuild.stripe_replicas, 2u);
  if (metrics::StatValue(*world.client, "degraded_writes") > 0) {
    // Every degraded write skipped the victim, so the MDS must be
    // advertising its mark to anyone who asks.
    bool victim_stale = false;
    for (const auto& file : before_rebuild.files) {
      for (uint32_t t : file.stale_targets) {
        victim_stale |= t == static_cast<uint32_t>(victim);
      }
    }
    EXPECT_TRUE(victim_stale)
        << "degraded writes happened but kGetHealth shows no stale mark "
        << "on the victim";
  }
  size_t stale_before = stale_count(before_rebuild);

  world.RestartDataServer(victim);
  Result<uint64_t> rebuilt = world.mds->RunRebuildPass();
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.status().ToString();
  EXPECT_EQ(*rebuilt, stale_before)
      << "rebuild pass cleared a different number of targets than "
      << "kGetHealth advertised as stale";

  // A successful rebuild clears every stale mark: the second pass is a
  // no-op, and the health document agrees over the wire.
  Result<uint64_t> second = world.mds->RunRebuildPass();
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(*second, 0u) << "stale marks survived a successful rebuild";
  dfs::HealthResponse after_rebuild = scrape_health();
  EXPECT_EQ(stale_count(after_rebuild), 0u)
      << "kGetHealth still advertises stale targets after a clean rebuild";
  EXPECT_EQ(after_rebuild.rebuilds_completed, *rebuilt)
      << "kGetHealth rebuild counter disagrees with RunRebuildPass";
  for (const auto& file : after_rebuild.files) {
    for (const auto& old_file : before_rebuild.files) {
      if (old_file.path == file.path) {
        EXPECT_GE(file.map_version, old_file.map_version)
            << "map version went backwards across a rebuild";
      }
    }
  }

  // Every lane-1 object is byte-identical to its primary again.
  ASSERT_TRUE(world.file->SyncFile().ok());
  std::string object_name = world.StripeObjectName(1 - victim);
  ASSERT_FALSE(object_name.empty());
  for (int t = 0; t < kStripedWidth; ++t) {
    Buffer primary = world.ReadLaneObject(t, object_name, 0);
    Buffer mirror =
        world.ReadLaneObject((t + 1) % kStripedWidth, object_name, 1);
    ASSERT_EQ(mirror.size(), primary.size()) << "target " << t;
    EXPECT_EQ(std::memcmp(mirror.data(), primary.data(), primary.size()), 0)
        << "target " << t << ": lane-1 copy diverged after rebuild";
  }

  // A fresh mount (fresh map, post-rebuild version) agrees with the model.
  sp<dfs::StripedDfsClient> verifier = *dfs::StripedDfsClient::Mount(
      world.verifier_node, world.network.get(), "mds", "dfs-meta",
      &world.clock);
  Result<sp<File>> verified = verifier->OpenStriped("chaos");
  ASSERT_TRUE(verified.ok()) << verified.status().ToString();
  for (int page = 0; page < kStripedPages; ++page) {
    Result<uint64_t> value = ReadTag(*verified, page);
    ASSERT_TRUE(value.ok()) << value.status().ToString();
    EXPECT_EQ(*value, model[page]) << "verifier diverges on page " << page;
  }
  for (int k = 0; k < kStripedWidth; ++k) {
    ASSERT_TRUE(world.data_servers[k]->CheckCoherencyInvariants());
  }
  if (teeth) {
    teeth->failovers += metrics::StatValue(*world.client, "replica_failovers");
    teeth->degraded_writes +=
        metrics::StatValue(*world.client, "degraded_writes");
    teeth->rebuilds += *rebuilt;
    teeth->stale_visible += stale_before;
  }
}

// 4 shards x 55 seeds = 220 replicated schedules.
void RunReplicatedChaosShard(uint64_t first_seed) {
  bool dumped = false;
  ReplicatedTeeth teeth;
  for (uint64_t seed = first_seed; seed < first_seed + 55; ++seed) {
    RunReplicatedChaosSeed(seed, &teeth);
    DumpFlightOnFailure(seed, &dumped);
    if (::testing::Test::HasFatalFailure()) {
      return;
    }
  }
  EXPECT_GT(teeth.failovers, 0u)
      << "no schedule ever served a read from the surviving replica";
  EXPECT_GT(teeth.degraded_writes, 0u)
      << "no schedule ever completed a write degraded";
  EXPECT_GT(teeth.rebuilds, 0u)
      << "no schedule ever rebuilt a stale target";
  EXPECT_GT(teeth.stale_visible, 0u)
      << "no schedule ever exposed a stale target through kGetHealth";
}

TEST(ChaosReplicatedDfs, SeededSchedulesShard0) {
  RunReplicatedChaosShard(5000);
}
TEST(ChaosReplicatedDfs, SeededSchedulesShard1) {
  RunReplicatedChaosShard(6000);
}
TEST(ChaosReplicatedDfs, SeededSchedulesShard2) {
  RunReplicatedChaosShard(7000);
}
TEST(ChaosReplicatedDfs, SeededSchedulesShard3) {
  RunReplicatedChaosShard(8000);
}

// --- thread-safety of the fault-injection plumbing (run under TSan) ---

TEST(ChaosNet, LinkFailureBudgetIsExactUnderConcurrency) {
  FakeClock clock;
  net::Network network(&clock, 1000);
  network.AddNode("a");
  sp<net::Node> b = network.AddNode("b");
  b->RegisterService("echo",
                     [](const net::Frame& request) { return request; });

  constexpr int kThreads = 4;
  constexpr int kCallsPerThread = 50;
  constexpr uint64_t kBudget = 50;
  network.FailNextCallsOnLink("a", "b", kBudget, ErrorCode::kTimedOut);

  std::atomic<uint64_t> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kCallsPerThread; ++i) {
        Result<net::Frame> got = network.Call("a", "b", "echo", net::Frame{});
        if (!got.ok()) {
          EXPECT_EQ(got.status().code(), ErrorCode::kTimedOut);
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  // Each budgeted failure is consumed exactly once, no more, no fewer.
  EXPECT_EQ(failures.load(), kBudget);
  EXPECT_EQ(metrics::StatValue(network, "injected_failures"), kBudget);
  EXPECT_TRUE(network.Call("a", "b", "echo", net::Frame{}).ok());
}

TEST(ChaosNet, ConcurrentSendersSurviveFaultToggling) {
  FakeClock clock;
  net::Network network(&clock, 1000);
  sp<net::Node> a = network.AddNode("a");
  sp<net::Node> b = network.AddNode("b");
  a->RegisterService("echo",
                     [](const net::Frame& request) { return request; });
  b->RegisterService("echo",
                     [](const net::Frame& request) { return request; });

  std::atomic<bool> stop{false};
  std::vector<std::thread> senders;
  for (int t = 0; t < 4; ++t) {
    senders.emplace_back([&, t] {
      const std::string from = (t % 2 == 0) ? "a" : "b";
      const std::string to = (t % 2 == 0) ? "b" : "a";
      net::Frame request;
      for (int i = 0; i < 400; ++i) {
        request.arg0 = i;
        (void)network.Call(from, to, "echo", request);
      }
    });
  }
  std::thread chaos([&] {
    Rng rng(77);
    while (!stop.load()) {
      switch (rng.Below(6)) {
        case 0:
          network.FailNextCalls(rng.Range(1, 4), ErrorCode::kTimedOut);
          break;
        case 1:
          network.FailNextCallsOnLink("a", "b", rng.Range(1, 4),
                                      ErrorCode::kConnectionLost);
          break;
        case 2: {
          net::FaultPlan plan;
          plan.seed = rng.Next();
          plan.drop_request_pct = 20;
          plan.drop_response_pct = 20;
          plan.dup_request_pct = 10;
          network.ArmFaults(plan);
          break;
        }
        case 3:
          network.DisarmFaults();
          break;
        case 4:
          network.SetPartitioned("a", true);
          break;
        default:
          network.SetPartitioned("a", false);
          break;
      }
    }
  });
  for (auto& t : senders) {
    t.join();
  }
  stop.store(true);
  chaos.join();
  // Heal and confirm the fabric still works. DisarmFaults clears the
  // seeded plans but not FailNextCalls budgets, so drain any leftovers.
  network.DisarmFaults();
  network.SetPartitioned("a", false);
  bool healed = false;
  for (int i = 0; i < 32 && !healed; ++i) {
    healed = network.Call("a", "b", "echo", net::Frame{}).ok();
  }
  EXPECT_TRUE(healed);
  EXPECT_GT(metrics::StatValue(network, "calls"), 0u);
}

}  // namespace
}  // namespace springfs
