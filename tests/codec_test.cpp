// Unit and property tests for the codecs (RLE, LZ77) and the XTEA cipher.

#include <gtest/gtest.h>

#include "src/codec/codec.h"
#include "src/support/rng.h"

namespace springfs {
namespace {

class CodecRoundTripTest
    : public ::testing::TestWithParam<std::tuple<const char*, uint64_t>> {};

TEST_P(CodecRoundTripTest, RandomBuffers) {
  const Codec* codec = CodecByName(std::get<0>(GetParam()));
  ASSERT_NE(codec, nullptr);
  Rng rng(std::get<1>(GetParam()));
  for (size_t size : {0, 1, 2, 7, 100, 4096, 100000}) {
    Buffer input = rng.RandomBuffer(size);
    Buffer compressed = codec->Compress(input.span());
    Result<Buffer> output = codec->Decompress(compressed.span(), size);
    ASSERT_TRUE(output.ok()) << codec->name() << " size " << size << ": "
                             << output.status().ToString();
    EXPECT_EQ(*output, input) << codec->name() << " size " << size;
  }
}

TEST_P(CodecRoundTripTest, CompressibleBuffers) {
  const Codec* codec = CodecByName(std::get<0>(GetParam()));
  ASSERT_NE(codec, nullptr);
  Rng rng(std::get<1>(GetParam()));
  for (size_t size : {64, 4096, 65536}) {
    Buffer input = rng.CompressibleBuffer(size);
    Buffer compressed = codec->Compress(input.span());
    EXPECT_LT(compressed.size(), size)
        << codec->name() << " failed to shrink runs at size " << size;
    Result<Buffer> output = codec->Decompress(compressed.span(), size);
    ASSERT_TRUE(output.ok());
    EXPECT_EQ(*output, input);
  }
}

TEST_P(CodecRoundTripTest, StructuredText) {
  const Codec* codec = CodecByName(std::get<0>(GetParam()));
  std::string text;
  for (int i = 0; i < 200; ++i) {
    text += "the quick brown fox jumps over the lazy dog; ";
  }
  Buffer input(text);
  Buffer compressed = codec->Compress(input.span());
  Result<Buffer> output = codec->Decompress(compressed.span(), input.size());
  ASSERT_TRUE(output.ok());
  EXPECT_EQ(output->ToString(), text);
}

INSTANTIATE_TEST_SUITE_P(
    Codecs, CodecRoundTripTest,
    ::testing::Combine(::testing::Values("rle", "lz77"),
                       ::testing::Values(1, 42, 20260707)),
    [](const auto& info) {
      return std::string(std::get<0>(info.param)) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

TEST(Lz77Test, BeatsRleOnText) {
  std::string text;
  for (int i = 0; i < 100; ++i) {
    text += "abcdefgh-repetitive-structure-";
  }
  Buffer input(text);
  Buffer lz = CodecByName("lz77")->Compress(input.span());
  Buffer rle = CodecByName("rle")->Compress(input.span());
  EXPECT_LT(lz.size(), rle.size());
  EXPECT_LT(lz.size(), input.size() / 4);
}

TEST(Lz77Test, HandlesOverlappingMatches) {
  // "aaaa..." forces self-overlapping copies (dist < len).
  Buffer input(std::string(1000, 'a'));
  const Codec* codec = CodecByName("lz77");
  Buffer compressed = codec->Compress(input.span());
  EXPECT_LT(compressed.size(), 32u);
  Result<Buffer> output = codec->Decompress(compressed.span(), 1000);
  ASSERT_TRUE(output.ok());
  EXPECT_EQ(*output, input);
}

TEST(CodecTest, DecompressRejectsCorruptInput) {
  Rng rng(5);
  Buffer input = rng.CompressibleBuffer(4096);
  for (const char* name : {"rle", "lz77"}) {
    const Codec* codec = CodecByName(name);
    Buffer compressed = codec->Compress(input.span());
    // Wrong expected size.
    EXPECT_FALSE(codec->Decompress(compressed.span(), 4095).ok()) << name;
    // Truncated stream.
    Buffer truncated(compressed.subspan(0, compressed.size() / 2));
    EXPECT_FALSE(codec->Decompress(truncated.span(), 4096).ok()) << name;
  }
}

TEST(CodecTest, Lz77RejectsBadTokens) {
  const Codec* codec = CodecByName("lz77");
  // Unknown token kind.
  uint8_t bad_kind[] = {0x07, 0, 0};
  EXPECT_EQ(codec->Decompress(ByteSpan(bad_kind, 3), 10).status().code(),
            ErrorCode::kCorrupted);
  // Match with distance beyond output.
  uint8_t bad_dist[] = {0x01, 0x04, 0x00, 0xFF, 0x00};
  EXPECT_EQ(codec->Decompress(ByteSpan(bad_dist, 5), 10).status().code(),
            ErrorCode::kCorrupted);
}

TEST(CodecTest, UnknownCodecNameIsNull) {
  EXPECT_EQ(CodecByName("zstd"), nullptr);
  EXPECT_NE(CodecByName("rle"), nullptr);
  EXPECT_NE(CodecByName("lz77"), nullptr);
}

// --- XTEA ---

TEST(XteaTest, BlockEncryptDecryptRoundTrip) {
  XteaKey key = XteaKey::FromPassphrase("secret");
  uint32_t block[2] = {0x12345678, 0x9ABCDEF0};
  uint32_t original[2] = {block[0], block[1]};
  XteaEncryptBlock(key, block);
  EXPECT_TRUE(block[0] != original[0] || block[1] != original[1]);
  XteaDecryptBlock(key, block);
  EXPECT_EQ(block[0], original[0]);
  EXPECT_EQ(block[1], original[1]);
}

TEST(XteaTest, DifferentKeysDifferentCiphertext) {
  XteaKey k1 = XteaKey::FromPassphrase("one");
  XteaKey k2 = XteaKey::FromPassphrase("two");
  uint32_t b1[2] = {1, 2};
  uint32_t b2[2] = {1, 2};
  XteaEncryptBlock(k1, b1);
  XteaEncryptBlock(k2, b2);
  EXPECT_TRUE(b1[0] != b2[0] || b1[1] != b2[1]);
}

TEST(XteaTest, CtrIsSelfInverse) {
  XteaKey key = XteaKey::FromPassphrase("ctr");
  Rng rng(9);
  Buffer data = rng.RandomBuffer(4096);
  Buffer original = data;
  XteaCtrApply(key, 8192, data.mutable_span());
  EXPECT_NE(data, original);
  XteaCtrApply(key, 8192, data.mutable_span());
  EXPECT_EQ(data, original);
}

TEST(XteaTest, CtrDependsOnStreamOffset) {
  XteaKey key = XteaKey::FromPassphrase("ctr");
  Buffer a(size_t{64}), b(size_t{64});  // zero-filled
  XteaCtrApply(key, 0, a.mutable_span());
  XteaCtrApply(key, 64, b.mutable_span());
  EXPECT_NE(a, b);
}

TEST(XteaTest, CtrHandlesUnalignedTail) {
  XteaKey key = XteaKey::FromPassphrase("tail");
  Buffer data(size_t{13});
  Buffer original = data;
  XteaCtrApply(key, 0, data.mutable_span());
  XteaCtrApply(key, 0, data.mutable_span());
  EXPECT_EQ(data, original);
}

TEST(XteaTest, KeyDerivationIsDeterministic) {
  XteaKey a = XteaKey::FromPassphrase("same");
  XteaKey b = XteaKey::FromPassphrase("same");
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(a.words[i], b.words[i]);
  }
}

}  // namespace
}  // namespace springfs
