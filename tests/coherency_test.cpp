// Unit tests for the coherency engine: MRSW state transitions, callback
// selection, recovered-data plumbing, release paths, and a randomized
// invariant sweep with scripted fake caches.

#include <gtest/gtest.h>

#include <map>

#include "src/coherency/engine.h"
#include "src/support/rng.h"

namespace springfs {
namespace {

// A scripted cache object that records the callbacks it receives, can be
// loaded with dirty blocks to hand back, and can be scripted to fail its
// callbacks (a dead or misbehaving holder).
class FakeCache : public CacheObject {
 public:
  Result<std::vector<BlockData>> FlushBack(Range range) override {
    ++flush_backs;
    if (!fail_with.ok()) {
      return fail_with;
    }
    return TakeDirty(range);
  }
  Result<std::vector<BlockData>> DenyWrites(Range range) override {
    ++deny_writes;
    if (!fail_with.ok()) {
      return fail_with;
    }
    return TakeDirty(range);
  }
  Result<std::vector<BlockData>> WriteBack(Range range) override {
    ++write_backs;
    return TakeDirty(range);
  }
  Status DeleteRange(Range) override { return Status::Ok(); }
  Status ZeroFill(Range) override { return Status::Ok(); }
  Status Populate(Offset, AccessRights, ByteSpan) override {
    return Status::Ok();
  }
  Status DestroyCache() override { return Status::Ok(); }

  void LoadDirty(Offset offset, Buffer data) {
    dirty_[offset] = std::move(data);
  }

  int flush_backs = 0;
  int deny_writes = 0;
  int write_backs = 0;
  Status fail_with = Status::Ok();  // sticky callback failure when not OK

 private:
  std::vector<BlockData> TakeDirty(Range range) {
    std::vector<BlockData> out;
    for (auto it = dirty_.begin(); it != dirty_.end();) {
      if (range.Contains(it->first)) {
        out.push_back(BlockData{it->first, std::move(it->second)});
        it = dirty_.erase(it);
      } else {
        ++it;
      }
    }
    return out;
  }

  std::map<Offset, Buffer> dirty_;
};

class EngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    c1_ = std::make_shared<FakeCache>();
    c2_ = std::make_shared<FakeCache>();
    c3_ = std::make_shared<FakeCache>();
    engine_.AddCache(1, c1_);
    engine_.AddCache(2, c2_);
    engine_.AddCache(3, c3_);
  }

  CoherencyEngine engine_;
  sp<FakeCache> c1_, c2_, c3_;
};

TEST_F(EngineTest, ReadersCoexistWithoutCallbacks) {
  ASSERT_TRUE(engine_.Acquire(1, Range{0, kPageSize},
                              AccessRights::kReadOnly).ok());
  ASSERT_TRUE(engine_.Acquire(2, Range{0, kPageSize},
                              AccessRights::kReadOnly).ok());
  ASSERT_TRUE(engine_.Acquire(3, Range{0, kPageSize},
                              AccessRights::kReadOnly).ok());
  EXPECT_EQ(c1_->flush_backs + c2_->flush_backs + c3_->flush_backs, 0);
  EXPECT_EQ(c1_->deny_writes + c2_->deny_writes + c3_->deny_writes, 0);
  EXPECT_EQ(engine_.BlockNumReaders(0), 3u);
  EXPECT_TRUE(engine_.CheckInvariants());
}

TEST_F(EngineTest, WriterFlushesAllReaders) {
  ASSERT_TRUE(engine_.Acquire(1, Range{0, kPageSize},
                              AccessRights::kReadOnly).ok());
  ASSERT_TRUE(engine_.Acquire(2, Range{0, kPageSize},
                              AccessRights::kReadOnly).ok());
  ASSERT_TRUE(engine_.Acquire(3, Range{0, kPageSize},
                              AccessRights::kReadWrite).ok());
  EXPECT_EQ(c1_->flush_backs, 1);
  EXPECT_EQ(c2_->flush_backs, 1);
  EXPECT_EQ(c3_->flush_backs, 0);
  EXPECT_TRUE(engine_.BlockHasWriter(0));
  EXPECT_EQ(engine_.BlockNumReaders(0), 0u);
  EXPECT_TRUE(engine_.CheckInvariants());
}

TEST_F(EngineTest, ReaderDemotesWriterAndRecoversDirtyData) {
  ASSERT_TRUE(engine_.Acquire(1, Range{0, kPageSize},
                              AccessRights::kReadWrite).ok());
  Buffer dirty(kPageSize);
  dirty.data()[0] = 0x42;
  c1_->LoadDirty(0, dirty);
  Result<std::vector<BlockData>> recovered =
      engine_.Acquire(2, Range{0, kPageSize}, AccessRights::kReadOnly);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(c1_->deny_writes, 1);
  ASSERT_EQ(recovered->size(), 1u);
  EXPECT_EQ((*recovered)[0].offset, 0u);
  EXPECT_EQ((*recovered)[0].data.data()[0], 0x42);
  // Ex-writer is now a reader alongside the requester.
  EXPECT_FALSE(engine_.BlockHasWriter(0));
  EXPECT_EQ(engine_.BlockNumReaders(0), 2u);
  EXPECT_TRUE(engine_.CheckInvariants());
  EXPECT_EQ(engine_.stats().blocks_recovered, 1u);
}

TEST_F(EngineTest, WriterStealsFromWriter) {
  ASSERT_TRUE(engine_.Acquire(1, Range{0, kPageSize},
                              AccessRights::kReadWrite).ok());
  ASSERT_TRUE(engine_.Acquire(2, Range{0, kPageSize},
                              AccessRights::kReadWrite).ok());
  EXPECT_EQ(c1_->flush_backs, 1);
  EXPECT_TRUE(engine_.BlockHasWriter(0));
  EXPECT_TRUE(engine_.CheckInvariants());
}

TEST_F(EngineTest, RepeatAcquireBySameHolderIsFree) {
  ASSERT_TRUE(engine_.Acquire(1, Range{0, kPageSize},
                              AccessRights::kReadWrite).ok());
  ASSERT_TRUE(engine_.Acquire(1, Range{0, kPageSize},
                              AccessRights::kReadWrite).ok());
  ASSERT_TRUE(engine_.Acquire(1, Range{0, kPageSize},
                              AccessRights::kReadOnly).ok());
  EXPECT_EQ(c1_->flush_backs + c1_->deny_writes, 0);
}

TEST_F(EngineTest, BlocksAreIndependent) {
  ASSERT_TRUE(engine_.Acquire(1, Range{0, kPageSize},
                              AccessRights::kReadWrite).ok());
  ASSERT_TRUE(engine_.Acquire(2, Range{kPageSize, kPageSize},
                              AccessRights::kReadWrite).ok());
  EXPECT_EQ(c1_->flush_backs, 0);
  EXPECT_EQ(c2_->flush_backs, 0);
  EXPECT_TRUE(engine_.BlockHasWriter(0));
  EXPECT_TRUE(engine_.BlockHasWriter(kPageSize));
  EXPECT_TRUE(engine_.CheckInvariants());
}

TEST_F(EngineTest, RangeAcquireSpansMultipleBlocks) {
  ASSERT_TRUE(engine_.Acquire(1, Range{0, kPageSize},
                              AccessRights::kReadWrite).ok());
  ASSERT_TRUE(engine_.Acquire(1, Range{2 * kPageSize, kPageSize},
                              AccessRights::kReadWrite).ok());
  // One flush_back call covering the whole range, not one per block.
  ASSERT_TRUE(engine_.Acquire(2, Range{0, 3 * kPageSize},
                              AccessRights::kReadWrite).ok());
  EXPECT_EQ(c1_->flush_backs, 1);
  EXPECT_TRUE(engine_.BlockHasWriter(0));
  EXPECT_TRUE(engine_.BlockHasWriter(kPageSize));
  EXPECT_TRUE(engine_.BlockHasWriter(2 * kPageSize));
}

TEST_F(EngineTest, AnonymousReaderDemotesButHoldsNothing) {
  ASSERT_TRUE(engine_.Acquire(1, Range{0, kPageSize},
                              AccessRights::kReadWrite).ok());
  ASSERT_TRUE(engine_.Acquire(0, Range{0, kPageSize},
                              AccessRights::kReadOnly).ok());
  EXPECT_EQ(c1_->deny_writes, 1);
  EXPECT_FALSE(engine_.BlockHasWriter(0));
  EXPECT_EQ(engine_.BlockNumReaders(0), 1u);  // only the demoted ex-writer
}

TEST_F(EngineTest, AnonymousWriterFlushesEveryone) {
  ASSERT_TRUE(engine_.Acquire(1, Range{0, kPageSize},
                              AccessRights::kReadOnly).ok());
  ASSERT_TRUE(engine_.Acquire(2, Range{0, kPageSize},
                              AccessRights::kReadOnly).ok());
  ASSERT_TRUE(engine_.Acquire(0, Range{0, kPageSize},
                              AccessRights::kReadWrite).ok());
  EXPECT_EQ(c1_->flush_backs, 1);
  EXPECT_EQ(c2_->flush_backs, 1);
  EXPECT_FALSE(engine_.BlockHasWriter(0));
  EXPECT_EQ(engine_.BlockNumReaders(0), 0u);
}

TEST_F(EngineTest, ReleaseDroppedClearsHolder) {
  ASSERT_TRUE(engine_.Acquire(1, Range{0, kPageSize},
                              AccessRights::kReadWrite).ok());
  engine_.ReleaseDropped(1, Range{0, kPageSize});
  EXPECT_FALSE(engine_.BlockHasWriter(0));
  // A new writer needs no callbacks now.
  ASSERT_TRUE(engine_.Acquire(2, Range{0, kPageSize},
                              AccessRights::kReadWrite).ok());
  EXPECT_EQ(c1_->flush_backs, 0);
}

TEST_F(EngineTest, ReleaseDowngradedKeepsReader) {
  ASSERT_TRUE(engine_.Acquire(1, Range{0, kPageSize},
                              AccessRights::kReadWrite).ok());
  engine_.ReleaseDowngraded(1, Range{0, kPageSize});
  EXPECT_FALSE(engine_.BlockHasWriter(0));
  EXPECT_EQ(engine_.BlockNumReaders(0), 1u);
  // A subsequent writer must flush the downgraded holder.
  ASSERT_TRUE(engine_.Acquire(2, Range{0, kPageSize},
                              AccessRights::kReadWrite).ok());
  EXPECT_EQ(c1_->flush_backs, 1);
}

TEST_F(EngineTest, RemoveCacheForgetsItsHoldings) {
  ASSERT_TRUE(engine_.Acquire(1, Range{0, kPageSize},
                              AccessRights::kReadWrite).ok());
  engine_.RemoveCache(1);
  EXPECT_FALSE(engine_.BlockHasWriter(0));
  EXPECT_EQ(engine_.NumCaches(), 2u);
  EXPECT_TRUE(engine_.CheckInvariants());
}

// --- failure model: callback errors, eviction, leases, fencing ---

TEST_F(EngineTest, CallbackErrorFromHealthyHolderPropagates) {
  ASSERT_TRUE(engine_.Acquire(1, Range{0, kPageSize},
                              AccessRights::kReadWrite).ok());
  // An in-process error (not an unreachable-style code, no lease configured)
  // means the holder is alive but failing: the engine must surface it, not
  // silently evict a live cache.
  c1_->fail_with = ErrIoError("cache torn");
  Result<std::vector<BlockData>> got =
      engine_.Acquire(2, Range{0, kPageSize}, AccessRights::kReadWrite);
  EXPECT_EQ(got.status().code(), ErrorCode::kIoError);
  EXPECT_EQ(engine_.stats().callback_failures, 1u);
  EXPECT_EQ(engine_.stats().evictions, 0u);
  EXPECT_TRUE(engine_.HasCache(1)) << "a live holder must not be evicted";
  EXPECT_TRUE(engine_.CheckInvariants());
  // Once the holder recovers, the acquire goes through.
  c1_->fail_with = Status::Ok();
  EXPECT_TRUE(engine_.Acquire(2, Range{0, kPageSize},
                              AccessRights::kReadWrite).ok());
}

TEST_F(EngineTest, UnreachableWriterIsEvictedAndLossRecorded) {
  ASSERT_TRUE(engine_.Acquire(1, Range{0, kPageSize},
                              AccessRights::kReadWrite).ok());
  c1_->fail_with = ErrTimedOut("holder dead");
  // A read acquire demotes the dead writer: the callback times out, the
  // holder is evicted, and the reader proceeds instead of failing forever.
  Result<std::vector<BlockData>> got =
      engine_.Acquire(2, Range{0, kPageSize}, AccessRights::kReadOnly);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_FALSE(engine_.HasCache(1));
  EXPECT_EQ(engine_.stats().evictions, 1u);
  EXPECT_EQ(engine_.stats().lost_dirty_blocks, 1u);
  EXPECT_TRUE(engine_.BlockNeedsRecovery(0))
      << "the evicted writer's block may have lost dirty data";
  EXPECT_TRUE(engine_.CheckInvariants());
}

TEST_F(EngineTest, FreshWriterClearsRecoveryNeeded) {
  ASSERT_TRUE(engine_.Acquire(1, Range{0, kPageSize},
                              AccessRights::kReadWrite).ok());
  c1_->fail_with = ErrConnectionLost("gone");
  ASSERT_TRUE(engine_.Acquire(2, Range{0, kPageSize},
                              AccessRights::kReadOnly).ok());
  ASSERT_TRUE(engine_.BlockNeedsRecovery(0));
  // A new writer supersedes whatever the evicted one lost.
  ASSERT_TRUE(engine_.Acquire(2, Range{0, kPageSize},
                              AccessRights::kReadWrite).ok());
  EXPECT_FALSE(engine_.BlockNeedsRecovery(0));
}

TEST_F(EngineTest, ExpiredLeaseEvictsWithoutCalling) {
  FakeClock clock;
  engine_.ConfigureLeases(&clock, /*lease_ns=*/1'000'000);
  ASSERT_TRUE(engine_.Acquire(1, Range{0, kPageSize},
                              AccessRights::kReadWrite).ok());
  int calls_before = c1_->flush_backs + c1_->deny_writes;
  clock.Advance(2'000'000);  // the writer goes silent past its lease
  ASSERT_TRUE(engine_.Acquire(2, Range{0, kPageSize},
                              AccessRights::kReadWrite).ok());
  EXPECT_EQ(c1_->flush_backs + c1_->deny_writes, calls_before)
      << "an expired holder is presumed dead: no pointless callback";
  EXPECT_FALSE(engine_.HasCache(1));
  EXPECT_EQ(engine_.stats().lease_expiries, 1u);
  EXPECT_EQ(engine_.stats().evictions, 1u);
  EXPECT_TRUE(engine_.CheckInvariants());
}

TEST_F(EngineTest, AcquireRenewsTheRequestersLease) {
  FakeClock clock;
  engine_.ConfigureLeases(&clock, /*lease_ns=*/1'000'000);
  ASSERT_TRUE(engine_.Acquire(1, Range{0, kPageSize},
                              AccessRights::kReadWrite).ok());
  // Keep touching the engine just inside the lease each time.
  for (int i = 0; i < 5; ++i) {
    clock.Advance(900'000);
    ASSERT_TRUE(engine_.Acquire(1, Range{0, kPageSize},
                                AccessRights::kReadWrite).ok());
  }
  clock.Advance(900'000);
  ASSERT_TRUE(engine_.Acquire(2, Range{0, kPageSize},
                              AccessRights::kReadWrite).ok());
  EXPECT_EQ(engine_.stats().lease_expiries, 0u)
      << "an active holder's lease must keep sliding forward";
  EXPECT_EQ(c1_->flush_backs, 1) << "live holder is flushed, not evicted";
}

TEST_F(EngineTest, StaleReleasesAreFenced) {
  uint64_t inc_old = engine_.Incarnation(1);
  ASSERT_NE(inc_old, 0u);
  ASSERT_TRUE(engine_.Acquire(1, Range{0, kPageSize},
                              AccessRights::kReadWrite).ok());
  c1_->fail_with = ErrTimedOut("dead");
  ASSERT_TRUE(engine_.Acquire(2, Range{0, kPageSize},
                              AccessRights::kReadOnly).ok());
  ASSERT_FALSE(engine_.HasCache(1));

  // The dead client revives and its stale page-out frame finally lands:
  // holder 1 is no longer a member, so the release is a no-op.
  engine_.ReleaseDropped(1, Range{0, kPageSize}, inc_old);
  EXPECT_EQ(engine_.stats().fenced_releases, 1u);

  // The client re-registers (new incarnation) and becomes a writer; a
  // leftover frame minted under the OLD incarnation must still be fenced.
  c1_->fail_with = Status::Ok();
  uint64_t inc_new = engine_.AddCache(1, c1_);
  EXPECT_NE(inc_new, inc_old);
  ASSERT_TRUE(engine_.Acquire(1, Range{0, kPageSize},
                              AccessRights::kReadWrite).ok());
  engine_.ReleaseDropped(1, Range{0, kPageSize}, inc_old);
  EXPECT_EQ(engine_.stats().fenced_releases, 2u);
  EXPECT_TRUE(engine_.BlockHasWriter(0)) << "stale frame must not release";
  // The current incarnation's release applies normally.
  engine_.ReleaseDropped(1, Range{0, kPageSize}, inc_new);
  EXPECT_FALSE(engine_.BlockHasWriter(0));
  EXPECT_TRUE(engine_.CheckInvariants());
}

class EnginePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EnginePropertyTest, RandomAcquireSequencePreservesInvariants) {
  CoherencyEngine engine;
  std::vector<sp<FakeCache>> caches;
  for (uint64_t id = 1; id <= 4; ++id) {
    caches.push_back(std::make_shared<FakeCache>());
    engine.AddCache(id, caches.back());
  }
  Rng rng(GetParam());
  for (int step = 0; step < 2000; ++step) {
    uint64_t cache_id = rng.Range(1, 4);
    Offset offset = rng.Below(8) * kPageSize;
    Offset size = rng.Range(1, 3) * kPageSize;
    uint64_t action = rng.Below(10);
    if (action < 5) {
      ASSERT_TRUE(engine.Acquire(cache_id, Range{offset, size},
                                 AccessRights::kReadOnly).ok());
    } else if (action < 8) {
      ASSERT_TRUE(engine.Acquire(cache_id, Range{offset, size},
                                 AccessRights::kReadWrite).ok());
    } else if (action < 9) {
      engine.ReleaseDropped(cache_id, Range{offset, size});
    } else {
      engine.ReleaseDowngraded(cache_id, Range{offset, size});
    }
    ASSERT_TRUE(engine.CheckInvariants()) << "step " << step;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EnginePropertyTest,
                         ::testing::Values(1, 7, 13, 77, 20260707));

}  // namespace
}  // namespace springfs
