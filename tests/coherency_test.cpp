// Unit tests for the coherency engine: MRSW state transitions, callback
// selection, recovered-data plumbing, release paths, and a randomized
// invariant sweep with scripted fake caches.

#include <gtest/gtest.h>

#include <map>

#include "src/coherency/engine.h"
#include "src/support/rng.h"

namespace springfs {
namespace {

// A scripted cache object that records the callbacks it receives and can be
// loaded with dirty blocks to hand back.
class FakeCache : public CacheObject {
 public:
  Result<std::vector<BlockData>> FlushBack(Range range) override {
    ++flush_backs;
    return TakeDirty(range);
  }
  Result<std::vector<BlockData>> DenyWrites(Range range) override {
    ++deny_writes;
    return TakeDirty(range);
  }
  Result<std::vector<BlockData>> WriteBack(Range range) override {
    ++write_backs;
    return TakeDirty(range);
  }
  Status DeleteRange(Range) override { return Status::Ok(); }
  Status ZeroFill(Range) override { return Status::Ok(); }
  Status Populate(Offset, AccessRights, ByteSpan) override {
    return Status::Ok();
  }
  Status DestroyCache() override { return Status::Ok(); }

  void LoadDirty(Offset offset, Buffer data) {
    dirty_[offset] = std::move(data);
  }

  int flush_backs = 0;
  int deny_writes = 0;
  int write_backs = 0;

 private:
  std::vector<BlockData> TakeDirty(Range range) {
    std::vector<BlockData> out;
    for (auto it = dirty_.begin(); it != dirty_.end();) {
      if (range.Contains(it->first)) {
        out.push_back(BlockData{it->first, std::move(it->second)});
        it = dirty_.erase(it);
      } else {
        ++it;
      }
    }
    return out;
  }

  std::map<Offset, Buffer> dirty_;
};

class EngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    c1_ = std::make_shared<FakeCache>();
    c2_ = std::make_shared<FakeCache>();
    c3_ = std::make_shared<FakeCache>();
    engine_.AddCache(1, c1_);
    engine_.AddCache(2, c2_);
    engine_.AddCache(3, c3_);
  }

  CoherencyEngine engine_;
  sp<FakeCache> c1_, c2_, c3_;
};

TEST_F(EngineTest, ReadersCoexistWithoutCallbacks) {
  ASSERT_TRUE(engine_.Acquire(1, Range{0, kPageSize},
                              AccessRights::kReadOnly).ok());
  ASSERT_TRUE(engine_.Acquire(2, Range{0, kPageSize},
                              AccessRights::kReadOnly).ok());
  ASSERT_TRUE(engine_.Acquire(3, Range{0, kPageSize},
                              AccessRights::kReadOnly).ok());
  EXPECT_EQ(c1_->flush_backs + c2_->flush_backs + c3_->flush_backs, 0);
  EXPECT_EQ(c1_->deny_writes + c2_->deny_writes + c3_->deny_writes, 0);
  EXPECT_EQ(engine_.BlockNumReaders(0), 3u);
  EXPECT_TRUE(engine_.CheckInvariants());
}

TEST_F(EngineTest, WriterFlushesAllReaders) {
  ASSERT_TRUE(engine_.Acquire(1, Range{0, kPageSize},
                              AccessRights::kReadOnly).ok());
  ASSERT_TRUE(engine_.Acquire(2, Range{0, kPageSize},
                              AccessRights::kReadOnly).ok());
  ASSERT_TRUE(engine_.Acquire(3, Range{0, kPageSize},
                              AccessRights::kReadWrite).ok());
  EXPECT_EQ(c1_->flush_backs, 1);
  EXPECT_EQ(c2_->flush_backs, 1);
  EXPECT_EQ(c3_->flush_backs, 0);
  EXPECT_TRUE(engine_.BlockHasWriter(0));
  EXPECT_EQ(engine_.BlockNumReaders(0), 0u);
  EXPECT_TRUE(engine_.CheckInvariants());
}

TEST_F(EngineTest, ReaderDemotesWriterAndRecoversDirtyData) {
  ASSERT_TRUE(engine_.Acquire(1, Range{0, kPageSize},
                              AccessRights::kReadWrite).ok());
  Buffer dirty(kPageSize);
  dirty.data()[0] = 0x42;
  c1_->LoadDirty(0, dirty);
  Result<std::vector<BlockData>> recovered =
      engine_.Acquire(2, Range{0, kPageSize}, AccessRights::kReadOnly);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(c1_->deny_writes, 1);
  ASSERT_EQ(recovered->size(), 1u);
  EXPECT_EQ((*recovered)[0].offset, 0u);
  EXPECT_EQ((*recovered)[0].data.data()[0], 0x42);
  // Ex-writer is now a reader alongside the requester.
  EXPECT_FALSE(engine_.BlockHasWriter(0));
  EXPECT_EQ(engine_.BlockNumReaders(0), 2u);
  EXPECT_TRUE(engine_.CheckInvariants());
  EXPECT_EQ(engine_.stats().blocks_recovered, 1u);
}

TEST_F(EngineTest, WriterStealsFromWriter) {
  ASSERT_TRUE(engine_.Acquire(1, Range{0, kPageSize},
                              AccessRights::kReadWrite).ok());
  ASSERT_TRUE(engine_.Acquire(2, Range{0, kPageSize},
                              AccessRights::kReadWrite).ok());
  EXPECT_EQ(c1_->flush_backs, 1);
  EXPECT_TRUE(engine_.BlockHasWriter(0));
  EXPECT_TRUE(engine_.CheckInvariants());
}

TEST_F(EngineTest, RepeatAcquireBySameHolderIsFree) {
  ASSERT_TRUE(engine_.Acquire(1, Range{0, kPageSize},
                              AccessRights::kReadWrite).ok());
  ASSERT_TRUE(engine_.Acquire(1, Range{0, kPageSize},
                              AccessRights::kReadWrite).ok());
  ASSERT_TRUE(engine_.Acquire(1, Range{0, kPageSize},
                              AccessRights::kReadOnly).ok());
  EXPECT_EQ(c1_->flush_backs + c1_->deny_writes, 0);
}

TEST_F(EngineTest, BlocksAreIndependent) {
  ASSERT_TRUE(engine_.Acquire(1, Range{0, kPageSize},
                              AccessRights::kReadWrite).ok());
  ASSERT_TRUE(engine_.Acquire(2, Range{kPageSize, kPageSize},
                              AccessRights::kReadWrite).ok());
  EXPECT_EQ(c1_->flush_backs, 0);
  EXPECT_EQ(c2_->flush_backs, 0);
  EXPECT_TRUE(engine_.BlockHasWriter(0));
  EXPECT_TRUE(engine_.BlockHasWriter(kPageSize));
  EXPECT_TRUE(engine_.CheckInvariants());
}

TEST_F(EngineTest, RangeAcquireSpansMultipleBlocks) {
  ASSERT_TRUE(engine_.Acquire(1, Range{0, kPageSize},
                              AccessRights::kReadWrite).ok());
  ASSERT_TRUE(engine_.Acquire(1, Range{2 * kPageSize, kPageSize},
                              AccessRights::kReadWrite).ok());
  // One flush_back call covering the whole range, not one per block.
  ASSERT_TRUE(engine_.Acquire(2, Range{0, 3 * kPageSize},
                              AccessRights::kReadWrite).ok());
  EXPECT_EQ(c1_->flush_backs, 1);
  EXPECT_TRUE(engine_.BlockHasWriter(0));
  EXPECT_TRUE(engine_.BlockHasWriter(kPageSize));
  EXPECT_TRUE(engine_.BlockHasWriter(2 * kPageSize));
}

TEST_F(EngineTest, AnonymousReaderDemotesButHoldsNothing) {
  ASSERT_TRUE(engine_.Acquire(1, Range{0, kPageSize},
                              AccessRights::kReadWrite).ok());
  ASSERT_TRUE(engine_.Acquire(0, Range{0, kPageSize},
                              AccessRights::kReadOnly).ok());
  EXPECT_EQ(c1_->deny_writes, 1);
  EXPECT_FALSE(engine_.BlockHasWriter(0));
  EXPECT_EQ(engine_.BlockNumReaders(0), 1u);  // only the demoted ex-writer
}

TEST_F(EngineTest, AnonymousWriterFlushesEveryone) {
  ASSERT_TRUE(engine_.Acquire(1, Range{0, kPageSize},
                              AccessRights::kReadOnly).ok());
  ASSERT_TRUE(engine_.Acquire(2, Range{0, kPageSize},
                              AccessRights::kReadOnly).ok());
  ASSERT_TRUE(engine_.Acquire(0, Range{0, kPageSize},
                              AccessRights::kReadWrite).ok());
  EXPECT_EQ(c1_->flush_backs, 1);
  EXPECT_EQ(c2_->flush_backs, 1);
  EXPECT_FALSE(engine_.BlockHasWriter(0));
  EXPECT_EQ(engine_.BlockNumReaders(0), 0u);
}

TEST_F(EngineTest, ReleaseDroppedClearsHolder) {
  ASSERT_TRUE(engine_.Acquire(1, Range{0, kPageSize},
                              AccessRights::kReadWrite).ok());
  engine_.ReleaseDropped(1, Range{0, kPageSize});
  EXPECT_FALSE(engine_.BlockHasWriter(0));
  // A new writer needs no callbacks now.
  ASSERT_TRUE(engine_.Acquire(2, Range{0, kPageSize},
                              AccessRights::kReadWrite).ok());
  EXPECT_EQ(c1_->flush_backs, 0);
}

TEST_F(EngineTest, ReleaseDowngradedKeepsReader) {
  ASSERT_TRUE(engine_.Acquire(1, Range{0, kPageSize},
                              AccessRights::kReadWrite).ok());
  engine_.ReleaseDowngraded(1, Range{0, kPageSize});
  EXPECT_FALSE(engine_.BlockHasWriter(0));
  EXPECT_EQ(engine_.BlockNumReaders(0), 1u);
  // A subsequent writer must flush the downgraded holder.
  ASSERT_TRUE(engine_.Acquire(2, Range{0, kPageSize},
                              AccessRights::kReadWrite).ok());
  EXPECT_EQ(c1_->flush_backs, 1);
}

TEST_F(EngineTest, RemoveCacheForgetsItsHoldings) {
  ASSERT_TRUE(engine_.Acquire(1, Range{0, kPageSize},
                              AccessRights::kReadWrite).ok());
  engine_.RemoveCache(1);
  EXPECT_FALSE(engine_.BlockHasWriter(0));
  EXPECT_EQ(engine_.NumCaches(), 2u);
  EXPECT_TRUE(engine_.CheckInvariants());
}

class EnginePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EnginePropertyTest, RandomAcquireSequencePreservesInvariants) {
  CoherencyEngine engine;
  std::vector<sp<FakeCache>> caches;
  for (uint64_t id = 1; id <= 4; ++id) {
    caches.push_back(std::make_shared<FakeCache>());
    engine.AddCache(id, caches.back());
  }
  Rng rng(GetParam());
  for (int step = 0; step < 2000; ++step) {
    uint64_t cache_id = rng.Range(1, 4);
    Offset offset = rng.Below(8) * kPageSize;
    Offset size = rng.Range(1, 3) * kPageSize;
    uint64_t action = rng.Below(10);
    if (action < 5) {
      ASSERT_TRUE(engine.Acquire(cache_id, Range{offset, size},
                                 AccessRights::kReadOnly).ok());
    } else if (action < 8) {
      ASSERT_TRUE(engine.Acquire(cache_id, Range{offset, size},
                                 AccessRights::kReadWrite).ok());
    } else if (action < 9) {
      engine.ReleaseDropped(cache_id, Range{offset, size});
    } else {
      engine.ReleaseDowngraded(cache_id, Range{offset, size});
    }
    ASSERT_TRUE(engine.CheckInvariants()) << "step " << step;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EnginePropertyTest,
                         ::testing::Values(1, 7, 13, 77, 20260707));

}  // namespace
}  // namespace springfs
