// Tests for COMPFS (paper §4.2.1, Figures 5/6): transparent compression on
// top of SFS, disk-space savings, metadata persistence, compaction, both
// coherency modes, and mapped-client access through the VMM.

#include <gtest/gtest.h>

#include "src/layers/compfs/comp_layer.h"
#include "src/layers/sfs/sfs.h"
#include "src/support/rng.h"
#include "src/vmm/vmm.h"

namespace springfs {
namespace {

struct CompStack {
  std::unique_ptr<MemBlockDevice> device;
  Sfs sfs;
  sp<Domain> comp_domain;
  sp<CompLayer> compfs;
};

CompStack MakeStack(FakeClock* clock, CompLayerOptions options = {}) {
  CompStack stack;
  stack.device = std::make_unique<MemBlockDevice>(ufs::kBlockSize, 16384);
  stack.sfs = *CreateSfs(stack.device.get(), SfsOptions{}, clock);
  stack.comp_domain = Domain::Create("compfs");
  stack.compfs = CompLayer::Create(stack.comp_domain, options, clock);
  SPRINGFS_CHECK(stack.compfs->StackOn(stack.sfs.root).ok());
  return stack;
}

class CompfsTest : public ::testing::TestWithParam<bool> {
 protected:
  void SetUp() override {
    CompLayerOptions options;
    options.coherent_lower = GetParam();
    stack_ = MakeStack(&clock_, options);
  }

  Credentials sys_ = Credentials::System();
  FakeClock clock_;
  CompStack stack_;
};

TEST_P(CompfsTest, RoundTripThroughCompression) {
  sp<File> file = *stack_.compfs->CreateFile(*Name::Parse("doc"), sys_);
  Rng rng(1);
  Buffer data = rng.CompressibleBuffer(3 * kPageSize + 100);
  ASSERT_TRUE(file->Write(0, data.span()).ok());
  Buffer out(data.size());
  EXPECT_EQ(*file->Read(0, out.mutable_span()), data.size());
  EXPECT_EQ(out, data);
  EXPECT_EQ(file->Stat()->size, data.size());
}

TEST_P(CompfsTest, UnderlyingFileHoldsCompressedBytes) {
  sp<File> file = *stack_.compfs->CreateFile(*Name::Parse("c"), sys_);
  Rng rng(2);
  Buffer data = rng.CompressibleBuffer(8 * kPageSize);
  ASSERT_TRUE(file->Write(0, data.span()).ok());
  ASSERT_TRUE(file->SyncFile().ok());

  // The underlying data file is much smaller than the logical file.
  Result<sp<File>> under = ResolveAs<File>(stack_.sfs.root, "c", sys_);
  ASSERT_TRUE(under.ok());
  uint64_t stored = (*under)->Stat()->size;
  EXPECT_GT(stored, 0u);
  EXPECT_LT(stored, data.size() / 2)
      << "compressible data should shrink substantially";
  // And its bytes are not the plaintext.
  Buffer raw(kPageSize);
  ASSERT_TRUE((*under)->Read(0, raw.mutable_span()).ok());
  EXPECT_NE(Fnv1a64(raw.subspan(0, kPageSize)),
            Fnv1a64(data.subspan(0, kPageSize)));
}

TEST_P(CompfsTest, IncompressibleDataStoredRaw) {
  sp<File> file = *stack_.compfs->CreateFile(*Name::Parse("r"), sys_);
  Rng rng(3);
  Buffer data = rng.RandomBuffer(2 * kPageSize);
  ASSERT_TRUE(file->Write(0, data.span()).ok());
  ASSERT_TRUE(file->SyncFile().ok());
  EXPECT_GT(metrics::StatValue(*stack_.compfs, "blocks_stored_raw"), 0u);
  Buffer out(data.size());
  EXPECT_EQ(*file->Read(0, out.mutable_span()), data.size());
  EXPECT_EQ(out, data);
}

TEST_P(CompfsTest, MetadataPersistsAcrossReopen) {
  {
    sp<File> file = *stack_.compfs->CreateFile(*Name::Parse("persist"), sys_);
    Buffer data(std::string("compressed and persisted"));
    ASSERT_TRUE(file->Write(0, data.span()).ok());
    ASSERT_TRUE(file->SyncFile().ok());
  }
  // A fresh COMPFS instance over the same stack reads the metadata back.
  CompLayerOptions options;
  options.coherent_lower = GetParam();
  sp<CompLayer> fresh =
      CompLayer::Create(Domain::Create("compfs2"), options, &clock_);
  ASSERT_TRUE(fresh->StackOn(stack_.sfs.root).ok());
  Result<sp<File>> file = ResolveAs<File>(fresh, "persist", sys_);
  ASSERT_TRUE(file.ok());
  Buffer out(24);
  EXPECT_EQ(*(*file)->Read(0, out.mutable_span()), 24u);
  EXPECT_EQ(out.ToString(), "compressed and persisted");
}

TEST_P(CompfsTest, MetaShadowFilesAreHidden) {
  ASSERT_TRUE(stack_.compfs->CreateFile(*Name::Parse("visible"), sys_).ok());
  sp<File> f = *ResolveAs<File>(stack_.compfs, "visible", sys_);
  Buffer data(std::string("x"));
  ASSERT_TRUE(f->Write(0, data.span()).ok());
  ASSERT_TRUE(f->SyncFile().ok());

  Result<std::vector<BindingInfo>> list = stack_.compfs->List(sys_);
  ASSERT_TRUE(list.ok());
  for (const auto& entry : *list) {
    EXPECT_EQ(entry.name.find(".cmeta"), std::string::npos) << entry.name;
  }
  // But the shadow exists in the underlying layer.
  EXPECT_TRUE(stack_.sfs.root->Resolve(*Name::Parse("visible.cmeta"), sys_).ok());
  // Resolving the shadow through COMPFS is refused.
  EXPECT_EQ(stack_.compfs->Resolve(*Name::Parse("visible.cmeta"), sys_)
                .status().code(),
            ErrorCode::kNotFound);
}

TEST_P(CompfsTest, UnbindRemovesShadowToo) {
  sp<File> f = *stack_.compfs->CreateFile(*Name::Parse("gone"), sys_);
  Buffer data(std::string("y"));
  ASSERT_TRUE(f->Write(0, data.span()).ok());
  ASSERT_TRUE(f->SyncFile().ok());
  f.reset();
  ASSERT_TRUE(stack_.compfs->Unbind(*Name::Parse("gone"), sys_).ok());
  EXPECT_EQ(stack_.sfs.root->Resolve(*Name::Parse("gone"), sys_).status().code(),
            ErrorCode::kNotFound);
  EXPECT_EQ(stack_.sfs.root->Resolve(*Name::Parse("gone.cmeta"), sys_)
                .status().code(),
            ErrorCode::kNotFound);
}

TEST_P(CompfsTest, RewritesCreateGarbageCompactionReclaims) {
  sp<File> file = *stack_.compfs->CreateFile(*Name::Parse("churn"), sys_);
  Rng rng(4);
  // Rewrite the same blocks repeatedly; every rewrite orphans a chunk.
  for (int round = 0; round < 10; ++round) {
    Buffer data = rng.CompressibleBuffer(4 * kPageSize);
    ASSERT_TRUE(file->Write(0, data.span()).ok());
    ASSERT_TRUE(file->SyncFile().ok());
  }
  Buffer expected(4 * kPageSize);
  ASSERT_TRUE(file->Read(0, expected.mutable_span()).ok());

  Result<uint64_t> reclaimed =
      stack_.compfs->Compact(*Name::Parse("churn"), sys_);
  ASSERT_TRUE(reclaimed.ok()) << reclaimed.status().ToString();
  EXPECT_GT(*reclaimed, 0u);
  // Data intact after compaction.
  Buffer out(4 * kPageSize);
  ASSERT_TRUE(file->Read(0, out.mutable_span()).ok());
  EXPECT_EQ(out, expected);
  EXPECT_GE(metrics::StatValue(*stack_.compfs, "compactions"), 1u);
}

TEST_P(CompfsTest, SparseFilesReadZerosInHoles) {
  sp<File> file = *stack_.compfs->CreateFile(*Name::Parse("sparse"), sys_);
  Buffer tail(std::string("tail"));
  ASSERT_TRUE(file->Write(5 * kPageSize, tail.span()).ok());
  Buffer out(kPageSize);
  ASSERT_TRUE(file->Read(kPageSize, out.mutable_span()).ok());
  for (size_t i = 0; i < kPageSize; ++i) {
    ASSERT_EQ(out.data()[i], 0);
  }
}

TEST_P(CompfsTest, TruncateThenExtendZeros) {
  sp<File> file = *stack_.compfs->CreateFile(*Name::Parse("t"), sys_);
  Buffer data(std::string("secretsecret"));
  ASSERT_TRUE(file->Write(0, data.span()).ok());
  ASSERT_TRUE(file->SetLength(3).ok());
  ASSERT_TRUE(file->SetLength(12).ok());
  Buffer out(12);
  ASSERT_TRUE(file->Read(0, out.mutable_span()).ok());
  EXPECT_EQ(out.ToString().substr(0, 3), "sec");
  for (int i = 3; i < 12; ++i) {
    EXPECT_EQ(out.data()[i], 0);
  }
}

TEST_P(CompfsTest, MappedAccessThroughVmm) {
  sp<File> file = *stack_.compfs->CreateFile(*Name::Parse("mapped"), sys_);
  Rng rng(5);
  Buffer data = rng.CompressibleBuffer(2 * kPageSize);
  ASSERT_TRUE(file->Write(0, data.span()).ok());

  sp<Vmm> vmm = Vmm::Create(Domain::Create("node"), "vmm");
  Result<sp<MappedRegion>> region = vmm->Map(file, AccessRights::kReadWrite);
  ASSERT_TRUE(region.ok()) << region.status().ToString();
  Buffer out(data.size());
  ASSERT_TRUE((*region)->Read(0, out.mutable_span()).ok());
  EXPECT_EQ(out, data);

  // Mapped write, read back through the file interface (client coherency).
  Buffer patch(std::string("PATCH"));
  ASSERT_TRUE((*region)->Write(100, patch.span()).ok());
  Buffer check(5);
  ASSERT_TRUE(file->Read(100, check.mutable_span()).ok());
  EXPECT_EQ(check.ToString(), "PATCH");
}

TEST_P(CompfsTest, RandomWorkloadAgainstModel) {
  sp<File> file = *stack_.compfs->CreateFile(*Name::Parse("rand"), sys_);
  Rng rng(77);
  Buffer model;
  for (int step = 0; step < 120; ++step) {
    if (rng.Chance(7, 10)) {
      uint64_t offset = rng.Below(4 * kPageSize);
      Buffer data = rng.Chance(1, 2)
                        ? rng.CompressibleBuffer(rng.Range(1, kPageSize))
                        : rng.RandomBuffer(rng.Range(1, 512));
      ASSERT_TRUE(file->Write(offset, data.span()).ok());
      model.WriteAt(offset, data.span());
    } else if (rng.Chance(1, 3)) {
      ASSERT_TRUE(file->SyncFile().ok());
    } else {
      uint64_t offset = rng.Below(5 * kPageSize);
      size_t len = rng.Range(1, kPageSize);
      Buffer got(len), expect(len);
      Result<size_t> n = file->Read(offset, got.mutable_span());
      ASSERT_TRUE(n.ok());
      size_t ref_n = model.ReadAt(offset, expect.mutable_span());
      ASSERT_EQ(*n, ref_n);
      EXPECT_TRUE(std::equal(got.data(), got.data() + *n, expect.data()));
    }
  }
  EXPECT_EQ(file->Stat()->size, model.size());
}

INSTANTIATE_TEST_SUITE_P(Modes, CompfsTest, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "CoherentFig6"
                                             : "NonCoherentFig5";
                         });

// --- the Figure 5 vs Figure 6 distinction ---

TEST(CompfsCoherencyTest, Fig6SeesDirectUnderlyingWrites) {
  // Figure 6: COMPFS is a cache manager for file_SFS, so a direct write to
  // the underlying file invalidates COMPFS's decompressed cache.
  FakeClock clock;
  CompLayerOptions options;
  options.coherent_lower = true;
  CompStack stack = MakeStack(&clock, options);
  Credentials sys = Credentials::System();

  sp<File> comp_file = *stack.compfs->CreateFile(*Name::Parse("f"), sys);
  Rng rng(6);
  Buffer v1 = rng.CompressibleBuffer(kPageSize);
  ASSERT_TRUE(comp_file->Write(0, v1.span()).ok());
  ASSERT_TRUE(comp_file->SyncFile().ok());
  // Trigger binding below + populate the decompressed cache.
  sp<Vmm> vmm = Vmm::Create(Domain::Create("node"), "vmm");
  sp<MappedRegion> region = *vmm->Map(comp_file, AccessRights::kReadOnly);
  Buffer out(kPageSize);
  ASSERT_TRUE(region->Read(0, out.mutable_span()).ok());

  // Someone rewrites the underlying compressed file directly (e.g. restores
  // it from backup): replace it with a fresh COMPFS image of new content.
  uint64_t invalidations_before =
      metrics::StatValue(*stack.compfs, "lower_invalidations");
  sp<File> under = *ResolveAs<File>(stack.sfs.root, "f", sys);
  Buffer junk(std::string("overwritten directly!"));
  ASSERT_TRUE(under->Write(0, junk.span()).ok());
  EXPECT_GT(metrics::StatValue(*stack.compfs, "lower_invalidations"),
            invalidations_before)
      << "COMPFS (Fig. 6) must receive coherency callbacks from below";
}

TEST(CompfsCoherencyTest, Fig5DoesNotBindBelow) {
  FakeClock clock;
  CompLayerOptions options;
  options.coherent_lower = false;
  CompStack stack = MakeStack(&clock, options);
  Credentials sys = Credentials::System();

  sp<File> comp_file = *stack.compfs->CreateFile(*Name::Parse("f"), sys);
  Rng rng(7);
  Buffer v1 = rng.CompressibleBuffer(kPageSize);
  ASSERT_TRUE(comp_file->Write(0, v1.span()).ok());
  ASSERT_TRUE(comp_file->SyncFile().ok());
  sp<Vmm> vmm = Vmm::Create(Domain::Create("node"), "vmm");
  sp<MappedRegion> region = *vmm->Map(comp_file, AccessRights::kReadOnly);
  Buffer out(kPageSize);
  ASSERT_TRUE(region->Read(0, out.mutable_span()).ok());

  // Direct underlying write: COMPFS (Fig. 5) does not hear about it.
  uint64_t invalidations_before =
      metrics::StatValue(*stack.compfs, "lower_invalidations");
  sp<File> under = *ResolveAs<File>(stack.sfs.root, "f", sys);
  Buffer junk(std::string("overwritten directly!"));
  ASSERT_TRUE(under->Write(0, junk.span()).ok());
  EXPECT_EQ(metrics::StatValue(*stack.compfs, "lower_invalidations"),
            invalidations_before)
      << "Fig. 5 COMPFS must not be engaged in lower-layer coherency";
}

TEST(CompfsCodecChoiceTest, RleAndLz77BothWork) {
  FakeClock clock;
  for (const char* codec : {"rle", "lz77"}) {
    CompLayerOptions options;
    options.codec = codec;
    CompStack stack = MakeStack(&clock, options);
    sp<File> file =
        *stack.compfs->CreateFile(*Name::Parse("f"), Credentials::System());
    Rng rng(8);
    Buffer data = rng.CompressibleBuffer(2 * kPageSize);
    ASSERT_TRUE(file->Write(0, data.span()).ok()) << codec;
    Buffer out(data.size());
    ASSERT_TRUE(file->Read(0, out.mutable_span()).ok()) << codec;
    EXPECT_EQ(out, data) << codec;
  }
}

}  // namespace
}  // namespace springfs
