// Tests for compound DFS operations and client delegations (DESIGN.md §13):
// the typed wire codec, server-side compound pipeline semantics (stop at
// first failure, current-handle substitution, nested/callback rejection),
// delegation grant/recall/return/expiry/fencing, the post-restart grace
// period, and the zero-round-trip client serves.

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "src/layers/dfs/dfs_client.h"
#include "src/layers/dfs/dfs_server.h"
#include "src/layers/dfs/wire.h"
#include "src/layers/sfs/sfs.h"
#include "src/vmm/vmm.h"

namespace springfs {
namespace {

using dfs::DfsClient;
using dfs::DfsServer;

// --- wire codec round trips ---

TEST(DfsWire, OpenRoundTrip) {
  dfs::OpenRequest req;
  req.handle = 7;
  req.want_delegation = dfs::DelegationKind::kWrite;
  req.node = "client1";
  req.service = "dfs-cb-3";
  Result<dfs::OpenRequest> back = dfs::OpenRequest::Decode(req.Encode().span());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->handle, 7u);
  EXPECT_EQ(back->want_delegation, dfs::DelegationKind::kWrite);
  EXPECT_EQ(back->node, "client1");
  EXPECT_EQ(back->service, "dfs-cb-3");

  dfs::OpenResponse resp;
  resp.handle = 7;
  resp.deleg_id = 42;
  resp.granted = dfs::DelegationKind::kRead;
  resp.incarnation = 3;
  resp.expires_at = 1'000'000;
  Result<dfs::OpenResponse> r2 =
      dfs::OpenResponse::Decode(resp.Encode().span());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->deleg_id, 42u);
  EXPECT_EQ(r2->granted, dfs::DelegationKind::kRead);
  EXPECT_EQ(r2->incarnation, 3u);
  EXPECT_EQ(r2->expires_at, 1'000'000u);
}

TEST(DfsWire, CompoundRoundTrip) {
  dfs::CompoundRequest req;
  dfs::PathRequest lookup;
  lookup.path = "a/b";
  req.ops.push_back({static_cast<uint32_t>(dfs::Op::kLookup),
                     lookup.Encode()});
  dfs::HandleRequest attr;
  req.ops.push_back({static_cast<uint32_t>(dfs::Op::kGetAttr),
                     attr.Encode()});
  Result<dfs::CompoundRequest> back =
      dfs::CompoundRequest::Decode(req.Encode().span());
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->ops.size(), 2u);
  EXPECT_EQ(back->ops[0].op, static_cast<uint32_t>(dfs::Op::kLookup));
  Result<dfs::PathRequest> sub =
      dfs::PathRequest::Decode(back->ops[0].body.span());
  ASSERT_TRUE(sub.ok());
  EXPECT_EQ(sub->path, "a/b");

  dfs::CompoundResponse resp;
  resp.results.push_back({static_cast<uint32_t>(dfs::Op::kLookup), 0,
                          Buffer(std::string("ok"))});
  resp.results.push_back(
      {static_cast<uint32_t>(dfs::Op::kGetAttr),
       static_cast<int32_t>(ErrorCode::kNotFound), Buffer()});
  Result<dfs::CompoundResponse> r2 =
      dfs::CompoundResponse::Decode(resp.Encode().span());
  ASSERT_TRUE(r2.ok());
  ASSERT_EQ(r2->results.size(), 2u);
  EXPECT_EQ(r2->results[0].status, 0);
  EXPECT_EQ(r2->results[0].body.ToString(), "ok");
  EXPECT_EQ(r2->results[1].status,
            static_cast<int32_t>(ErrorCode::kNotFound));
}

TEST(DfsWire, DelegReturnAndRecallRoundTrip) {
  dfs::DelegReturnRequest ret;
  ret.handle = 5;
  ret.deleg_id = 9;
  ret.incarnation = 2;
  ret.has_times = true;
  ret.atime_ns = 123;
  ret.mtime_ns = 456;
  Result<dfs::DelegReturnRequest> back =
      dfs::DelegReturnRequest::Decode(ret.Encode().span());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->deleg_id, 9u);
  EXPECT_TRUE(back->has_times);
  EXPECT_EQ(back->mtime_ns, 456u);

  dfs::CbRecallDelegRequest recall;
  recall.deleg_id = 9;
  recall.incarnation = 2;
  Result<dfs::CbRecallDelegRequest> r2 =
      dfs::CbRecallDelegRequest::Decode(recall.Encode().span());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->deleg_id, 9u);

  dfs::CbRecallDelegResponse resp;
  resp.has_times = true;
  resp.atime_ns = 7;
  resp.mtime_ns = 8;
  Result<dfs::CbRecallDelegResponse> r3 =
      dfs::CbRecallDelegResponse::Decode(resp.Encode().span());
  ASSERT_TRUE(r3.ok());
  EXPECT_TRUE(r3->has_times);
  EXPECT_EQ(r3->atime_ns, 7u);
}

TEST(DfsWire, TruncatedBodiesAreRejected) {
  dfs::OpenResponse resp;
  resp.deleg_id = 42;
  Buffer wire = resp.Encode();
  for (size_t cut = 0; cut < wire.size(); cut += 7) {
    EXPECT_FALSE(dfs::OpenResponse::Decode(wire.subspan(0, cut)).ok())
        << "cut=" << cut;
  }
  dfs::CompoundRequest req;
  req.ops.push_back({1, Buffer(std::string("xyzw"))});
  Buffer cwire = req.Encode();
  EXPECT_FALSE(
      dfs::CompoundRequest::Decode(cwire.subspan(0, cwire.size() - 1)).ok());
}

// --- fixture: server + SFS, clients mounted with various options ---

class CompoundDfsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    network_ = std::make_unique<net::Network>(&clock_, 1000);
    server_node_ = network_->AddNode("server");
    client_node_ = network_->AddNode("client1");
    client2_node_ = network_->AddNode("client2");
    device_ = std::make_unique<MemBlockDevice>(ufs::kBlockSize, 8192);
    sfs_ = *CreateSfs(device_.get(), SfsOptions{}, &clock_);
    server_ = *DfsServer::Create(server_node_, network_.get(), "dfs",
                                 sfs_.root, &clock_);
  }

  sp<DfsClient> MountWith(const sp<net::Node>& node,
                          const dfs::DfsClientOptions& options) {
    return *DfsClient::Mount(node, network_.get(), "server", "dfs", &clock_,
                             options);
  }

  // A seeded file with one page of known content.
  sp<File> Seed(const std::string& name, const std::string& content) {
    sp<File> file = *sfs_.root->CreateFile(*Name::Parse(name), sys_);
    Buffer data(content);
    EXPECT_TRUE(file->Write(0, data.span()).ok());
    return file;
  }

  uint64_t NetMessages() {
    return metrics::StatValue(*network_, "messages");
  }

  // Raw protocol round trip, bypassing the client (for malformed-program
  // and fencing probes).
  net::Frame Raw(dfs::Op op, Buffer payload) {
    net::Frame request;
    request.type = static_cast<uint32_t>(op);
    request.payload = std::move(payload);
    Result<net::Frame> response =
        network_->Call("client1", "server", "dfs", request);
    EXPECT_TRUE(response.ok());
    return response.ok() ? *response : net::Frame{};
  }

  Credentials sys_ = Credentials::System();
  FakeClock clock_;
  std::unique_ptr<net::Network> network_;
  sp<net::Node> server_node_, client_node_, client2_node_;
  std::unique_ptr<MemBlockDevice> device_;
  Sfs sfs_;
  sp<DfsServer> server_;
};

// --- compound pipeline semantics ---

TEST_F(CompoundDfsTest, CompoundOpenHalvesTheWireTraffic) {
  Seed("cold", "compound payload");
  dfs::DfsClientOptions sync_options;
  sp<DfsClient> sync_client = MountWith(client_node_, sync_options);
  dfs::DfsClientOptions compound_options;
  compound_options.compound = true;
  sp<DfsClient> compound_client = MountWith(client2_node_, compound_options);

  Buffer out(8);
  // Sync cold open: lookup + getattr + read, one round trip each.
  uint64_t before = NetMessages();
  sp<File> f1 = *ResolveAs<File>(sync_client, "cold", sys_);
  ASSERT_TRUE(f1->Stat().ok());
  ASSERT_TRUE(f1->Read(0, out.mutable_span()).ok());
  uint64_t sync_msgs = NetMessages() - before;

  // Compound cold open: ONE round trip; the stat and first read are then
  // served from the close-to-open one-shot cache.
  before = NetMessages();
  sp<File> f2 = *ResolveAs<File>(compound_client, "cold", sys_);
  ASSERT_TRUE(f2->Stat().ok());
  ASSERT_TRUE(f2->Read(0, out.mutable_span()).ok());
  uint64_t compound_msgs = NetMessages() - before;
  EXPECT_EQ(out.ToString(), "compound");

  EXPECT_LE(compound_msgs * 2, sync_msgs)
      << "a compound open must cost at most half the sync messages";
  EXPECT_EQ(metrics::StatValue(*compound_client, "compound_opens"), 1u);
  EXPECT_EQ(metrics::StatValue(*compound_client, "cto_serves"), 2u);
  EXPECT_EQ(metrics::StatValue(*server_, "compounds"), 1u);
  EXPECT_EQ(metrics::StatValue(*server_, "compound_sub_ops"), 4u);

  // The close-to-open cache is one-shot: the next stat goes to the wire.
  before = NetMessages();
  ASSERT_TRUE(f2->Stat().ok());
  EXPECT_GT(NetMessages(), before);
}

TEST_F(CompoundDfsTest, CompoundStopsAtFirstFailure) {
  Seed("exists", "x");
  dfs::CompoundRequest program;
  dfs::PathRequest ok_lookup;
  ok_lookup.path = "exists";
  program.ops.push_back({static_cast<uint32_t>(dfs::Op::kLookup),
                         ok_lookup.Encode()});
  dfs::PathRequest bad_lookup;
  bad_lookup.path = "missing";
  program.ops.push_back({static_cast<uint32_t>(dfs::Op::kLookup),
                         bad_lookup.Encode()});
  dfs::HandleRequest never_runs;
  program.ops.push_back({static_cast<uint32_t>(dfs::Op::kGetAttr),
                         never_runs.Encode()});

  net::Frame response = Raw(dfs::Op::kCompound, program.Encode());
  ASSERT_TRUE(response.ToStatus().ok());
  Result<dfs::CompoundResponse> results =
      dfs::CompoundResponse::Decode(response.payload.span());
  ASSERT_TRUE(results.ok());
  ASSERT_EQ(results->results.size(), 2u)
      << "execution must stop at the first failing op";
  EXPECT_EQ(results->results[0].status, 0);
  EXPECT_EQ(results->results[1].status,
            static_cast<int32_t>(ErrorCode::kNotFound));
}

TEST_F(CompoundDfsTest, CompoundSubstitutesCurrentHandle) {
  Seed("hs", "hello substitution");
  dfs::CompoundRequest program;
  dfs::PathRequest lookup;
  lookup.path = "hs";
  program.ops.push_back({static_cast<uint32_t>(dfs::Op::kLookup),
                         lookup.Encode()});
  dfs::HandleRequest attr;  // handle 0 -> replaced by the lookup's result
  program.ops.push_back({static_cast<uint32_t>(dfs::Op::kGetAttr),
                         attr.Encode()});
  dfs::ReadRequest read;
  read.length = 5;
  program.ops.push_back({static_cast<uint32_t>(dfs::Op::kRead),
                         read.Encode()});

  net::Frame response = Raw(dfs::Op::kCompound, program.Encode());
  Result<dfs::CompoundResponse> results =
      dfs::CompoundResponse::Decode(response.payload.span());
  ASSERT_TRUE(results.ok());
  ASSERT_EQ(results->results.size(), 3u);
  EXPECT_EQ(results->results[1].status, 0);
  Result<dfs::GetAttrResponse> attrs =
      dfs::GetAttrResponse::Decode(results->results[1].body.span());
  ASSERT_TRUE(attrs.ok());
  EXPECT_EQ(attrs->attrs.size, 18u);
  Result<dfs::ReadResponse> data =
      dfs::ReadResponse::Decode(results->results[2].body.span());
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->data.ToString(), "hello");
}

TEST_F(CompoundDfsTest, CompoundRejectsNestedAndCallbackOps) {
  for (dfs::Op bad : {dfs::Op::kCompound, dfs::Op::kCbFlushBack}) {
    dfs::CompoundRequest program;
    program.ops.push_back({static_cast<uint32_t>(bad), Buffer()});
    net::Frame response = Raw(dfs::Op::kCompound, program.Encode());
    Result<dfs::CompoundResponse> results =
        dfs::CompoundResponse::Decode(response.payload.span());
    ASSERT_TRUE(results.ok());
    ASSERT_EQ(results->results.size(), 1u);
    EXPECT_EQ(results->results[0].status,
              static_cast<int32_t>(ErrorCode::kInvalidArgument))
        << "op " << static_cast<uint32_t>(bad);
  }
}

TEST_F(CompoundDfsTest, CompoundResolvesDirectories) {
  ASSERT_TRUE(sfs_.root->CreateContext(*Name::Parse("d"), sys_).ok());
  Seed("d/f", "inside");
  dfs::DfsClientOptions options;
  options.compound = true;
  sp<DfsClient> client = MountWith(client_node_, options);
  // The open/getattr/read tail of the program fails on a directory, but
  // the resolve still succeeds from the lookup result alone.
  Result<sp<Object>> dir = client->Resolve(*Name::Parse("d"), sys_);
  ASSERT_TRUE(dir.ok());
  sp<Context> ctx = narrow<Context>(*dir);
  ASSERT_NE(ctx, nullptr);
  Result<std::vector<BindingInfo>> list = ctx->List(sys_);
  ASSERT_TRUE(list.ok());
  ASSERT_EQ(list->size(), 1u);
  EXPECT_EQ((*list)[0].name, "f");
}

// --- delegations ---

dfs::DfsClientOptions DelegatedOptions(bool write = false) {
  dfs::DfsClientOptions options;
  options.compound = true;
  options.delegations = true;
  options.write_delegations = write;
  return options;
}

TEST_F(CompoundDfsTest, DelegationServesReopenStatAndReadWithZeroTrips) {
  Seed("warm", "delegated bytes");
  sp<DfsClient> client = MountWith(client_node_, DelegatedOptions());
  sp<File> file = *ResolveAs<File>(client, "warm", sys_);
  EXPECT_EQ(metrics::StatValue(*client, "delegations_held"), 1u);
  EXPECT_EQ(metrics::StatValue(*server_, "delegations_granted"), 1u);

  // Re-open, stat, length, and a first-page read: ZERO round trips.
  uint64_t before = NetMessages();
  sp<File> again = *ResolveAs<File>(client, "warm", sys_);
  EXPECT_EQ(again.get(), file.get());
  Result<FileAttributes> attrs = file->Stat();
  ASSERT_TRUE(attrs.ok());
  EXPECT_EQ(attrs->size, 15u);
  EXPECT_EQ(*file->GetLength(), 15u);
  Buffer out(9);
  ASSERT_TRUE(file->Read(0, out.mutable_span()).ok());
  EXPECT_EQ(out.ToString(), "delegated");
  EXPECT_EQ(NetMessages(), before)
      << "a delegation-holding client must serve these locally";
  EXPECT_EQ(metrics::StatValue(*client, "local_opens"), 1u);
  EXPECT_EQ(metrics::StatValue(*client, "local_attr_serves"), 2u);
  EXPECT_EQ(metrics::StatValue(*client, "local_read_serves"), 1u);
}

TEST_F(CompoundDfsTest, ConflictingWriteRecallsDelegation) {
  Seed("contested", "v1");
  sp<DfsClient> holder = MountWith(client_node_, DelegatedOptions());
  sp<File> held = *ResolveAs<File>(holder, "contested", sys_);
  ASSERT_TRUE(held->Stat().ok());  // local

  // Another client writes: the server must recall the delegation before
  // applying the write.
  sp<DfsClient> writer = MountWith(client2_node_, dfs::DfsClientOptions{});
  sp<File> their = *ResolveAs<File>(writer, "contested", sys_);
  Buffer v2(std::string("v2!!"));
  ASSERT_TRUE(their->Write(0, v2.span()).ok());
  EXPECT_EQ(metrics::StatValue(*server_, "delegations_recalled"), 1u);
  EXPECT_EQ(metrics::StatValue(*holder, "deleg_recalls"), 1u);

  // The holder's next stat goes to the wire and sees the new size.
  uint64_t before = NetMessages();
  Result<FileAttributes> attrs = held->Stat();
  ASSERT_TRUE(attrs.ok());
  EXPECT_EQ(attrs->size, 4u);
  EXPECT_GT(NetMessages(), before);
}

TEST_F(CompoundDfsTest, WriteDelegationIsExclusive) {
  Seed("solo", "x");
  sp<DfsClient> writer = MountWith(client_node_, DelegatedOptions(true));
  ASSERT_TRUE(ResolveAs<File>(writer, "solo", sys_).ok());
  EXPECT_EQ(metrics::StatValue(*writer, "delegations_held"), 1u);

  // A read-delegation request from another client is denied while the
  // write delegation stands (the open itself still succeeds).
  sp<DfsClient> reader = MountWith(client2_node_, DelegatedOptions());
  ASSERT_TRUE(ResolveAs<File>(reader, "solo", sys_).ok());
  EXPECT_EQ(metrics::StatValue(*reader, "delegations_held"), 0u);
  EXPECT_EQ(metrics::StatValue(*server_, "delegations_granted"), 1u);
}

TEST_F(CompoundDfsTest, WriteDelegationBuffersSetTimesAndReturnsOnSync) {
  Seed("times", "x");
  sp<DfsClient> client = MountWith(client_node_, DelegatedOptions(true));
  sp<File> file = *ResolveAs<File>(client, "times", sys_);

  // SetTimes under a write delegation: zero round trips.
  uint64_t before = NetMessages();
  ASSERT_TRUE(file->SetTimes(111, 222).ok());
  EXPECT_EQ(NetMessages(), before);
  // And the local attr cache reflects it.
  Result<FileAttributes> attrs = file->Stat();
  ASSERT_TRUE(attrs.ok());
  EXPECT_EQ(attrs->atime_ns, 111u);

  // SyncFile voluntarily returns the delegation, carrying the times.
  ASSERT_TRUE(file->SyncFile().ok());
  EXPECT_EQ(metrics::StatValue(*client, "deleg_returns"), 1u);
  EXPECT_EQ(metrics::StatValue(*server_, "delegations_returned"), 1u);
  Result<FileAttributes> below =
      (*ResolveAs<File>(sfs_.root, "times", sys_))->Stat();
  ASSERT_TRUE(below.ok());
  EXPECT_EQ(below->atime_ns, 111u);
  EXPECT_EQ(below->mtime_ns, 222u);
}

TEST_F(CompoundDfsTest, RecallShipsBufferedTimesToTheConflictingReader) {
  Seed("shipit", "x");
  sp<DfsClient> holder = MountWith(client_node_, DelegatedOptions(true));
  sp<File> held = *ResolveAs<File>(holder, "shipit", sys_);
  ASSERT_TRUE(held->SetTimes(333, 444).ok());  // buffered locally

  // A reader's stat recalls the write delegation; the recall response
  // carries the buffered times, which the server applies before answering.
  sp<DfsClient> reader = MountWith(client2_node_, dfs::DfsClientOptions{});
  sp<File> their = *ResolveAs<File>(reader, "shipit", sys_);
  Result<FileAttributes> attrs = their->Stat();
  ASSERT_TRUE(attrs.ok());
  EXPECT_EQ(attrs->atime_ns, 333u);
  EXPECT_EQ(attrs->mtime_ns, 444u);
  EXPECT_EQ(metrics::StatValue(*server_, "delegations_recalled"), 1u);
}

TEST_F(CompoundDfsTest, DelegationExpiresAtItsAbsoluteDeadline) {
  Seed("lapse", "x");
  sp<DfsClient> client = MountWith(client_node_, DelegatedOptions());
  sp<File> file = *ResolveAs<File>(client, "lapse", sys_);
  ASSERT_TRUE(file->Stat().ok());  // local while valid

  clock_.Advance(31'000'000'000);  // past the 30s default lease

  // The client stops serving locally (lazy expiry) ...
  uint64_t before = NetMessages();
  ASSERT_TRUE(file->Stat().ok());
  EXPECT_GT(NetMessages(), before);
  // ... and the server prunes the lapsed delegation on its next conflict
  // scan rather than recalling a dead claim.
  EXPECT_EQ(metrics::StatValue(*server_, "delegations_expired"), 1u);
  EXPECT_EQ(metrics::StatValue(*server_, "delegations_recalled"), 0u);
}

TEST_F(CompoundDfsTest, StaleDelegReturnIsFencedByIncarnation) {
  Seed("fenced", "x");
  // Find the real handle with a raw lookup, then return a delegation that
  // was never granted: the server must fence it, not crash or corrupt.
  dfs::PathRequest lookup;
  lookup.path = "fenced";
  net::Frame looked = Raw(dfs::Op::kLookup, lookup.Encode());
  Result<dfs::LookupResponse> handle =
      dfs::LookupResponse::Decode(looked.payload.span());
  ASSERT_TRUE(handle.ok());

  dfs::DelegReturnRequest bogus;
  bogus.handle = handle->handle;
  bogus.deleg_id = 424242;
  bogus.incarnation = 7;
  net::Frame response = Raw(dfs::Op::kDelegReturn, bogus.Encode());
  EXPECT_TRUE(response.ToStatus().ok()) << "fenced returns answer OK";
  EXPECT_EQ(metrics::StatValue(*server_, "deleg_fenced"), 1u);
  EXPECT_EQ(metrics::StatValue(*server_, "delegations_returned"), 0u);
}

TEST_F(CompoundDfsTest, GracePeriodBouncesMutationsUntilLeasesLapse) {
  Seed("reborn", "pre-restart");
  // Restart the service with a grace period covering the old lease span.
  dfs::DfsServerOptions graced;
  graced.grace_ns = 10'000'000;
  sp<DfsServer> successor = *DfsServer::Create(
      server_node_, network_.get(), "dfs", sfs_.root, &clock_, graced);

  sp<DfsClient> client = MountWith(client_node_, dfs::DfsClientOptions{});
  sp<File> file = *ResolveAs<File>(client, "reborn", sys_);
  // Reads pass during grace.
  Buffer out(3);
  ASSERT_TRUE(file->Read(0, out.mutable_span()).ok());
  EXPECT_EQ(out.ToString(), "pre");
  // A mutation is bounced with a transient error; the client's retry
  // backoff (slept on the shared clock) carries it past the grace window.
  Buffer data(std::string("post-grace!!"));
  Result<size_t> wrote = file->Write(0, data.span());
  ASSERT_TRUE(wrote.ok()) << wrote.status().ToString();
  EXPECT_GT(metrics::StatValue(*successor, "grace_rejects"), 0u);
  Buffer check(12);
  ASSERT_TRUE(file->Read(0, check.mutable_span()).ok());
  EXPECT_EQ(check.ToString(), "post-grace!!");
}

TEST_F(CompoundDfsTest, DelegationsSurviveMappedCoherencyTraffic) {
  // A delegation and a VMM mapping on the same file: the page-cache
  // engine (remote_caches) and the delegation engine must not trample
  // each other, and the server invariants must hold throughout.
  Seed("both", "mapped and delegated");
  sp<DfsClient> holder = MountWith(client_node_, DelegatedOptions());
  sp<File> held = *ResolveAs<File>(holder, "both", sys_);
  ASSERT_TRUE(held->Stat().ok());

  sp<DfsClient> mapper = MountWith(client2_node_, dfs::DfsClientOptions{});
  sp<Vmm> vmm = Vmm::Create(client2_node_->domain(), "vmm2");
  sp<File> their = *ResolveAs<File>(mapper, "both", sys_);
  sp<MappedRegion> region = *vmm->Map(their, AccessRights::kReadWrite);
  Buffer tag(std::string("MAPW"));
  ASSERT_TRUE(region->Write(0, tag.span()).ok());
  ASSERT_TRUE(region->Sync().ok());
  // The mapped write-access fault recalled the read delegation.
  EXPECT_EQ(metrics::StatValue(*server_, "delegations_recalled"), 1u);
  EXPECT_TRUE(server_->CheckCoherencyInvariants());

  // The ex-holder sees the mapped write.
  Buffer out(4);
  ASSERT_TRUE(held->Read(0, out.mutable_span()).ok());
  EXPECT_EQ(out.ToString(), "MAPW");
}

}  // namespace
}  // namespace springfs
