// Crash-consistency property suite for the UFS write-ahead journal.
//
// The harness runs a seeded random workload against a journaled UFS on a
// FaultyBlockDevice, replays the identical workload with a CrashPlan armed
// to "lose power" at a seeded-random device write, then recovers: discard
// the dead mount, clear the crash, remount (which replays the journal), and
// assert that (a) the fsck-style checker finds a clean file system and
// (b) the recovered state is byte-identical to the workload model at the
// transaction the journal says survived. Every failure prints its seed; a
// failing run is reproducible from that seed alone.
//
// A control suite formats without the journal and asserts the same harness
// detects corruption — proof the crash model has teeth.

#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <set>
#include <string>

#include "src/blockdev/block_device.h"
#include "src/blockdev/decorators.h"
#include "src/obs/flight_recorder.h"
#include "src/support/rng.h"
#include "src/ufs/checker.h"
#include "src/ufs/journal.h"
#include "src/ufs/ufs.h"

namespace springfs {
namespace {

using ufs::kBlockSize;
using ufs::kRootInode;

constexpr uint64_t kDevBlocks = 1024;
constexpr int kSteps = 60;

// name -> file content; the workload's in-memory truth.
using Model = std::map<std::string, Buffer>;

std::unique_ptr<FaultyBlockDevice> MakeDevice() {
  return std::make_unique<FaultyBlockDevice>(
      std::make_unique<MemBlockDevice>(kBlockSize, kDevBlocks));
}

void ModelWrite(Model& model, const std::string& name, uint64_t offset,
                ByteSpan data) {
  Buffer& content = model[name];
  if (content.size() < offset + data.size()) {
    content.resize(offset + data.size());  // zero-fill, like a file hole
  }
  content.WriteAt(offset, data);
}

// Runs the seeded workload. Snapshots the model keyed by the journal
// transaction that persists it: before each Sync the upcoming transaction
// id is last_committed_tx() + 1. Returns false when the device crashed
// mid-workload (the armed run); the dry run always returns true.
bool RunWorkload(ufs::Ufs* fs, uint64_t seed,
                 std::map<uint64_t, Model>* snapshots) {
  Rng rng(seed);
  Model model;
  if (snapshots != nullptr) {
    (*snapshots)[fs->last_committed_tx()] = model;  // post-format state
  }
  int next_file = 0;
  std::vector<std::string> names;
  for (int step = 0; step < kSteps; ++step) {
    uint64_t dice = rng.Below(100);
    if (dice < 25 || names.empty()) {
      std::string name = "f" + std::to_string(next_file++);
      if (!fs->Create(kRootInode, name, ufs::FileType::kRegular).ok()) {
        return false;
      }
      names.push_back(name);
      model[name] = Buffer();
    } else if (dice < 60) {
      const std::string& name = names[rng.Below(names.size())];
      uint64_t offset = rng.Below(4 * kBlockSize);
      Buffer data(rng.Range(1, 2 * kBlockSize));
      rng.Fill(data.mutable_span());
      ufs::InodeNum ino = 0;
      {
        auto looked = fs->Lookup(kRootInode, name);
        if (!looked.ok()) {
          return false;
        }
        ino = *looked;
      }
      if (!fs->Write(ino, offset, data.span()).ok()) {
        return false;
      }
      ModelWrite(model, name, offset, data.span());
    } else if (dice < 70) {
      const std::string& name = names[rng.Below(names.size())];
      auto looked = fs->Lookup(kRootInode, name);
      if (!looked.ok()) {
        return false;
      }
      uint64_t new_size = rng.Below(3 * kBlockSize);
      if (!fs->Truncate(*looked, new_size).ok()) {
        return false;
      }
      model[name].resize(new_size);
    } else if (dice < 80) {
      size_t pick = rng.Below(names.size());
      std::string name = names[pick];
      if (!fs->Remove(kRootInode, name).ok()) {
        return false;
      }
      names.erase(names.begin() + pick);
      model.erase(name);
    } else {
      if (snapshots != nullptr) {
        (*snapshots)[fs->last_committed_tx() + 1] = model;
      }
      if (!fs->Sync().ok()) {
        return false;
      }
    }
  }
  if (snapshots != nullptr) {
    (*snapshots)[fs->last_committed_tx() + 1] = model;
  }
  return fs->Sync().ok();
}

// Phase one of the harness: run the workload unarmed and count the device
// writes it performs after format, so the crash point can be placed
// uniformly among them.
uint64_t CountWorkloadWrites(uint64_t seed, bool journal) {
  auto device = MakeDevice();
  auto fs = ufs::Ufs::Format(device.get(), &DefaultClock(),
                             ufs::FormatOptions{journal});
  EXPECT_TRUE(fs.ok());
  if (!fs.ok()) {
    return 0;
  }
  uint64_t before = device->stats().writes;
  EXPECT_TRUE(RunWorkload(fs->get(), seed, nullptr));
  EXPECT_EQ(metrics::StatValue(**fs, "journal_overflow_syncs"), 0u);
  uint64_t writes = device->stats().writes - before;
  (*fs)->Abandon();  // already synced; skip the unmount sync
  return writes;
}

// Verifies the recovered file system matches `want` exactly: same directory
// listing, same sizes, same bytes.
void ExpectMatchesModel(ufs::Ufs* fs, const Model& want) {
  auto listing = fs->ReadDir(kRootInode);
  ASSERT_TRUE(listing.ok()) << listing.status().ToString();
  std::set<std::string> got_names;
  for (const auto& entry : *listing) {
    got_names.insert(entry.name);
  }
  std::set<std::string> want_names;
  for (const auto& [name, content] : want) {
    want_names.insert(name);
  }
  EXPECT_EQ(got_names, want_names);
  for (const auto& [name, content] : want) {
    auto looked = fs->Lookup(kRootInode, name);
    ASSERT_TRUE(looked.ok()) << "lost file " << name;
    auto attrs = fs->GetAttrs(*looked);
    ASSERT_TRUE(attrs.ok());
    ASSERT_EQ(attrs->size, content.size()) << "size of " << name;
    Buffer got(content.size());
    auto n = fs->Read(*looked, 0, got.mutable_span());
    ASSERT_TRUE(n.ok()) << n.status().ToString();
    ASSERT_EQ(*n, content.size());
    EXPECT_TRUE(got == content) << "content of " << name;
  }
}

// One full crash/recovery property check for one seed.
void RunCrashSeed(uint64_t seed) {
  // Per-seed black box (see tests/chaos_dfs_test.cpp): a failure dump below
  // then shows only this seed's journal/crash events.
  flight::Clear();
  SCOPED_TRACE("seed=" + std::to_string(seed));
  uint64_t writes = CountWorkloadWrites(seed, /*journal=*/true);
  ASSERT_GT(writes, 0u);

  Rng pick(seed ^ 0xC0FFEE);
  CrashPlan plan;
  plan.crash_after_writes = pick.Range(1, writes);
  plan.seed = seed;

  auto device = MakeDevice();
  auto formatted = ufs::Ufs::Format(device.get());
  ASSERT_TRUE(formatted.ok());
  std::map<uint64_t, Model> snapshots;
  device->ArmCrash(plan);
  bool completed = RunWorkload(formatted->get(), seed, &snapshots);
  ASSERT_FALSE(completed) << "workload survived the planned crash";
  ASSERT_TRUE(device->crashed());

  // Abandon the dead mount, restore power, and remount: Mount replays the
  // journal's last committed transaction.
  (*formatted)->Abandon();
  formatted->reset();
  device->RecoverAfterCrash();
  auto recovered = ufs::Ufs::Mount(device.get());
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();

  // (a) fsck-clean at the crash point.
  ufs::Checker checker(device.get());
  auto report = checker.Check();
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->clean()) << report->Summary();

  // (b) the recovered image is exactly the model at the surviving
  // transaction — no torn syncs, no lost synced data.
  uint64_t tx = (*recovered)->last_committed_tx();
  auto snap = snapshots.find(tx);
  ASSERT_TRUE(snap != snapshots.end())
      << "recovered tx " << tx << " matches no pre-crash sync";
  ExpectMatchesModel(recovered->get(), snap->second);

  // The recovered file system is writable and stays clean.
  ASSERT_TRUE((*recovered)->Create(kRootInode, "post-crash",
                                   ufs::FileType::kRegular).ok());
  ASSERT_TRUE((*recovered)->Sync().ok());
  auto report2 = checker.Check();
  ASSERT_TRUE(report2.ok());
  EXPECT_TRUE(report2->clean()) << report2->Summary();
}

// The same crash applied to a journal-less format: returns true when the
// harness catches the damage (unmountable image or checker errors).
bool CrashWithoutJournalIsDetected(uint64_t seed) {
  uint64_t writes = CountWorkloadWrites(seed, /*journal=*/false);
  if (writes == 0) {
    return false;
  }
  Rng pick(seed ^ 0xC0FFEE);
  CrashPlan plan;
  plan.crash_after_writes = pick.Range(1, writes);
  plan.seed = seed;

  auto device = MakeDevice();
  auto formatted = ufs::Ufs::Format(device.get(), &DefaultClock(),
                                    ufs::FormatOptions{/*journal=*/false});
  EXPECT_TRUE(formatted.ok());
  device->ArmCrash(plan);
  (void)RunWorkload(formatted->get(), seed, nullptr);
  (*formatted)->Abandon();
  formatted->reset();
  device->RecoverAfterCrash();

  auto recovered = ufs::Ufs::Mount(device.get());
  if (!recovered.ok()) {
    return true;  // superblock torn beyond recognition
  }
  ufs::Checker checker(device.get());
  auto report = checker.Check();
  return !report.ok() || !report->clean();
}

// --- Journal unit tests ---

TEST(Journal, CommitThenReplayRestoresHomes) {
  MemBlockDevice device(kBlockSize, 64);
  uint64_t jnl_start = 48;
  ufs::Journal journal(&device, jnl_start);

  std::map<BlockNum, Buffer> tx;
  Rng rng(7);
  for (BlockNum b : {5u, 9u, 17u}) {
    Buffer content(kBlockSize);
    rng.Fill(content.mutable_span());
    ASSERT_TRUE(device.WriteBlock(b, content.span()).ok());
    tx[b] = std::move(content);
  }
  ASSERT_TRUE(journal.Commit(3, tx).ok());

  // Scribble over the home locations, as a crash mid-checkpoint would.
  Buffer junk(kBlockSize);
  rng.Fill(junk.mutable_span());
  for (const auto& [b, content] : tx) {
    ASSERT_TRUE(device.WriteBlock(b, junk.span()).ok());
  }

  auto report = ufs::Journal::Replay(&device);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->tx_id, 3u);
  EXPECT_EQ(report->blocks_replayed, 3u);
  Buffer got(kBlockSize);
  for (const auto& [b, content] : tx) {
    ASSERT_TRUE(device.ReadBlock(b, got.mutable_span()).ok());
    EXPECT_TRUE(got == content) << "home block " << b;
  }

  // Replay is idempotent.
  auto again = ufs::Journal::Replay(&device);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->tx_id, 3u);
}

TEST(Journal, TornPayloadInvalidatesWholeTransaction) {
  MemBlockDevice device(kBlockSize, 64);
  ufs::Journal journal(&device, 48);
  std::map<BlockNum, Buffer> tx;
  Buffer content(kBlockSize);
  Rng rng(11);
  rng.Fill(content.mutable_span());
  tx[5] = content;
  ASSERT_TRUE(journal.Commit(1, tx).ok());

  // Flip one byte of the journaled payload: the commit record still
  // verifies, but the record CRC must not, so nothing is replayed.
  uint64_t payload_block = 64 - 2 - tx.size();
  Buffer payload(kBlockSize);
  ASSERT_TRUE(device.ReadBlock(payload_block, payload.mutable_span()).ok());
  payload.data()[100] ^= 0xFF;
  ASSERT_TRUE(device.WriteBlock(payload_block, payload.span()).ok());

  Buffer junk(kBlockSize);
  rng.Fill(junk.mutable_span());
  ASSERT_TRUE(device.WriteBlock(5, junk.span()).ok());
  auto report = ufs::Journal::Replay(&device);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->tx_id, 0u);
  Buffer got(kBlockSize);
  ASSERT_TRUE(device.ReadBlock(5, got.mutable_span()).ok());
  EXPECT_TRUE(got == junk);  // home untouched
}

TEST(Journal, EmptyDeviceTailReplaysNothing) {
  MemBlockDevice device(kBlockSize, 64);
  auto report = ufs::Journal::Replay(&device);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->tx_id, 0u);
  EXPECT_EQ(report->blocks_replayed, 0u);
}

TEST(Journal, FitsAccountsForDescriptorsAndCommit) {
  MemBlockDevice device(kBlockSize, 64);
  ufs::Journal journal(&device, 52);  // 12 journal blocks
  // 1 commit + 1 descriptor block covers up to 10 payloads.
  EXPECT_TRUE(journal.Fits(10));
  EXPECT_FALSE(journal.Fits(11));
  std::map<BlockNum, Buffer> too_big;
  for (BlockNum b = 1; b <= 11; ++b) {
    too_big[b] = Buffer(kBlockSize);
  }
  EXPECT_EQ(journal.Commit(1, too_big).code(), ErrorCode::kNoSpace);
}

// --- CrashPlan unit tests ---

TEST(CrashPlan, ArmedDeviceBuffersWritesUntilFlush) {
  auto device = MakeDevice();
  Buffer data(kBlockSize);
  data.data()[0] = 0xAB;
  device->ArmCrash(CrashPlan{/*crash_after_writes=*/100, /*seed=*/1});
  ASSERT_TRUE(device->WriteBlock(3, data.span()).ok());
  EXPECT_EQ(device->stats().writes, 0u);  // cached, not on the platter

  Buffer got(kBlockSize);
  ASSERT_TRUE(device->ReadBlock(3, got.mutable_span()).ok());
  EXPECT_TRUE(got == data);  // reads see the cache

  ASSERT_TRUE(device->Flush().ok());
  EXPECT_EQ(device->stats().writes, 1u);  // flush made it durable
}

TEST(CrashPlan, CrashFailsEverythingUntilRecovered) {
  auto device = MakeDevice();
  Buffer data(kBlockSize);
  device->ArmCrash(CrashPlan{/*crash_after_writes=*/2, /*seed=*/1});
  ASSERT_TRUE(device->WriteBlock(3, data.span()).ok());
  EXPECT_EQ(device->WriteBlock(4, data.span()).code(), ErrorCode::kIoError);
  EXPECT_TRUE(device->crashed());
  Buffer got(kBlockSize);
  EXPECT_EQ(device->ReadBlock(3, got.mutable_span()).code(),
            ErrorCode::kIoError);
  EXPECT_EQ(device->Flush().code(), ErrorCode::kIoError);
  EXPECT_GE(device->stats().write_errors, 1u);

  device->RecoverAfterCrash();
  EXPECT_FALSE(device->crashed());
  ASSERT_TRUE(device->ReadBlock(3, got.mutable_span()).ok());
  ASSERT_TRUE(device->WriteBlock(3, data.span()).ok());
}

TEST(CrashPlan, OutcomeIsDeterministicPerSeed) {
  // Two identical runs with the same plan leave identical durable images.
  auto image_after_crash = [](uint64_t seed) {
    auto device = MakeDevice();
    Rng rng(42);  // workload rng fixed; plan seed varies
    device->ArmCrash(CrashPlan{/*crash_after_writes=*/6, seed});
    Buffer data(kBlockSize);
    for (BlockNum b = 1; b <= 6; ++b) {
      rng.Fill(data.mutable_span());
      (void)device->WriteBlock(b, data.span());
    }
    device->RecoverAfterCrash();
    Buffer image;
    Buffer block(kBlockSize);
    for (BlockNum b = 1; b <= 6; ++b) {
      EXPECT_TRUE(device->ReadBlock(b, block.mutable_span()).ok());
      image.append(block.span());
    }
    return image;
  };
  Buffer first = image_after_crash(123);
  Buffer second = image_after_crash(123);
  EXPECT_TRUE(first == second);
  // And a different seed chooses a different survivor set (overwhelmingly).
  Buffer third = image_after_crash(456);
  EXPECT_FALSE(first == third);
}

// --- Journal-through-Ufs integration ---

TEST(CrashRecovery, FormatReservesJournalAndMountReplays) {
  auto device = MakeDevice();
  auto fs = ufs::Ufs::Format(device.get());
  ASSERT_TRUE(fs.ok());
  EXPECT_TRUE((*fs)->journaled());
  const ufs::Superblock& sb = (*fs)->superblock();
  EXPECT_GT(sb.jnl_blocks, 0u);
  EXPECT_EQ(sb.jnl_start(), kDevBlocks - sb.jnl_blocks);
  EXPECT_EQ((*fs)->last_committed_tx(), 1u);  // the format sync

  ASSERT_TRUE((*fs)->Create(kRootInode, "a", ufs::FileType::kRegular).ok());
  ASSERT_TRUE((*fs)->Sync().ok());
  EXPECT_EQ((*fs)->last_committed_tx(), 2u);
  EXPECT_GE(metrics::StatValue(**fs, "journal_commits"), 2u);
  (*fs)->Abandon();
  fs->reset();

  auto again = ufs::Ufs::Mount(device.get());
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE((*again)->journaled());
  EXPECT_EQ((*again)->last_committed_tx(), 2u);
  EXPECT_TRUE((*again)->Lookup(kRootInode, "a").ok());
  (*again)->Abandon();
}

TEST(CrashRecovery, JournalOffFormatStillWorks) {
  auto device = MakeDevice();
  auto fs = ufs::Ufs::Format(device.get(), &DefaultClock(),
                             ufs::FormatOptions{/*journal=*/false});
  ASSERT_TRUE(fs.ok());
  EXPECT_FALSE((*fs)->journaled());
  EXPECT_EQ((*fs)->superblock().jnl_blocks, 0u);
  ASSERT_TRUE((*fs)->Create(kRootInode, "a", ufs::FileType::kRegular).ok());
  ASSERT_TRUE((*fs)->Sync().ok());
  ufs::Checker checker(device.get());
  auto report = checker.Check();
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->clean()) << report->Summary();
}

// --- The crash/recovery property suite: >= 200 seeded crash points ---

// On the first failing seed, print the flight recorder (journal commits,
// replay decisions, injected crash point) and save it for CI upload.
void RunCrashShard(uint64_t first_seed) {
  bool dumped = false;
  for (uint64_t seed = first_seed; seed < first_seed + 55; ++seed) {
    RunCrashSeed(seed);
    if (!dumped && ::testing::Test::HasFailure()) {
      dumped = true;
      std::string header = "crash seed=" + std::to_string(seed);
      std::fprintf(stderr,
                   "=== flight recorder (%s, last 64 events) ===\n%s",
                   header.c_str(), flight::Dump(64).c_str());
      flight::DumpToArtifact("crash", header);
    }
    if (::testing::Test::HasFatalFailure()) {
      return;
    }
  }
}

TEST(CrashRecovery, SeededCrashPointsShard0) { RunCrashShard(1000); }
TEST(CrashRecovery, SeededCrashPointsShard1) { RunCrashShard(2000); }
TEST(CrashRecovery, SeededCrashPointsShard2) { RunCrashShard(3000); }
TEST(CrashRecovery, SeededCrashPointsShard3) { RunCrashShard(4000); }

// Control: with the journal disabled the same crashes corrupt the file
// system and the harness notices — i.e. the property suite above is not
// vacuously green.
TEST(CrashRecovery, WithoutJournalHarnessDetectsCorruption) {
  int detected = 0;
  constexpr int kSeeds = 40;
  for (uint64_t seed = 5000; seed < 5000 + kSeeds; ++seed) {
    detected += CrashWithoutJournalIsDetected(seed) ? 1 : 0;
  }
  EXPECT_GE(detected, 1) << "no crash corrupted a journal-less fs in "
                         << kSeeds << " seeds; the harness has no teeth";
}

}  // namespace
}  // namespace springfs
