// Tests for the encryption layer (CRYPTFS) and the pass-through layer
// (PASSFS), both built on the coherency layer's transform hooks.

#include <gtest/gtest.h>

#include "src/layers/cryptfs/crypt_layer.h"
#include "src/layers/passfs/pass_layer.h"
#include "src/layers/sfs/sfs.h"
#include "src/support/rng.h"
#include "src/vmm/vmm.h"

namespace springfs {
namespace {

struct CryptStack {
  std::unique_ptr<MemBlockDevice> device;
  Sfs sfs;
  sp<CryptLayer> cryptfs;
};

CryptStack MakeCryptStack(FakeClock* clock, const std::string& passphrase) {
  CryptStack stack;
  stack.device = std::make_unique<MemBlockDevice>(ufs::kBlockSize, 8192);
  stack.sfs = *CreateSfs(stack.device.get(), SfsOptions{}, clock);
  stack.cryptfs =
      CryptLayer::Create(Domain::Create("cryptfs"), passphrase, {}, clock);
  SPRINGFS_CHECK(stack.cryptfs->StackOn(stack.sfs.root).ok());
  return stack;
}

class CryptfsTest : public ::testing::Test {
 protected:
  void SetUp() override { stack_ = MakeCryptStack(&clock_, "hunter2"); }

  Credentials sys_ = Credentials::System();
  FakeClock clock_;
  CryptStack stack_;
};

TEST_F(CryptfsTest, PlaintextRoundTrip) {
  sp<File> file = *stack_.cryptfs->CreateFile(*Name::Parse("secret"), sys_);
  Buffer data(std::string("attack at dawn"));
  ASSERT_TRUE(file->Write(0, data.span()).ok());
  ASSERT_TRUE(file->SyncFile().ok());
  Buffer out(data.size());
  EXPECT_EQ(*file->Read(0, out.mutable_span()), data.size());
  EXPECT_EQ(out.ToString(), "attack at dawn");
}

TEST_F(CryptfsTest, UnderlyingFileHoldsCiphertext) {
  sp<File> file = *stack_.cryptfs->CreateFile(*Name::Parse("secret"), sys_);
  Buffer data(std::string("attack at dawn"));
  ASSERT_TRUE(file->Write(0, data.span()).ok());
  ASSERT_TRUE(file->SyncFile().ok());

  // Direct access to the underlying SFS file reads ciphertext (the
  // administrative-exposure point of section 4.2.1).
  sp<File> under = *ResolveAs<File>(stack_.sfs.root, "secret", sys_);
  Buffer raw(data.size());
  ASSERT_TRUE(under->Read(0, raw.mutable_span()).ok());
  EXPECT_NE(raw.ToString(), "attack at dawn");
  EXPECT_NE(raw.ToString().find('\0') == std::string::npos &&
                raw.ToString() == data.ToString(),
            true);
}

TEST_F(CryptfsTest, WrongPassphraseYieldsGarbage) {
  {
    sp<File> file = *stack_.cryptfs->CreateFile(*Name::Parse("s"), sys_);
    Buffer data(std::string("the real content."));
    ASSERT_TRUE(file->Write(0, data.span()).ok());
    ASSERT_TRUE(file->SyncFile().ok());
  }
  sp<CryptLayer> wrong =
      CryptLayer::Create(Domain::Create("crypt-wrong"), "password1", {},
                         &clock_);
  ASSERT_TRUE(wrong->StackOn(stack_.sfs.root).ok());
  Result<sp<File>> file = ResolveAs<File>(wrong, "s", sys_);
  ASSERT_TRUE(file.ok());
  Buffer out(17);
  ASSERT_TRUE((*file)->Read(0, out.mutable_span()).ok());
  EXPECT_NE(out.ToString(), "the real content.");
}

TEST_F(CryptfsTest, RightPassphraseAfterRemount) {
  {
    sp<File> file = *stack_.cryptfs->CreateFile(*Name::Parse("s"), sys_);
    Buffer data(std::string("survives remount"));
    ASSERT_TRUE(file->Write(0, data.span()).ok());
    ASSERT_TRUE(file->SyncFile().ok());
  }
  sp<CryptLayer> fresh = CryptLayer::Create(Domain::Create("crypt2"),
                                            "hunter2", {}, &clock_);
  ASSERT_TRUE(fresh->StackOn(stack_.sfs.root).ok());
  sp<File> file = *ResolveAs<File>(fresh, "s", sys_);
  Buffer out(16);
  ASSERT_TRUE(file->Read(0, out.mutable_span()).ok());
  EXPECT_EQ(out.ToString(), "survives remount");
}

TEST_F(CryptfsTest, MappedClientsSeePlaintextCoherently) {
  sp<File> file = *stack_.cryptfs->CreateFile(*Name::Parse("m"), sys_);
  ASSERT_TRUE(file->SetLength(kPageSize).ok());
  sp<Vmm> vmm1 = Vmm::Create(Domain::Create("n1"), "vmm1");
  sp<Vmm> vmm2 = Vmm::Create(Domain::Create("n2"), "vmm2");
  sp<MappedRegion> w = *vmm1->Map(file, AccessRights::kReadWrite);
  sp<MappedRegion> r = *vmm2->Map(file, AccessRights::kReadOnly);
  Buffer data(std::string("plain"));
  ASSERT_TRUE(w->Write(0, data.span()).ok());
  Buffer out(5);
  ASSERT_TRUE(r->Read(0, out.mutable_span()).ok());
  EXPECT_EQ(out.ToString(), "plain");
}

TEST_F(CryptfsTest, LargeRandomRoundTrip) {
  sp<File> file = *stack_.cryptfs->CreateFile(*Name::Parse("big"), sys_);
  Rng rng(11);
  Buffer data = rng.RandomBuffer(10 * kPageSize + 123);
  ASSERT_TRUE(file->Write(0, data.span()).ok());
  ASSERT_TRUE(file->SyncFile().ok());
  // Re-read through a fresh layer instance (forces decryption from disk).
  sp<CryptLayer> fresh = CryptLayer::Create(Domain::Create("crypt3"),
                                            "hunter2", {}, &clock_);
  ASSERT_TRUE(fresh->StackOn(stack_.sfs.root).ok());
  sp<File> again = *ResolveAs<File>(fresh, "big", sys_);
  Buffer out(data.size());
  ASSERT_TRUE(again->Read(0, out.mutable_span()).ok());
  EXPECT_EQ(Fnv1a64(out.span()), Fnv1a64(data.span()));
}

TEST_F(CryptfsTest, FsInfoNamesTheLayer) {
  Result<FsInfo> info = stack_.cryptfs->GetFsInfo();
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->type, "cryptfs(coherency(disk))");
  EXPECT_EQ(info->stack_depth, 3u);
}

// --- PASSFS ---

class PassfsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    device_ = std::make_unique<MemBlockDevice>(ufs::kBlockSize, 8192);
    sfs_ = *CreateSfs(device_.get(), SfsOptions{}, &clock_);
    passfs_ = PassLayer::Create(Domain::Create("passfs"), {}, 0, &clock_);
    ASSERT_TRUE(passfs_->StackOn(sfs_.root).ok());
  }

  Credentials sys_ = Credentials::System();
  FakeClock clock_;
  std::unique_ptr<MemBlockDevice> device_;
  Sfs sfs_;
  sp<PassLayer> passfs_;
};

TEST_F(PassfsTest, TransparentPassThrough) {
  sp<File> file = *passfs_->CreateFile(*Name::Parse("f"), sys_);
  Buffer data(std::string("unchanged"));
  ASSERT_TRUE(file->Write(0, data.span()).ok());
  ASSERT_TRUE(file->SyncFile().ok());
  // The underlying bytes are identical (identity transform).
  sp<File> under = *ResolveAs<File>(sfs_.root, "f", sys_);
  Buffer raw(9);
  ASSERT_TRUE(under->Read(0, raw.mutable_span()).ok());
  EXPECT_EQ(raw.ToString(), "unchanged");
}

TEST_F(PassfsTest, CountsTransitPages) {
  sp<File> file = *passfs_->CreateFile(*Name::Parse("f"), sys_);
  Rng rng(12);
  Buffer data = rng.RandomBuffer(3 * kPageSize);
  ASSERT_TRUE(file->Write(0, data.span()).ok());
  ASSERT_TRUE(file->SyncFile().ok());
  PassLayerCounters counters = passfs_->counters();
  EXPECT_GE(counters.pages_encoded, 3u);
}

TEST_F(PassfsTest, InjectedTransitFaultPropagates) {
  sp<File> file = *passfs_->CreateFile(*Name::Parse("f"), sys_);
  Buffer data(std::string("will fail to sync"));
  ASSERT_TRUE(file->Write(0, data.span()).ok());
  passfs_->set_fail_transit(true);
  EXPECT_EQ(file->SyncFile().code(), ErrorCode::kIoError);
  passfs_->set_fail_transit(false);
  EXPECT_TRUE(file->SyncFile().ok());
}

TEST_F(PassfsTest, DeepStackStillCorrect) {
  // passfs on passfs on passfs on SFS: content survives any depth.
  sp<PassLayer> l2 = PassLayer::Create(Domain::Create("p2"), {}, 0, &clock_);
  ASSERT_TRUE(l2->StackOn(passfs_).ok());
  sp<PassLayer> l3 = PassLayer::Create(Domain::Create("p3"), {}, 0, &clock_);
  ASSERT_TRUE(l3->StackOn(l2).ok());

  sp<File> file = *l3->CreateFile(*Name::Parse("deep"), sys_);
  Rng rng(13);
  Buffer data = rng.RandomBuffer(2 * kPageSize + 17);
  ASSERT_TRUE(file->Write(0, data.span()).ok());
  ASSERT_TRUE(l3->SyncFs().ok());
  Buffer out(data.size());
  ASSERT_TRUE(file->Read(0, out.mutable_span()).ok());
  EXPECT_EQ(out, data);

  Result<FsInfo> info = l3->GetFsInfo();
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->stack_depth, 5u);
  EXPECT_EQ(info->type, "passfs(passfs(passfs(coherency(disk))))");

  // And the content is readable straight from the disk layer after sync.
  sp<File> bottom = *ResolveAs<File>(sfs_.root, "deep", sys_);
  Buffer raw(data.size());
  ASSERT_TRUE(bottom->Read(0, raw.mutable_span()).ok());
  EXPECT_EQ(raw, data);
}

TEST_F(PassfsTest, CryptoOnCompressionStyleStacking) {
  // cryptfs on passfs on SFS — arbitrary composition works (Figure 3).
  sp<CryptLayer> crypt =
      CryptLayer::Create(Domain::Create("c"), "key", {}, &clock_);
  ASSERT_TRUE(crypt->StackOn(passfs_).ok());
  sp<File> file = *crypt->CreateFile(*Name::Parse("x"), sys_);
  Buffer data(std::string("layer lasagna"));
  ASSERT_TRUE(file->Write(0, data.span()).ok());
  ASSERT_TRUE(crypt->SyncFs().ok());
  Buffer out(13);
  ASSERT_TRUE(file->Read(0, out.mutable_span()).ok());
  EXPECT_EQ(out.ToString(), "layer lasagna");
  // Below the crypt layer it is ciphertext.
  sp<File> below = *ResolveAs<File>(passfs_, "x", sys_);
  Buffer raw(13);
  ASSERT_TRUE(below->Read(0, raw.mutable_span()).ok());
  EXPECT_NE(raw.ToString(), "layer lasagna");
}

}  // namespace
}  // namespace springfs
