// Tests for the network fabric, the DFS server/client (Figures 7 and 9),
// and CFS attribute caching: remote access, local-bind forwarding, cross-
// node coherency, callbacks, partitions, and the full DFS/COMPFS/SFS stack.

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "src/layers/cfs/cfs_layer.h"
#include "src/layers/compfs/comp_layer.h"
#include "src/layers/dfs/dfs_client.h"
#include "src/layers/dfs/dfs_server.h"
#include "src/layers/sfs/sfs.h"
#include "src/support/rng.h"

namespace springfs {
namespace {

using dfs::DfsClient;
using dfs::DfsServer;

// --- net fabric basics ---

TEST(NetworkTest, FrameRoundTrip) {
  net::Frame frame;
  frame.type = 7;
  frame.arg0 = 1;
  frame.arg1 = 2;
  frame.arg2 = 3;
  frame.arg3 = 4;
  frame.status = -5;
  frame.payload = Buffer(std::string("payload"));
  Buffer wire = frame.Serialize();
  Result<net::Frame> back = net::Frame::Deserialize(wire.span());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->type, 7u);
  EXPECT_EQ(back->arg3, 4u);
  EXPECT_EQ(back->status, -5);
  EXPECT_EQ(back->payload.ToString(), "payload");
}

TEST(NetworkTest, DeserializeRejectsGarbage) {
  Buffer junk(std::string("xx"));
  EXPECT_FALSE(net::Frame::Deserialize(junk.span()).ok());
}

TEST(NetworkTest, CallDispatchesAndCharges) {
  FakeClock clock;
  net::Network network(&clock, /*default_latency_ns=*/1000);
  network.AddNode("a");
  sp<net::Node> b = network.AddNode("b");
  b->RegisterService("echo", [](const net::Frame& request) {
    net::Frame response;
    response.arg0 = request.arg0 + 1;
    response.payload = request.payload;
    return response;
  });
  net::Frame request;
  request.arg0 = 41;
  request.payload = Buffer(std::string("hi"));
  TimeNs before = clock.Now();
  Result<net::Frame> response = network.Call("a", "b", "echo", request);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->arg0, 42u);
  EXPECT_EQ(response->payload.ToString(), "hi");
  EXPECT_EQ(clock.Now() - before, 2000u);  // two hops
  EXPECT_EQ(metrics::StatValue(network, "messages"), 2u);
}

TEST(NetworkTest, UnknownNodeOrServiceFails) {
  FakeClock clock;
  net::Network network(&clock);
  network.AddNode("a");
  network.AddNode("b");
  net::Frame request;
  EXPECT_EQ(network.Call("a", "nowhere", "svc", request).status().code(),
            ErrorCode::kNotFound);
  EXPECT_EQ(network.Call("a", "b", "no-svc", request).status().code(),
            ErrorCode::kNotFound);
}

TEST(NetworkTest, PartitionCutsTraffic) {
  FakeClock clock;
  net::Network network(&clock);
  network.AddNode("a");
  sp<net::Node> b = network.AddNode("b");
  b->RegisterService("svc", [](const net::Frame&) { return net::Frame{}; });
  network.SetPartitioned("b", true);
  EXPECT_EQ(network.Call("a", "b", "svc", net::Frame{}).status().code(),
            ErrorCode::kConnectionLost);
  network.SetPartitioned("b", false);
  EXPECT_TRUE(network.Call("a", "b", "svc", net::Frame{}).ok());
}

// --- DFS fixture: server node with SFS, one or two client nodes ---

class DfsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    network_ = std::make_unique<net::Network>(&clock_, 1000);
    server_node_ = network_->AddNode("server");
    client_node_ = network_->AddNode("client1");
    client2_node_ = network_->AddNode("client2");

    device_ = std::make_unique<MemBlockDevice>(ufs::kBlockSize, 8192);
    sfs_ = *CreateSfs(device_.get(), SfsOptions{}, &clock_);
    server_ = *DfsServer::Create(server_node_, network_.get(), "dfs",
                                 sfs_.root, &clock_);

    client_ = *DfsClient::Mount(client_node_, network_.get(), "server", "dfs");
    client_vmm_ = Vmm::Create(client_node_->domain(), "client1-vmm");
    client2_ = *DfsClient::Mount(client2_node_, network_.get(), "server",
                                 "dfs");
    client2_vmm_ = Vmm::Create(client2_node_->domain(), "client2-vmm");
  }

  Credentials sys_ = Credentials::System();
  FakeClock clock_;
  std::unique_ptr<net::Network> network_;
  sp<net::Node> server_node_, client_node_, client2_node_;
  std::unique_ptr<MemBlockDevice> device_;
  Sfs sfs_;
  sp<DfsServer> server_;
  sp<DfsClient> client_, client2_;
  sp<Vmm> client_vmm_, client2_vmm_;
};

TEST_F(DfsTest, RemoteCreateWriteReadBack) {
  sp<File> file = *client_->CreateFile(*Name::Parse("remote"), sys_);
  Buffer data(std::string("over the wire"));
  ASSERT_TRUE(file->Write(0, data.span()).ok());
  Buffer out(13);
  EXPECT_EQ(*file->Read(0, out.mutable_span()), 13u);
  EXPECT_EQ(out.ToString(), "over the wire");
  // The file exists in the server's SFS.
  EXPECT_TRUE(ResolveAs<File>(sfs_.root, "remote", sys_).ok());
}

TEST_F(DfsTest, RemoteLookupAndReadDir) {
  ASSERT_TRUE(client_->CreateContext(*Name::Parse("dir"), sys_).ok());
  ASSERT_TRUE(client_->CreateFile(*Name::Parse("dir/f"), sys_).ok());
  Result<sp<Object>> dir = client_->Resolve(*Name::Parse("dir"), sys_);
  ASSERT_TRUE(dir.ok());
  sp<Context> ctx = narrow<Context>(*dir);
  ASSERT_NE(ctx, nullptr);
  Result<std::vector<BindingInfo>> list = ctx->List(sys_);
  ASSERT_TRUE(list.ok());
  ASSERT_EQ(list->size(), 1u);
  EXPECT_EQ((*list)[0].name, "f");
  EXPECT_FALSE((*list)[0].is_context);
  // Nested resolution through the remote dir context.
  EXPECT_TRUE(ResolveAs<File>(client_, "dir/f", sys_).ok());
}

TEST_F(DfsTest, RemoteStatAndTimes) {
  sp<File> file = *client_->CreateFile(*Name::Parse("attrs"), sys_);
  Buffer data(std::string("xyz"));
  ASSERT_TRUE(file->Write(0, data.span()).ok());
  Result<FileAttributes> attrs = file->Stat();
  ASSERT_TRUE(attrs.ok());
  EXPECT_EQ(attrs->size, 3u);
  ASSERT_TRUE(file->SetTimes(123, 456).ok());
  attrs = file->Stat();
  EXPECT_EQ(attrs->atime_ns, 123u);
  EXPECT_EQ(attrs->mtime_ns, 456u);
}

TEST_F(DfsTest, RemoteMappedAccess) {
  sp<File> file = *client_->CreateFile(*Name::Parse("mapped"), sys_);
  ASSERT_TRUE(file->SetLength(2 * kPageSize).ok());
  Result<sp<MappedRegion>> region =
      client_vmm_->Map(file, AccessRights::kReadWrite);
  ASSERT_TRUE(region.ok()) << region.status().ToString();
  Buffer data(std::string("mapped remote write"));
  ASSERT_TRUE((*region)->Write(100, data.span()).ok());
  ASSERT_TRUE((*region)->Sync().ok());
  // Readable through the remote file interface.
  Buffer out(19);
  ASSERT_TRUE(file->Read(100, out.mutable_span()).ok());
  EXPECT_EQ(out.ToString(), "mapped remote write");
  EXPECT_GT(metrics::StatValue(*server_, "remote_page_ins"), 0u);
}

// Figure 7's headline: local clients of file_DFS end up talking to SFS
// directly; DFS sees no page traffic.
TEST_F(DfsTest, LocalBindForwarding) {
  sp<File> created = *server_->CreateFile(*Name::Parse("fig7"), sys_);
  ASSERT_TRUE(created->SetLength(kPageSize).ok());
  sp<Vmm> local_vmm = Vmm::Create(server_node_->domain(), "local-vmm");
  sp<MappedRegion> region = *local_vmm->Map(created, AccessRights::kReadWrite);
  network_->ResetStats();
  server_->ResetStats();
  Buffer data(std::string("local"));
  ASSERT_TRUE(region->Write(0, data.span()).ok());
  Buffer out(5);
  ASSERT_TRUE(region->Read(0, out.mutable_span()).ok());
  // No network traffic and no DFS page-in involvement for local access.
  EXPECT_EQ(metrics::StatValue(*network_, "messages"), 0u);
  EXPECT_EQ(metrics::StatValue(*server_, "remote_page_ins"), 0u);
  // And the mapping is genuinely the SFS channel: the local VMM shares the
  // cache with a direct SFS mapping of the same file.
  sp<File> sfs_file = *ResolveAs<File>(sfs_.root, "fig7", sys_);
  sp<MappedRegion> direct = *local_vmm->Map(sfs_file, AccessRights::kReadOnly);
  EXPECT_EQ(region->channel_id(), direct->channel_id())
      << "local binds must be forwarded so the same cache is shared";
}

TEST_F(DfsTest, RemoteAndLocalStayCoherent) {
  sp<File> created = *sfs_.root->CreateFile(*Name::Parse("share"), sys_);
  ASSERT_TRUE(created->SetLength(kPageSize).ok());

  // Remote client maps and reads the initial content.
  sp<File> remote = *ResolveAs<File>(client_, "share", sys_);
  sp<MappedRegion> remote_region =
      *client_vmm_->Map(remote, AccessRights::kReadWrite);
  Buffer out(5);
  ASSERT_TRUE(remote_region->Read(0, out.mutable_span()).ok());

  // Local writer updates through SFS.
  Buffer local_data(std::string("LOCAL"));
  ASSERT_TRUE(created->Write(0, local_data.span()).ok());
  // Remote read must observe it (the server's lower cache object was
  // flushed by SFS, which flushed the remote VMM over the network).
  ASSERT_TRUE(remote_region->Read(0, out.mutable_span()).ok());
  EXPECT_EQ(out.ToString(), "LOCAL");

  // Remote writer updates through the mapping.
  Buffer remote_data(std::string("REMOT"));
  ASSERT_TRUE(remote_region->Write(0, remote_data.span()).ok());
  // Local read must observe it.
  ASSERT_TRUE(created->Read(0, out.mutable_span()).ok());
  EXPECT_EQ(out.ToString(), "REMOT");
  EXPECT_GT(metrics::StatValue(*server_, "lower_flushes"), 0u);
}

TEST_F(DfsTest, TwoRemoteClientsStayCoherent) {
  sp<File> created = *sfs_.root->CreateFile(*Name::Parse("pair"), sys_);
  ASSERT_TRUE(created->SetLength(kPageSize).ok());

  sp<File> r1 = *ResolveAs<File>(client_, "pair", sys_);
  sp<File> r2 = *ResolveAs<File>(client2_, "pair", sys_);
  sp<MappedRegion> m1 = *client_vmm_->Map(r1, AccessRights::kReadWrite);
  sp<MappedRegion> m2 = *client2_vmm_->Map(r2, AccessRights::kReadWrite);

  Buffer out(4);
  for (int round = 0; round < 3; ++round) {
    std::string text1 = "a" + std::to_string(round) + "a" + std::to_string(round);
    Buffer d1(text1);
    ASSERT_TRUE(m1->Write(0, d1.span()).ok());
    ASSERT_TRUE(m2->Read(0, out.mutable_span()).ok());
    EXPECT_EQ(out.ToString(), text1) << "round " << round;

    std::string text2 = "b" + std::to_string(round) + "b" + std::to_string(round);
    Buffer d2(text2);
    ASSERT_TRUE(m2->Write(0, d2.span()).ok());
    ASSERT_TRUE(m1->Read(0, out.mutable_span()).ok());
    EXPECT_EQ(out.ToString(), text2) << "round " << round;
  }
  EXPECT_GT(metrics::StatValue(*server_, "callbacks_sent"), 0u);
}

TEST_F(DfsTest, RemoteRemoveAndErrors) {
  ASSERT_TRUE(client_->CreateFile(*Name::Parse("gone"), sys_).ok());
  ASSERT_TRUE(client_->Unbind(*Name::Parse("gone"), sys_).ok());
  EXPECT_EQ(client_->Resolve(*Name::Parse("gone"), sys_).status().code(),
            ErrorCode::kNotFound);
  EXPECT_EQ(client_->Resolve(*Name::Parse("never-existed"), sys_)
                .status().code(),
            ErrorCode::kNotFound);
}

TEST_F(DfsTest, PartitionSurfacesAsConnectionLost) {
  sp<File> file = *client_->CreateFile(*Name::Parse("cut"), sys_);
  network_->SetPartitioned("server", true);
  Buffer out(4);
  EXPECT_EQ(file->Read(0, out.mutable_span()).status().code(),
            ErrorCode::kConnectionLost);
  network_->SetPartitioned("server", false);
  EXPECT_TRUE(file->Stat().ok());
}

// --- transient faults, retries, and server death ---

TEST_F(DfsTest, IdempotentCallsRetryThroughTransientTimeouts) {
  sp<File> file = *client_->CreateFile(*Name::Parse("flaky"), sys_);
  Buffer data(std::string("eventually"));
  ASSERT_TRUE(file->Write(0, data.span()).ok());

  // The next two transport calls time out; the third goes through. Stat is
  // idempotent, so the client must absorb the faults.
  network_->FailNextCalls(2, ErrorCode::kTimedOut);
  TimeNs before = clock_.Now();
  Result<FileAttributes> attrs = file->Stat();
  ASSERT_TRUE(attrs.ok()) << attrs.status().ToString();
  EXPECT_EQ(attrs->size, 10u);
  std::map<std::string, uint64_t> stats = metrics::CollectFrom(*client_);
  EXPECT_EQ(stats["retries"], 2u);
  EXPECT_EQ(stats["retry_successes"], 1u);
  EXPECT_EQ(stats["retries_exhausted"], 0u);
  EXPECT_GT(clock_.Now(), before) << "backoff must be charged to the clock";
}

TEST_F(DfsTest, MutatingCallsRetrySafelyThroughDedup) {
  // The request itself is lost: the server never ran the op, and the
  // retransmission (same request id) simply executes it.
  uint64_t calls_before = metrics::StatValue(*client_, "calls_sent");
  network_->FailNextCalls(1, ErrorCode::kTimedOut);
  Result<sp<File>> created = client_->CreateFile(*Name::Parse("once"), sys_);
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  std::map<std::string, uint64_t> stats = metrics::CollectFrom(*client_);
  EXPECT_EQ(stats["retries"], 1u);
  EXPECT_EQ(stats["calls_sent"], calls_before + 2);
  EXPECT_EQ(metrics::StatValue(*server_, "dedup_hits"), 0u)
      << "first attempt never ran";
  EXPECT_TRUE(ResolveAs<File>(sfs_.root, "once", sys_).ok());
}

TEST_F(DfsTest, LostResponseRetransmissionAppliesExactlyOnce) {
  // The *response* is lost: the server HAS executed the create, the client
  // times out and retransmits the same request id, and the server's dedup
  // window replays the original response instead of re-executing. A blind
  // re-execute would fail with kAlreadyExists — the ok result proves the
  // dedup path answered.
  uint64_t calls_before = metrics::StatValue(*client_, "calls_sent");
  network_->DropNextResponses("client1", "server", 1);
  Result<sp<File>> created = client_->CreateFile(*Name::Parse("exactly"),
                                                 sys_);
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  std::map<std::string, uint64_t> stats = metrics::CollectFrom(*client_);
  EXPECT_EQ(stats["retries"], 1u);
  EXPECT_EQ(stats["calls_sent"], calls_before + 2);
  EXPECT_EQ(metrics::StatValue(*server_, "dedup_hits"), 1u);
  EXPECT_EQ(metrics::StatValue(*network_, "dropped_responses"), 1u);
  // Exactly-once: the file exists and the remote view is usable.
  EXPECT_TRUE(ResolveAs<File>(sfs_.root, "exactly", sys_).ok());
  Buffer data(std::string("ok"));
  EXPECT_TRUE((*created)->Write(0, data.span()).ok());
}

TEST_F(DfsTest, LostWriteResponseDoesNotDoubleApply) {
  // Double-applying a kWrite around another client's write would resurface
  // old bytes. Drop the write's response; the retransmission must replay,
  // not re-execute.
  sp<File> file = *client_->CreateFile(*Name::Parse("w-once"), sys_);
  Buffer first(std::string("AAAA"));
  network_->DropNextResponses("client1", "server", 1);
  ASSERT_TRUE(file->Write(0, first.span()).ok());
  EXPECT_EQ(metrics::StatValue(*server_, "dedup_hits"), 1u);
  // Another client overwrites; if the first write's retransmission had
  // re-executed after this, "BBBB" would be clobbered.
  sp<File> other = *ResolveAs<File>(client2_, "w-once", sys_);
  Buffer second(std::string("BBBB"));
  ASSERT_TRUE(other->Write(0, second.span()).ok());
  Buffer out(4);
  ASSERT_TRUE(file->Read(0, out.mutable_span()).ok());
  EXPECT_EQ(out.ToString(), "BBBB");
}

TEST_F(DfsTest, ReorderedDuplicateOfMutatingOpAppliesExactlyOnce) {
  // Pipelined transport, pathological reordering: the original copy of a
  // kWrite is delayed so long that the channel's RTO retransmits it, the
  // *retransmission* executes first, and the original limps in much later
  // — after another client has overwritten the bytes. The server's dedup
  // window must replay, not re-execute, or the stale write resurfaces.
  sp<File> created = *sfs_.root->CreateFile(*Name::Parse("reorder"), sys_);
  (void)created;
  dfs::DfsClientOptions options;
  options.pipelined = true;
  options.async_depth = 4;
  options.channel.rto_ns = 100'000;
  options.channel.max_retransmits = 3;
  sp<DfsClient> piped = *DfsClient::Mount(client2_node_, network_.get(),
                                          "server", "dfs", &clock_, options);
  sp<File> remote = *ResolveAs<File>(piped, "reorder", sys_);

  uint64_t dedup_before = metrics::StatValue(*server_, "dedup_hits");
  // The next request on the link crawls: 10ms against a 100µs RTO.
  network_->DelayNextRequests("client2", "server", 1, 10'000'000);
  Buffer stale_bytes(std::string("AAAA"));
  ASSERT_TRUE(remote->Write(0, stale_bytes.span()).ok());
  // The write completed via the retransmitted copy; the delayed original
  // is still on the wire. Another client overwrites meanwhile.
  EXPECT_EQ(metrics::StatValue(*server_, "dedup_hits"), dedup_before);
  sp<File> other = *ResolveAs<File>(client_, "reorder", sys_);
  Buffer fresh_bytes(std::string("BBBB"));
  ASSERT_TRUE(other->Write(0, fresh_bytes.span()).ok());

  // Let virtual time reach the original's arrival; the next pipelined op
  // pumps it into the server, whose dedup window replays the original
  // response instead of re-executing the write.
  clock_.Advance(10'000'000);
  ASSERT_TRUE(remote->Stat().ok());
  EXPECT_EQ(metrics::StatValue(*server_, "dedup_hits"), dedup_before + 1);
  Buffer out(4);
  ASSERT_TRUE(other->Read(0, out.mutable_span()).ok());
  EXPECT_EQ(out.ToString(), "BBBB")
      << "the reordered duplicate must not re-apply the stale write";
}

TEST_F(DfsTest, BackoffCarriesAcrossStaleHandleRebind) {
  // A scripted service walks one logical op through the worst case: two
  // transient timeouts, then kStale (server forgot the handle), a rebind
  // lookup that succeeds, and one more timeout on the re-issued call
  // before it completes. The retry state must carry across the rebind:
  // backoff base + 2·base before the kStale, then 4·base after it —
  // restarting at base post-rebind (the old bug) would sleep only
  // base + 2·base + base.
  int lookups = 0;
  int getattrs = 0;
  server_node_->RegisterService(
      "scripted", [&](const net::Frame& request) -> net::Frame {
        switch (static_cast<dfs::Op>(request.type)) {
          case dfs::Op::kReadDir:
            return net::Frame{};  // mount probe
          case dfs::Op::kLookup: {
            ++lookups;
            dfs::LookupResponse body;
            body.handle = lookups;  // a fresh handle per resolution
            net::Frame response;
            response.payload = body.Encode();
            if (lookups == 2) {
              // The rebind lookup: arm one more transient fault so the
              // re-issued call times out once before succeeding.
              network_->FailNextCallsOnLink("client2", "server", 1,
                                            ErrorCode::kTimedOut);
            }
            return response;
          }
          case dfs::Op::kGetAttr: {
            if (++getattrs == 1) {
              return net::Frame::Error(ErrorCode::kStale);
            }
            dfs::GetAttrResponse body;
            net::Frame response;
            response.payload = body.Encode();
            return response;
          }
          default:
            return net::Frame::Error(ErrorCode::kNotSupported);
        }
      });
  sp<DfsClient> scripted = *DfsClient::Mount(client2_node_, network_.get(),
                                             "server", "scripted", &clock_);
  sp<File> file = *ResolveAs<File>(scripted, "f", sys_);
  network_->FailNextCallsOnLink("client2", "server", 2, ErrorCode::kTimedOut);
  TimeNs before = clock_.Now();
  Result<FileAttributes> attrs = file->Stat();
  ASSERT_TRUE(attrs.ok()) << attrs.status().ToString();
  // Slept backoff: 1ms + 2ms (pre-kStale) + 4ms (carried past the rebind),
  // plus three successful round trips (kStale, lookup, retry) at 2µs each.
  EXPECT_EQ(clock_.Now() - before, 7'006'000u)
      << "backoff must keep growing across the kStale rebind";
  std::map<std::string, uint64_t> stats = metrics::CollectFrom(*scripted);
  EXPECT_EQ(stats["retries"], 3u);
  EXPECT_EQ(stats["handle_rebinds"], 1u);
  EXPECT_EQ(getattrs, 2);
}

TEST_F(DfsTest, RetriesExhaustedSurfaceAsErrorNotHang) {
  // A dedicated mount with a tight retry budget: a persistent partition
  // must produce a bounded number of sends and a clean error.
  dfs::DfsClientOptions options;
  options.max_retries = 2;
  sp<DfsClient> impatient = *DfsClient::Mount(client2_node_, network_.get(),
                                              "server", "dfs", &clock_,
                                              options);
  sp<File> file = *impatient->CreateFile(*Name::Parse("stuck"), sys_);
  network_->SetPartitioned("server", true);
  uint64_t calls_before = metrics::StatValue(*impatient, "calls_sent");
  Result<FileAttributes> attrs = file->Stat();
  EXPECT_EQ(attrs.status().code(), ErrorCode::kConnectionLost);
  std::map<std::string, uint64_t> stats = metrics::CollectFrom(*impatient);
  EXPECT_EQ(stats["calls_sent"], calls_before + 3)
      << "initial send + 2 retries";
  EXPECT_EQ(stats["retries"], 2u);
  EXPECT_EQ(stats["retries_exhausted"], 1u);
  network_->SetPartitioned("server", false);
  EXPECT_TRUE(file->Stat().ok());
}

TEST_F(DfsTest, ServerDeathSurfacesAsDeadObjectNotHang) {
  // No writes/mappings here: bound caches would hold the server alive via
  // its CacheManager registrations. A freshly created file keeps the
  // server droppable.
  sp<File> file = *client_->CreateFile(*Name::Parse("orphan"), sys_);

  server_.reset();  // the exporting server dies; its service leaves a tombstone

  // Calls against the dead server fail with kDeadObject after a bounded
  // number of retries (a replacement server could have taken the service
  // over, so the client probes for one): no hang, clean error.
  uint64_t calls_before = metrics::StatValue(*client_, "calls_sent");
  Status stat = file->Stat().status();
  EXPECT_EQ(stat.code(), ErrorCode::kDeadObject) << stat.ToString();
  EXPECT_EQ(metrics::StatValue(*client_, "calls_sent"), calls_before + 5)
      << "initial send + max_retries probes";
  EXPECT_EQ(client_->Resolve(*Name::Parse("orphan"), sys_).status().code(),
            ErrorCode::kDeadObject);
}

TEST_F(DfsTest, ServerRestartInvalidatesCachesAndRebindsTransparently) {
  sp<File> created = *sfs_.root->CreateFile(*Name::Parse("reborn"), sys_);
  ASSERT_TRUE(created->SetLength(kPageSize).ok());
  sp<File> remote = *ResolveAs<File>(client_, "reborn", sys_);
  sp<MappedRegion> region = *client_vmm_->Map(remote, AccessRights::kReadWrite);
  Buffer v1(std::string("->v1"));
  ASSERT_TRUE(region->Write(0, v1.span()).ok());
  ASSERT_TRUE(region->Sync().ok());
  uint64_t epoch_before = client_->observed_server_epoch();
  ASSERT_NE(epoch_before, 0u);

  // Restart: a new server instance takes over the same service name. (The
  // old instance stays referenced by the SFS channel below, as after a
  // failover; what matters to the client is the service answering with a
  // new boot epoch and an empty handle space.)
  server_ = *DfsServer::Create(server_node_, network_.get(), "dfs",
                               sfs_.root, &clock_);

  // The next call observes the epoch bump, tears down the local channels
  // (cached pages are discarded), re-resolves the handle by path, and
  // succeeds — the restart is transparent to the File API.
  Result<FileAttributes> attrs = remote->Stat();
  ASSERT_TRUE(attrs.ok()) << attrs.status().ToString();
  EXPECT_GT(client_->observed_server_epoch(), epoch_before);
  EXPECT_GE(metrics::StatValue(*client_, "server_restarts"), 1u);
  EXPECT_GT(metrics::StatValue(*client_, "channels_invalidated"), 0u);
  EXPECT_GE(metrics::StatValue(*client_, "handle_rebinds"), 1u);

  // Data synced before the restart survives, served through a fresh
  // mapping bound to the new server.
  sp<MappedRegion> region2 = *client_vmm_->Map(remote, AccessRights::kReadOnly);
  Buffer out(4);
  Status got = region2->Read(0, out.mutable_span());
  ASSERT_TRUE(got.ok()) << got.ToString();
  EXPECT_EQ(out.ToString(), "->v1");
}

TEST_F(DfsTest, KilledWriterDoesNotBlockOtherClients) {
  // Two clients write-map the same file; client1 holds writer blocks, then
  // its node is partitioned away for good (client death). client2's next
  // acquire must evict the dead holder instead of failing forever.
  sp<File> created = *sfs_.root->CreateFile(*Name::Parse("seized"), sys_);
  ASSERT_TRUE(created->SetLength(kPageSize).ok());
  sp<File> r1 = *ResolveAs<File>(client_, "seized", sys_);
  sp<File> r2 = *ResolveAs<File>(client2_, "seized", sys_);
  sp<MappedRegion> m1 = *client_vmm_->Map(r1, AccessRights::kReadWrite);
  Buffer mine(std::string("mine"));
  ASSERT_TRUE(m1->Write(0, mine.span()).ok());  // client1 becomes the writer

  network_->SetPartitioned("client1", true);  // client1 dies mid-hold

  sp<MappedRegion> m2 = *client2_vmm_->Map(r2, AccessRights::kReadWrite);
  Buffer theirs(std::string("ours"));
  ASSERT_TRUE(m2->Write(0, theirs.span()).ok())
      << "a dead writer must be evicted, not block the acquire";
  ASSERT_TRUE(m2->Sync().ok());
  CoherencyStats coh = server_->AggregateCoherencyStats();
  EXPECT_GE(coh.evictions, 1u);
  EXPECT_GE(coh.lost_dirty_blocks, 1u) << "client1's unflushed write is lost";
  EXPECT_TRUE(server_->CheckCoherencyInvariants());

  // The revived client's stale page-out is fenced, not applied.
  network_->SetPartitioned("client1", false);
  Status late = m1->Sync();
  Buffer out(4);
  ASSERT_TRUE(created->Read(0, out.mutable_span()).ok());
  EXPECT_EQ(out.ToString(), "ours")
      << "stale write-back from the evicted holder must not clobber";
  if (!late.ok()) {
    EXPECT_EQ(late.code(), ErrorCode::kStale);
  }
  EXPECT_GE(metrics::StatValue(*server_, "stale_fenced") +
                metrics::StatValue(*client_, "channels_invalidated"),
            1u);
}

TEST_F(DfsTest, SyncFlowsToDisk) {
  sp<File> file = *client_->CreateFile(*Name::Parse("durable"), sys_);
  Buffer data(std::string("remote durable"));
  ASSERT_TRUE(file->Write(0, data.span()).ok());
  ASSERT_TRUE(file->SyncFile().ok());
  ASSERT_TRUE(sfs_.root->SyncFs().ok());
  Result<sp<File>> under = ResolveAs<File>(sfs_.disk, "durable", sys_);
  ASSERT_TRUE(under.ok());
  Buffer out(14);
  EXPECT_EQ(*(*under)->Read(0, out.mutable_span()), 14u);
  EXPECT_EQ(out.ToString(), "remote durable");
}

// --- Figure 9: DFS on COMPFS on SFS ---

TEST_F(DfsTest, FullFigure9Stack) {
  // Build COMPFS on SFS, then export COMPFS over DFS.
  sp<CompLayer> compfs =
      CompLayer::Create(server_node_->domain(), CompLayerOptions{}, &clock_);
  ASSERT_TRUE(compfs->StackOn(sfs_.root).ok());
  sp<DfsServer> dfs2 = *DfsServer::Create(server_node_, network_.get(),
                                          "dfs-comp", compfs, &clock_);
  sp<DfsClient> remote = *DfsClient::Mount(client_node_, network_.get(),
                                           "server", "dfs-comp");

  // Remote client writes compressible data through the full stack.
  sp<File> file = *remote->CreateFile(*Name::Parse("deep"), sys_);
  Rng rng(9);
  Buffer data = rng.CompressibleBuffer(4 * kPageSize);
  ASSERT_TRUE(file->Write(0, data.span()).ok());
  ASSERT_TRUE(file->SyncFile().ok());

  // Read back remotely: decompressed by COMPFS on the server.
  Buffer out(data.size());
  ASSERT_TRUE(file->Read(0, out.mutable_span()).ok());
  EXPECT_EQ(out, data);

  // The underlying SFS file holds compressed bytes (smaller).
  Result<sp<File>> under = ResolveAs<File>(sfs_.root, "deep", sys_);
  ASSERT_TRUE(under.ok());
  EXPECT_LT((*under)->Stat()->size, data.size() / 2);

  // Local access through COMPFS is coherent with the remote view.
  sp<File> local = *ResolveAs<File>(compfs, "deep", sys_);
  Buffer local_out(16);
  ASSERT_TRUE(local->Read(0, local_out.mutable_span()).ok());
  EXPECT_TRUE(std::equal(local_out.data(), local_out.data() + 16,
                         data.data()));
}

// --- CFS ---

class CfsTest : public DfsTest {
 protected:
  void SetUp() override {
    DfsTest::SetUp();
    cfs_ = CfsLayer::Create(client_node_->domain(), client_, client_vmm_,
                            &clock_);
  }

  sp<CfsLayer> cfs_;
};

TEST_F(CfsTest, AttrCacheAbsorbsStatStorm) {
  ASSERT_TRUE(client_->CreateFile(*Name::Parse("hot"), sys_).ok());
  sp<File> file = *ResolveAs<File>(cfs_, "hot", sys_);
  ASSERT_TRUE(file->Stat().ok());  // first stat: one network round trip
  uint64_t calls_before = metrics::StatValue(*client_, "calls_sent");
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(file->Stat().ok());
  }
  EXPECT_EQ(metrics::StatValue(*client_, "calls_sent"), calls_before)
      << "CFS must serve repeated stats from its attribute cache";
  EXPECT_GE(metrics::StatValue(*cfs_, "attr_cache_hits"), 50u);
}

TEST_F(CfsTest, WithoutCfsEveryStatGoesRemote) {
  ASSERT_TRUE(client_->CreateFile(*Name::Parse("cold"), sys_).ok());
  sp<File> file = *ResolveAs<File>(client_, "cold", sys_);
  uint64_t calls_before = metrics::StatValue(*client_, "calls_sent");
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(file->Stat().ok());
  }
  EXPECT_EQ(metrics::StatValue(*client_, "calls_sent"), calls_before + 10);
}

TEST_F(CfsTest, ReadsServedFromLocalVmmCache) {
  sp<File> created = *client_->CreateFile(*Name::Parse("data"), sys_);
  Buffer data(std::string("cache me locally"));
  ASSERT_TRUE(created->Write(0, data.span()).ok());

  sp<File> file = *ResolveAs<File>(cfs_, "data", sys_);
  Buffer out(16);
  ASSERT_TRUE(file->Read(0, out.mutable_span()).ok());  // faults once
  EXPECT_EQ(out.ToString(), "cache me locally");
  uint64_t calls_before = metrics::StatValue(*client_, "calls_sent");
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(file->Read(0, out.mutable_span()).ok());
  }
  // Attribute checks are cached and pages come from the local VMM: no
  // further network calls.
  EXPECT_EQ(metrics::StatValue(*client_, "calls_sent"), calls_before);
}

TEST_F(CfsTest, WritesVisibleRemotely) {
  ASSERT_TRUE(client_->CreateFile(*Name::Parse("w"), sys_).ok());
  sp<File> file = *ResolveAs<File>(cfs_, "w", sys_);
  Buffer data(std::string("from cfs"));
  ASSERT_TRUE(file->Write(0, data.span()).ok());
  ASSERT_TRUE(file->SyncFile().ok());
  // Visible through the plain remote view and on the server.
  sp<File> plain = *ResolveAs<File>(client2_, "w", sys_);
  Buffer out(8);
  ASSERT_TRUE(plain->Read(0, out.mutable_span()).ok());
  EXPECT_EQ(out.ToString(), "from cfs");
  EXPECT_EQ(file->Stat()->size, 8u);
}

TEST_F(CfsTest, AttrInvalidationCallback) {
  sp<File> created = *client_->CreateFile(*Name::Parse("inval"), sys_);
  sp<File> file = *ResolveAs<File>(cfs_, "inval", sys_);
  // Trigger the CFS bind (registers its fs_cache with the server) and
  // cache the attributes.
  Buffer probe(std::string("x"));
  ASSERT_TRUE(file->Write(0, probe.span()).ok());
  ASSERT_TRUE(file->SyncFile().ok());
  ASSERT_TRUE(file->Stat().ok());

  // Another client changes the file's length on the server.
  sp<File> other = *ResolveAs<File>(client2_, "inval", sys_);
  ASSERT_TRUE(other->SetLength(100).ok());
  EXPECT_GE(metrics::StatValue(*cfs_, "attr_invalidations"), 1u);
  // CFS refetches: the new size is visible.
  EXPECT_EQ(file->Stat()->size, 100u);
}

}  // namespace
}  // namespace springfs
