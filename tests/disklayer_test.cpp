// Tests for the disk layer: the naming-context surface over UFS, File
// objects, memory-object bind/paging against a VMM, and the non-coherence
// the paper ascribes to the base layer (section 6.2).

#include <gtest/gtest.h>

#include "src/layers/disklayer/disk_layer.h"
#include "src/support/rng.h"
#include "src/vmm/vmm.h"

namespace springfs {
namespace {

class DiskLayerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    device_ = std::make_unique<MemBlockDevice>(ufs::kBlockSize, 4096);
    domain_ = Domain::Create("disklayer");
    Result<sp<DiskLayer>> layer =
        DiskLayer::Format(domain_, device_.get(), &clock_);
    ASSERT_TRUE(layer.ok()) << layer.status().ToString();
    layer_ = layer.take_value();
  }

  Credentials sys_ = Credentials::System();
  FakeClock clock_;
  std::unique_ptr<MemBlockDevice> device_;
  sp<Domain> domain_;
  sp<DiskLayer> layer_;
};

TEST_F(DiskLayerTest, CreateFileThenResolve) {
  Result<sp<File>> file = layer_->CreateFile(*Name::Parse("hello"), sys_);
  ASSERT_TRUE(file.ok()) << file.status().ToString();
  Result<sp<File>> found = ResolveAs<File>(layer_, "hello", sys_);
  ASSERT_TRUE(found.ok());
  // Equivalent lookups return the same file object (open-file state).
  EXPECT_EQ(*found, *file);
}

TEST_F(DiskLayerTest, FileReadWriteStat) {
  sp<File> file = *layer_->CreateFile(*Name::Parse("data"), sys_);
  Buffer content(std::string("disk layer bytes"));
  ASSERT_TRUE(file->Write(0, content.span()).ok());
  Buffer out(16);
  EXPECT_EQ(*file->Read(0, out.mutable_span()), 16u);
  EXPECT_EQ(out.ToString(), "disk layer bytes");
  Result<FileAttributes> attrs = file->Stat();
  ASSERT_TRUE(attrs.ok());
  EXPECT_EQ(attrs->size, 16u);
  EXPECT_EQ(attrs->kind, FileKind::kRegular);
}

TEST_F(DiskLayerTest, DirectoriesResolveAsContexts) {
  ASSERT_TRUE(layer_->CreateContext(*Name::Parse("dir"), sys_).ok());
  Result<sp<Context>> dir = ResolveAs<Context>(layer_, "dir", sys_);
  ASSERT_TRUE(dir.ok());
  ASSERT_TRUE((*dir)->CreateContext(*Name::Parse("sub"), sys_).ok());
  sp<File> file = *layer_->CreateFile(*Name::Parse("dir/sub/f"), sys_);
  Result<sp<File>> found = ResolveAs<File>(layer_, "dir/sub/f", sys_);
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(*found, file);
}

TEST_F(DiskLayerTest, ListShowsEntriesWithKind) {
  ASSERT_TRUE(layer_->CreateContext(*Name::Parse("d"), sys_).ok());
  ASSERT_TRUE(layer_->CreateFile(*Name::Parse("f"), sys_).ok());
  Result<std::vector<BindingInfo>> list = layer_->List(sys_);
  ASSERT_TRUE(list.ok());
  ASSERT_EQ(list->size(), 2u);
  for (const auto& entry : *list) {
    if (entry.name == "d") {
      EXPECT_TRUE(entry.is_context);
    } else {
      EXPECT_EQ(entry.name, "f");
      EXPECT_FALSE(entry.is_context);
    }
  }
}

TEST_F(DiskLayerTest, BindOfOwnFileIsHardLink) {
  sp<File> file = *layer_->CreateFile(*Name::Parse("orig"), sys_);
  ASSERT_TRUE(layer_->Bind(*Name::Parse("alias"), file, sys_).ok());
  Result<sp<File>> via_alias = ResolveAs<File>(layer_, "alias", sys_);
  ASSERT_TRUE(via_alias.ok());
  EXPECT_EQ(*via_alias, file);
  EXPECT_EQ(file->Stat()->nlink, 2u);
}

TEST_F(DiskLayerTest, BindOfForeignObjectRejected) {
  struct Foreign : Object {};
  EXPECT_EQ(layer_->Bind(*Name::Parse("x"), std::make_shared<Foreign>(), sys_)
                .code(),
            ErrorCode::kNotSupported);
}

TEST_F(DiskLayerTest, UnbindRemovesFile) {
  ASSERT_TRUE(layer_->CreateFile(*Name::Parse("gone"), sys_).ok());
  ASSERT_TRUE(layer_->Unbind(*Name::Parse("gone"), sys_).ok());
  EXPECT_EQ(layer_->Resolve(*Name::Parse("gone"), sys_).status().code(),
            ErrorCode::kNotFound);
}

TEST_F(DiskLayerTest, StackOnRejected) {
  EXPECT_EQ(layer_->StackOn(layer_).code(), ErrorCode::kNotSupported);
}

TEST_F(DiskLayerTest, GetFsInfo) {
  Result<FsInfo> info = layer_->GetFsInfo();
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->type, "disk");
  EXPECT_EQ(info->block_size, ufs::kBlockSize);
  EXPECT_EQ(info->stack_depth, 1u);
  EXPECT_GT(info->free_blocks, 0u);
}

TEST_F(DiskLayerTest, MapThroughVmm) {
  sp<File> file = *layer_->CreateFile(*Name::Parse("mapped"), sys_);
  Rng rng(1);
  Buffer content = rng.RandomBuffer(2 * kPageSize + 77);
  ASSERT_TRUE(file->Write(0, content.span()).ok());

  sp<Vmm> vmm = Vmm::Create(domain_, "vmm");
  Result<sp<MappedRegion>> region = vmm->Map(file, AccessRights::kReadOnly);
  ASSERT_TRUE(region.ok()) << region.status().ToString();
  Buffer out(content.size());
  ASSERT_TRUE((*region)->Read(0, out.mutable_span()).ok());
  EXPECT_EQ(Fnv1a64(ByteSpan(out.data(), content.size())),
            Fnv1a64(content.span()));
}

TEST_F(DiskLayerTest, MappedWritesReachDiskAfterSyncAndSetLength) {
  sp<File> file = *layer_->CreateFile(*Name::Parse("wfile"), sys_);
  sp<Vmm> vmm = Vmm::Create(domain_, "vmm");
  sp<MappedRegion> region = *vmm->Map(file, AccessRights::kReadWrite);
  Buffer data(std::string("dirty page content"));
  ASSERT_TRUE(region->Write(0, data.span()).ok());
  ASSERT_TRUE(region->Sync().ok());
  // Block writes do not extend the length; a client managing the file via
  // the memory-object interface sets it explicitly (paper Table 1: length
  // ops live on the memory object).
  ASSERT_TRUE(file->SetLength(data.size()).ok());
  Buffer out(data.size());
  EXPECT_EQ(*file->Read(0, out.mutable_span()), data.size());
  EXPECT_EQ(out.ToString(), "dirty page content");
}

TEST_F(DiskLayerTest, DiskLayerIsNotCoherent) {
  // The base layer performs no coherency actions: two VMMs mapping the same
  // disk file do NOT see each other's un-synced writes. This is by design
  // (section 6.2); the coherency layer on top fixes it.
  sp<File> file = *layer_->CreateFile(*Name::Parse("nc"), sys_);
  ASSERT_TRUE(file->SetLength(kPageSize).ok());
  sp<Vmm> vmm1 = Vmm::Create(domain_, "vmm1");
  sp<Vmm> vmm2 = Vmm::Create(domain_, "vmm2");
  sp<MappedRegion> w = *vmm1->Map(file, AccessRights::kReadWrite);
  sp<MappedRegion> r = *vmm2->Map(file, AccessRights::kReadOnly);

  // Reader caches the (zero) page first.
  Buffer out(5);
  ASSERT_TRUE(r->Read(0, out.mutable_span()).ok());
  // Writer updates and even syncs to disk.
  Buffer data(std::string("fresh"));
  ASSERT_TRUE(w->Write(0, data.span()).ok());
  ASSERT_TRUE(w->Sync().ok());
  // The reader still sees its stale cached copy: nobody flushed it.
  ASSERT_TRUE(r->Read(0, out.mutable_span()).ok());
  EXPECT_EQ(out.data()[0], 0) << "disk layer unexpectedly ran coherency";
}

TEST_F(DiskLayerTest, EquivalentBindsShareOneChannel) {
  sp<File> file = *layer_->CreateFile(*Name::Parse("sharebind"), sys_);
  ASSERT_TRUE(file->SetLength(kPageSize).ok());
  sp<Vmm> vmm = Vmm::Create(domain_, "vmm");
  sp<MappedRegion> r1 = *vmm->Map(file, AccessRights::kReadOnly);
  // Re-resolve the file by name (an "equivalent memory object").
  sp<File> again = *ResolveAs<File>(layer_, "sharebind", sys_);
  sp<MappedRegion> r2 = *vmm->Map(again, AccessRights::kReadOnly);
  EXPECT_EQ(r1->channel_id(), r2->channel_id());
}

TEST_F(DiskLayerTest, PersistenceAcrossRemount) {
  sp<File> file = *layer_->CreateFile(*Name::Parse("keep"), sys_);
  Buffer data(std::string("still here"));
  ASSERT_TRUE(file->Write(0, data.span()).ok());
  ASSERT_TRUE(layer_->SyncFs().ok());
  file.reset();
  layer_.reset();

  Result<sp<DiskLayer>> remounted =
      DiskLayer::Mount(domain_, device_.get(), &clock_);
  ASSERT_TRUE(remounted.ok());
  Result<sp<File>> found = ResolveAs<File>(*remounted, "keep", sys_);
  ASSERT_TRUE(found.ok());
  Buffer out(10);
  EXPECT_EQ(*(*found)->Read(0, out.mutable_span()), 10u);
  EXPECT_EQ(out.ToString(), "still here");
}

TEST_F(DiskLayerTest, ServantsLiveInTheLayerDomain) {
  // Calls from outside the layer's domain are cross-domain; from inside
  // they are plain procedure calls — placement transparency (section 6.4).
  sp<File> file = *layer_->CreateFile(*Name::Parse("dom"), sys_);
  domain_->ResetStats();
  ASSERT_TRUE(file->Stat().ok());
  EXPECT_EQ(metrics::StatValue(*domain_, "cross_calls"), 1u);
  {
    Domain::Scope scope(domain_.get());
    ASSERT_TRUE(file->Stat().ok());
  }
  EXPECT_EQ(metrics::StatValue(*domain_, "cross_calls"), 1u);
  EXPECT_GE(metrics::StatValue(*domain_, "inline_calls"), 1u);
}

}  // namespace
}  // namespace springfs
