// Tests for the file-system framework: the channel table (bind exchange,
// idempotence, fs_cache narrowing), the fs_cache/fs_pager attribute types,
// and the MemFile reference pager through the plain File interface.

#include <gtest/gtest.h>

#include "src/fs/channel_table.h"
#include "src/fs/mem_file.h"
#include "src/vmm/vmm.h"

namespace springfs {
namespace {

// A plain cache manager (not a file system): its cache object does NOT
// implement FsCacheObject, so pagers that narrow must get null.
class PlainManager : public CacheManager {
 public:
  class PlainCache : public CacheObject {
   public:
    Result<std::vector<BlockData>> FlushBack(Range) override {
      return std::vector<BlockData>{};
    }
    Result<std::vector<BlockData>> DenyWrites(Range) override {
      return std::vector<BlockData>{};
    }
    Result<std::vector<BlockData>> WriteBack(Range) override {
      return std::vector<BlockData>{};
    }
    Status DeleteRange(Range) override { return Status::Ok(); }
    Status ZeroFill(Range) override { return Status::Ok(); }
    Status Populate(Offset, AccessRights, ByteSpan) override {
      return Status::Ok();
    }
    Status DestroyCache() override { return Status::Ok(); }
  };

  class PlainRights : public CacheRights {
   public:
    explicit PlainRights(uint64_t id) : id_(id) {}
    uint64_t channel_id() const override { return id_; }

   private:
    uint64_t id_;
  };

  Result<ChannelSetup> EstablishChannel(uint64_t pager_key,
                                        sp<PagerObject> pager) override {
    ++establish_calls;
    last_pager = std::move(pager);
    auto it = setups_.find(pager_key);
    if (it == setups_.end()) {
      ChannelSetup setup{std::make_shared<PlainCache>(),
                         std::make_shared<PlainRights>(next_id_++)};
      it = setups_.emplace(pager_key, setup).first;
    }
    return it->second;
  }
  std::string cache_manager_name() const override { return "plain"; }

  int establish_calls = 0;
  sp<PagerObject> last_pager;

 private:
  uint64_t next_id_ = 100;
  std::map<uint64_t, ChannelSetup> setups_;
};

// A file-system cache manager: its cache object IS an FsCacheObject.
class FsManager : public CacheManager {
 public:
  class FsCache : public FsCacheObject {
   public:
    Result<std::vector<BlockData>> FlushBack(Range) override {
      return std::vector<BlockData>{};
    }
    Result<std::vector<BlockData>> DenyWrites(Range) override {
      return std::vector<BlockData>{};
    }
    Result<std::vector<BlockData>> WriteBack(Range) override {
      return std::vector<BlockData>{};
    }
    Status DeleteRange(Range) override { return Status::Ok(); }
    Status ZeroFill(Range) override { return Status::Ok(); }
    Status Populate(Offset, AccessRights, ByteSpan) override {
      return Status::Ok();
    }
    Status DestroyCache() override { return Status::Ok(); }
    Status InvalidateAttributes() override { return Status::Ok(); }
    Result<AttrUpdate> RecallAttributes() override { return AttrUpdate{}; }
  };

  Result<ChannelSetup> EstablishChannel(uint64_t, sp<PagerObject>) override {
    return ChannelSetup{std::make_shared<FsCache>(),
                        std::make_shared<PlainManager::PlainRights>(7)};
  }
  std::string cache_manager_name() const override { return "fs"; }
};

class DummyPager : public PagerObject {
 public:
  Result<Buffer> PageIn(Offset, Offset size, AccessRights) override {
    return Buffer(size);
  }
  Status PageOut(Offset, ByteSpan) override { return Status::Ok(); }
  Status WriteOut(Offset, ByteSpan) override { return Status::Ok(); }
  Status Sync(Offset, ByteSpan) override { return Status::Ok(); }
  void DoneWithPagerObject() override {}
};

TEST(PagerKeyTest, KeysAreUnique) {
  uint64_t a = NewPagerKey();
  uint64_t b = NewPagerKey();
  EXPECT_NE(a, b);
}

TEST(ChannelTableTest, BindEstablishesOnce) {
  PagerChannelTable table;
  auto manager = std::make_shared<PlainManager>();
  uint64_t key = NewPagerKey();
  auto make_pager = [](uint64_t) -> sp<PagerObject> {
    return std::make_shared<DummyPager>();
  };
  Result<sp<CacheRights>> r1 = table.Bind(1, key, manager, make_pager);
  ASSERT_TRUE(r1.ok());
  Result<sp<CacheRights>> r2 = table.Bind(1, key, manager, make_pager);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(*r1, *r2);  // same rights object both times
  EXPECT_EQ(manager->establish_calls, 1);
  EXPECT_EQ(table.NumChannels(), 1u);
}

TEST(ChannelTableTest, DistinctManagersGetDistinctChannels) {
  PagerChannelTable table;
  auto m1 = std::make_shared<PlainManager>();
  auto m2 = std::make_shared<PlainManager>();
  uint64_t key = NewPagerKey();
  auto make_pager = [](uint64_t) -> sp<PagerObject> {
    return std::make_shared<DummyPager>();
  };
  ASSERT_TRUE(table.Bind(1, key, m1, make_pager).ok());
  ASSERT_TRUE(table.Bind(1, key, m2, make_pager).ok());
  EXPECT_EQ(table.NumChannels(), 2u);
  EXPECT_EQ(table.ChannelsForFile(1).size(), 2u);
}

TEST(ChannelTableTest, DistinctFilesGetDistinctChannels) {
  PagerChannelTable table;
  auto manager = std::make_shared<PlainManager>();
  auto make_pager = [](uint64_t) -> sp<PagerObject> {
    return std::make_shared<DummyPager>();
  };
  ASSERT_TRUE(table.Bind(1, NewPagerKey(), manager, make_pager).ok());
  ASSERT_TRUE(table.Bind(2, NewPagerKey(), manager, make_pager).ok());
  EXPECT_EQ(table.NumChannels(), 2u);
  EXPECT_EQ(table.ChannelsForFile(1).size(), 1u);
  EXPECT_EQ(table.ChannelsForFile(2).size(), 1u);
}

TEST(ChannelTableTest, NarrowsFsCacheObjects) {
  PagerChannelTable table;
  auto plain = std::make_shared<PlainManager>();
  auto fs = std::make_shared<FsManager>();
  auto make_pager = [](uint64_t) -> sp<PagerObject> {
    return std::make_shared<DummyPager>();
  };
  ASSERT_TRUE(table.Bind(1, NewPagerKey(), plain, make_pager).ok());
  ASSERT_TRUE(table.Bind(2, NewPagerKey(), fs, make_pager).ok());
  // The pager discovers which peer is a file system via narrow.
  EXPECT_EQ(table.ChannelsForFile(1)[0].fs_cache, nullptr);
  EXPECT_NE(table.ChannelsForFile(2)[0].fs_cache, nullptr);
}

TEST(ChannelTableTest, RemoveChannelAllowsReestablish) {
  PagerChannelTable table;
  auto manager = std::make_shared<PlainManager>();
  uint64_t key = NewPagerKey();
  auto make_pager = [](uint64_t) -> sp<PagerObject> {
    return std::make_shared<DummyPager>();
  };
  ASSERT_TRUE(table.Bind(1, key, manager, make_pager).ok());
  uint64_t local_id = table.ChannelsForFile(1)[0].local_id;
  table.RemoveChannel(local_id);
  EXPECT_EQ(table.NumChannels(), 0u);
  ASSERT_TRUE(table.Bind(1, key, manager, make_pager).ok());
  EXPECT_EQ(manager->establish_calls, 2);
}

TEST(ChannelTableTest, RemoveFileDropsAllItsChannels) {
  PagerChannelTable table;
  auto m1 = std::make_shared<PlainManager>();
  auto m2 = std::make_shared<PlainManager>();
  auto make_pager = [](uint64_t) -> sp<PagerObject> {
    return std::make_shared<DummyPager>();
  };
  ASSERT_TRUE(table.Bind(1, NewPagerKey(), m1, make_pager).ok());
  ASSERT_TRUE(table.Bind(1, NewPagerKey(), m2, make_pager).ok());
  ASSERT_TRUE(table.Bind(2, NewPagerKey(), m1, make_pager).ok());
  table.RemoveFile(1);
  EXPECT_EQ(table.NumChannels(), 1u);
  EXPECT_TRUE(table.ChannelsForFile(1).empty());
}

TEST(ChannelTableTest, BindWithNullManagerFails) {
  PagerChannelTable table;
  EXPECT_EQ(table.Bind(1, NewPagerKey(), nullptr,
                       [](uint64_t) -> sp<PagerObject> { return nullptr; })
                .status().code(),
            ErrorCode::kInvalidArgument);
}

TEST(AttrUpdateTest, EmptyDetection) {
  AttrUpdate update;
  EXPECT_TRUE(update.empty());
  update.mtime_ns = 5;
  EXPECT_FALSE(update.empty());
}

// --- MemFile through the File interface ---

class MemFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    domain_ = Domain::Create("mem");
    file_ = MemFile::Create(domain_, &clock_);
  }

  FakeClock clock_;
  sp<Domain> domain_;
  sp<MemFile> file_;
};

TEST_F(MemFileTest, ReadWriteRoundTrip) {
  Buffer data(std::string("in memory"));
  ASSERT_TRUE(file_->Write(0, data.span()).ok());
  Buffer out(9);
  Result<size_t> n = file_->Read(0, out.mutable_span());
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 9u);
  EXPECT_EQ(out.ToString(), "in memory");
}

TEST_F(MemFileTest, StatTracksSizeAndTimes) {
  clock_.Advance(10);
  Buffer data(std::string("xyz"));
  ASSERT_TRUE(file_->Write(0, data.span()).ok());
  Result<FileAttributes> attrs = file_->Stat();
  ASSERT_TRUE(attrs.ok());
  EXPECT_EQ(attrs->size, 3u);
  EXPECT_EQ(attrs->kind, FileKind::kRegular);
  uint64_t mtime = attrs->mtime_ns;
  clock_.Advance(10);
  ASSERT_TRUE(file_->Write(3, data.span()).ok());
  EXPECT_GT(file_->Stat()->mtime_ns, mtime);
}

TEST_F(MemFileTest, SetLengthTruncatesAndExtends) {
  Buffer data(std::string("0123456789"));
  ASSERT_TRUE(file_->Write(0, data.span()).ok());
  ASSERT_TRUE(file_->SetLength(4).ok());
  EXPECT_EQ(*file_->GetLength(), 4u);
  ASSERT_TRUE(file_->SetLength(8).ok());
  Buffer out(8);
  EXPECT_EQ(*file_->Read(0, out.mutable_span()), 8u);
  EXPECT_EQ(out.ToString().substr(0, 4), "0123");
  for (int i = 4; i < 8; ++i) {
    EXPECT_EQ(out.data()[i], 0);
  }
}

TEST_F(MemFileTest, SetTimes) {
  ASSERT_TRUE(file_->SetTimes(77, 88).ok());
  Result<FileAttributes> attrs = file_->Stat();
  EXPECT_EQ(attrs->atime_ns, 77u);
  EXPECT_EQ(attrs->mtime_ns, 88u);
}

}  // namespace
}  // namespace springfs
