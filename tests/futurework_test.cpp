// Tests for the paper's section 8 future-work features, implemented here:
// name caching (eliminating open/domain-crossing overhead) and page-in
// read-ahead (the pager "given the opportunity to return more data than
// strictly needed").

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "src/layers/sfs/sfs.h"
#include "src/naming/name_cache.h"
#include "src/support/rng.h"
#include "src/vmm/vmm.h"

namespace springfs {
namespace {

class NameCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    device_ = std::make_unique<MemBlockDevice>(ufs::kBlockSize, 8192);
    SfsOptions options;
    options.placement = SfsPlacement::kTwoDomains;
    sfs_ = *CreateSfs(device_.get(), options, &clock_);
    cache_ = NameCacheContext::Create(Domain::Create("name-cache"), sfs_.root);
  }

  Credentials sys_ = Credentials::System();
  FakeClock clock_;
  std::unique_ptr<MemBlockDevice> device_;
  Sfs sfs_;
  sp<NameCacheContext> cache_;
};

TEST_F(NameCacheTest, SecondResolveIsAHit) {
  ASSERT_TRUE(sfs_.root->CreateFile(*Name::Parse("f"), sys_).ok());
  ASSERT_TRUE(cache_->Resolve(*Name::Parse("f"), sys_).ok());
  EXPECT_EQ(metrics::StatValue(*cache_, "misses"), 1u);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(cache_->Resolve(*Name::Parse("f"), sys_).ok());
  }
  std::map<std::string, uint64_t> stats = metrics::CollectFrom(*cache_);
  EXPECT_EQ(stats["misses"], 1u);
  EXPECT_EQ(stats["hits"], 10u);
}

TEST_F(NameCacheTest, CachedOpenSkipsEveryLayer) {
  // The section 8 claim: name caching eliminates the domain-crossing
  // overhead of open. After warming, resolves cross into NO domain.
  ASSERT_TRUE(sfs_.root->CreateFile(*Name::Parse("hot"), sys_).ok());
  ASSERT_TRUE(cache_->Resolve(*Name::Parse("hot"), sys_).ok());
  sfs_.disk_domain->ResetStats();
  sfs_.top_domain->ResetStats();
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(cache_->Resolve(*Name::Parse("hot"), sys_).ok());
  }
  EXPECT_EQ(metrics::StatValue(*sfs_.top_domain, "cross_calls"), 0u);
  EXPECT_EQ(metrics::StatValue(*sfs_.disk_domain, "cross_calls"), 0u);
}

TEST_F(NameCacheTest, MutationsInvalidate) {
  ASSERT_TRUE(sfs_.root->CreateFile(*Name::Parse("f"), sys_).ok());
  sp<Object> before = *cache_->Resolve(*Name::Parse("f"), sys_);
  ASSERT_TRUE(cache_->Unbind(*Name::Parse("f"), sys_).ok());
  EXPECT_EQ(cache_->Resolve(*Name::Parse("f"), sys_).status().code(),
            ErrorCode::kNotFound);
  EXPECT_GE(metrics::StatValue(*cache_, "invalidations"), 1u);
}

TEST_F(NameCacheTest, InvalidationCoversDescendants) {
  ASSERT_TRUE(sfs_.root->CreateContext(*Name::Parse("d"), sys_).ok());
  ASSERT_TRUE(sfs_.root->CreateFile(*Name::Parse("d/f"), sys_).ok());
  ASSERT_TRUE(cache_->Resolve(*Name::Parse("d/f"), sys_).ok());
  ASSERT_TRUE(cache_->Resolve(*Name::Parse("d"), sys_).ok());
  // Unbinding the directory entry drops both cached paths.
  ASSERT_TRUE(cache_->Unbind(*Name::Parse("d/f"), sys_).ok());
  ASSERT_TRUE(cache_->Resolve(*Name::Parse("d"), sys_).ok());  // still fine
  EXPECT_EQ(cache_->Resolve(*Name::Parse("d/f"), sys_).status().code(),
            ErrorCode::kNotFound);
  // Prefix logic must not over-invalidate sibling names ("d" vs "dd").
  ASSERT_TRUE(sfs_.root->CreateFile(*Name::Parse("dd"), sys_).ok());
  ASSERT_TRUE(cache_->Resolve(*Name::Parse("dd"), sys_).ok());
  uint64_t invals = metrics::StatValue(*cache_, "invalidations");
  ASSERT_TRUE(cache_->CreateContext(*Name::Parse("d/sub"), sys_).ok());
  ASSERT_TRUE(cache_->Resolve(*Name::Parse("dd"), sys_).ok());
  EXPECT_EQ(metrics::StatValue(*cache_, "invalidations"), invals)
      << "'d/...' invalidation must not touch 'dd'";
}

TEST_F(NameCacheTest, CapacityEvictsFifo) {
  sp<NameCacheContext> small =
      NameCacheContext::Create(Domain::Create("nc"), sfs_.root, 2);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(sfs_.root->CreateFile(
        Name::Single("f" + std::to_string(i)), sys_).ok());
    ASSERT_TRUE(small->Resolve(Name::Single("f" + std::to_string(i)), sys_)
                    .ok());
  }
  EXPECT_EQ(metrics::StatValue(*small, "evictions"), 2u);
  // The most recent two are hits; the evicted ones miss again.
  ASSERT_TRUE(small->Resolve(Name::Single("f3"), sys_).ok());
  EXPECT_EQ(metrics::StatValue(*small, "hits"), 1u);
}

TEST_F(NameCacheTest, FlushDropsEverything) {
  ASSERT_TRUE(sfs_.root->CreateFile(*Name::Parse("f"), sys_).ok());
  ASSERT_TRUE(cache_->Resolve(*Name::Parse("f"), sys_).ok());
  cache_->Flush();
  ASSERT_TRUE(cache_->Resolve(*Name::Parse("f"), sys_).ok());
  EXPECT_EQ(metrics::StatValue(*cache_, "misses"), 2u);
}

// --- negative entries ---

TEST_F(NameCacheTest, RepeatedMissingLookupsHitTheNegativeCache) {
  EXPECT_EQ(cache_->Resolve(*Name::Parse("ghost"), sys_).status().code(),
            ErrorCode::kNotFound);
  sfs_.disk_domain->ResetStats();
  sfs_.top_domain->ResetStats();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(cache_->Resolve(*Name::Parse("ghost"), sys_).status().code(),
              ErrorCode::kNotFound);
  }
  std::map<std::string, uint64_t> stats = metrics::CollectFrom(*cache_);
  EXPECT_EQ(stats["misses"], 1u);
  EXPECT_EQ(stats["negative_hits"], 10u);
  // The absence is served locally: no layer below is consulted.
  EXPECT_EQ(metrics::StatValue(*sfs_.top_domain, "cross_calls"), 0u);
  EXPECT_EQ(metrics::StatValue(*sfs_.disk_domain, "cross_calls"), 0u);
}

TEST_F(NameCacheTest, CreateThroughCacheInvalidatesNegatives) {
  EXPECT_EQ(cache_->Resolve(*Name::Parse("d"), sys_).status().code(),
            ErrorCode::kNotFound);
  // Any later name under it is unknown too.
  EXPECT_EQ(cache_->Resolve(*Name::Parse("other"), sys_).status().code(),
            ErrorCode::kNotFound);
  ASSERT_TRUE(cache_->CreateContext(*Name::Parse("d"), sys_).ok());
  // The generation bump retires BOTH negatives, not just the created path:
  // the next probe for each re-asks the target instead of trusting a
  // pre-mutation absence.
  EXPECT_TRUE(cache_->Resolve(*Name::Parse("d"), sys_).ok());
  uint64_t negative_hits = metrics::StatValue(*cache_, "negative_hits");
  EXPECT_EQ(cache_->Resolve(*Name::Parse("other"), sys_).status().code(),
            ErrorCode::kNotFound);
  EXPECT_EQ(metrics::StatValue(*cache_, "negative_hits"), negative_hits)
      << "a stale negative must re-ask the target, not answer locally";
}

TEST_F(NameCacheTest, BindThroughCacheInvalidatesNegatives) {
  ASSERT_TRUE(sfs_.root->CreateFile(*Name::Parse("src"), sys_).ok());
  sp<Object> object = *cache_->Resolve(*Name::Parse("src"), sys_);
  EXPECT_EQ(cache_->Resolve(*Name::Parse("alias"), sys_).status().code(),
            ErrorCode::kNotFound);
  ASSERT_TRUE(cache_->Bind(*Name::Parse("alias"), object, sys_).ok());
  EXPECT_TRUE(cache_->Resolve(*Name::Parse("alias"), sys_).ok());
}

TEST_F(NameCacheTest, UnlinkThroughCacheYieldsFreshNegative) {
  ASSERT_TRUE(sfs_.root->CreateFile(*Name::Parse("f"), sys_).ok());
  ASSERT_TRUE(cache_->Resolve(*Name::Parse("f"), sys_).ok());
  ASSERT_TRUE(cache_->Unbind(*Name::Parse("f"), sys_).ok());
  // First post-unlink probe asks the target (and caches the absence); the
  // second is answered locally.
  EXPECT_EQ(cache_->Resolve(*Name::Parse("f"), sys_).status().code(),
            ErrorCode::kNotFound);
  EXPECT_EQ(metrics::StatValue(*cache_, "negative_hits"), 0u);
  EXPECT_EQ(cache_->Resolve(*Name::Parse("f"), sys_).status().code(),
            ErrorCode::kNotFound);
  EXPECT_EQ(metrics::StatValue(*cache_, "negative_hits"), 1u);
}

TEST_F(NameCacheTest, FlushDropsNegativesToo) {
  EXPECT_EQ(cache_->Resolve(*Name::Parse("late"), sys_).status().code(),
            ErrorCode::kNotFound);
  cache_->Flush();
  // An out-of-band create the cache never saw: only the flush saves us.
  ASSERT_TRUE(sfs_.root->CreateFile(*Name::Parse("late"), sys_).ok());
  EXPECT_TRUE(cache_->Resolve(*Name::Parse("late"), sys_).ok());
}

TEST_F(NameCacheTest, NegativeEntriesRespectCapacity) {
  sp<NameCacheContext> small =
      NameCacheContext::Create(Domain::Create("nc"), sfs_.root, 2);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(small->Resolve(Name::Single("no" + std::to_string(i)), sys_)
                  .status()
                  .code(),
              ErrorCode::kNotFound);
  }
  EXPECT_EQ(metrics::StatValue(*small, "evictions"), 2u);
}

// --- read-ahead ---

class ReadAheadTest : public ::testing::Test {
 protected:
  Sfs MakeSfs(uint32_t read_ahead) {
    device_ = std::make_unique<MemBlockDevice>(ufs::kBlockSize, 8192);
    SfsOptions options;
    options.coherency.read_ahead_pages = read_ahead;
    return *CreateSfs(device_.get(), options, &clock_);
  }

  Credentials sys_ = Credentials::System();
  FakeClock clock_;
  std::unique_ptr<MemBlockDevice> device_;
};

TEST_F(ReadAheadTest, SequentialMappedReadFaultsOncePerWindow) {
  constexpr uint32_t kWindow = 7;
  Sfs sfs = MakeSfs(kWindow);
  sp<File> file = *sfs.root->CreateFile(*Name::Parse("seq"), sys_);
  Rng rng(1);
  Buffer data = rng.RandomBuffer(16 * kPageSize);
  ASSERT_TRUE(file->Write(0, data.span()).ok());

  sp<Vmm> vmm = Vmm::Create(Domain::Create("n"), "vmm");
  sp<MappedRegion> region = *vmm->Map(file, AccessRights::kReadOnly);
  Buffer out(kPageSize);
  for (int p = 0; p < 16; ++p) {
    ASSERT_TRUE(region->Read(Offset{static_cast<uint64_t>(p)} * kPageSize,
                             out.mutable_span()).ok());
  }
  // 16 pages with an 8-page grant window: 2 faults instead of 16.
  EXPECT_LE(metrics::StatValue(*vmm, "faults"), 2u)
      << "read-ahead did not batch the faults";
  // Content must still be exact.
  Buffer all(16 * kPageSize);
  ASSERT_TRUE(region->Read(0, all.mutable_span()).ok());
  EXPECT_EQ(Fnv1a64(all.span()), Fnv1a64(data.span()));
}

TEST_F(ReadAheadTest, WithoutReadAheadEveryPageFaults) {
  Sfs sfs = MakeSfs(0);
  sp<File> file = *sfs.root->CreateFile(*Name::Parse("seq"), sys_);
  Rng rng(1);
  Buffer data = rng.RandomBuffer(16 * kPageSize);
  ASSERT_TRUE(file->Write(0, data.span()).ok());
  // Both read-ahead stages off: the layer grants no window and the VMM
  // does not cluster faults, so this is the true one-fault-per-page
  // control.
  VmmOptions no_cluster;
  no_cluster.read_ahead_pages = 0;
  sp<Vmm> vmm = Vmm::Create(Domain::Create("n"), "vmm", no_cluster);
  sp<MappedRegion> region = *vmm->Map(file, AccessRights::kReadOnly);
  Buffer out(kPageSize);
  for (int p = 0; p < 16; ++p) {
    ASSERT_TRUE(region->Read(Offset{static_cast<uint64_t>(p)} * kPageSize,
                             out.mutable_span()).ok());
  }
  EXPECT_EQ(metrics::StatValue(*vmm, "faults"), 16u);
}

TEST_F(ReadAheadTest, ReadAheadClampsAtEof) {
  Sfs sfs = MakeSfs(32);
  sp<File> file = *sfs.root->CreateFile(*Name::Parse("short"), sys_);
  Buffer data(std::string("tiny"));
  ASSERT_TRUE(file->Write(0, data.span()).ok());
  sp<Vmm> vmm = Vmm::Create(Domain::Create("n"), "vmm");
  sp<MappedRegion> region = *vmm->Map(file, AccessRights::kReadOnly);
  Buffer out(4);
  ASSERT_TRUE(region->Read(0, out.mutable_span()).ok());
  EXPECT_EQ(out.ToString(), "tiny");
  EXPECT_LE(metrics::StatValue(*vmm, "pages_cached"), 1u);
}

TEST_F(ReadAheadTest, VmmClusterClampsToPartialPageAtEof) {
  // Layer read-ahead off; only the VMM's own fault clustering is active.
  // The file ends mid-page, so a widened cluster request crosses EOF and
  // the layer returns a short (partial) reply: the VMM must keep the
  // partial tail page and stay byte-exact.
  Sfs sfs = MakeSfs(0);
  sp<File> file = *sfs.root->CreateFile(*Name::Parse("partial"), sys_);
  Rng rng(7);
  Buffer data = rng.RandomBuffer(2 * kPageSize + 100);
  ASSERT_TRUE(file->Write(0, data.span()).ok());

  sp<Vmm> vmm = Vmm::Create(Domain::Create("n"), "vmm");
  sp<MappedRegion> region = *vmm->Map(file, AccessRights::kReadOnly);
  Buffer out(data.size());
  ASSERT_TRUE(region->Read(0, out.mutable_span()).ok());
  EXPECT_EQ(Fnv1a64(out.span()), Fnv1a64(data.span()));
  // Clustering must not fabricate pages past the end of the file: three
  // pages of content, at most three cached (the tail one partial).
  EXPECT_LE(metrics::StatValue(*vmm, "pages_cached"), 3u);
  EXPECT_LE(metrics::StatValue(*vmm, "faults"), 3u);
}

TEST_F(ReadAheadTest, WriteFaultsAreNotExtended) {
  // Read-ahead grants extra pages read-only; a write fault must stay
  // page-granular so the writer set stays tight.
  Sfs sfs = MakeSfs(8);
  sp<File> file = *sfs.root->CreateFile(*Name::Parse("w"), sys_);
  ASSERT_TRUE(file->SetLength(8 * kPageSize).ok());
  sp<Vmm> vmm = Vmm::Create(Domain::Create("n"), "vmm");
  sp<MappedRegion> region = *vmm->Map(file, AccessRights::kReadWrite);
  Buffer one(std::string("x"));
  ASSERT_TRUE(region->Write(0, one.span()).ok());
  EXPECT_EQ(metrics::StatValue(*vmm, "pages_cached"), 1u);
}

}  // namespace
}  // namespace springfs
