// Cross-module integration tests: the section 4.4 configuration recipe,
// deep heterogeneous stacks, real-thread transport, POSIX over DFS, and
// whole-system consistency (workload -> sync -> fsck).

#include <gtest/gtest.h>

#include "src/blockdev/decorators.h"
#include "src/fs/registry.h"
#include "src/layers/cfs/cfs_layer.h"
#include "src/layers/compfs/comp_layer.h"
#include "src/layers/cryptfs/crypt_layer.h"
#include "src/layers/dfs/dfs_client.h"
#include "src/layers/dfs/dfs_server.h"
#include "src/layers/mirrorfs/mirror_layer.h"
#include "src/layers/passfs/pass_layer.h"
#include "src/layers/sfs/sfs.h"
#include "src/naming/views.h"
#include "src/posix/posix_shim.h"
#include "src/support/rng.h"
#include "src/ufs/checker.h"

namespace springfs {
namespace {

using dfs::DfsClient;
using dfs::DfsServer;

// --- the section 4.4 recipe through the registry ---

class RegistryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    domain_ = Domain::Create("admin");
    root_ = MemContext::Create(domain_);
    ASSERT_TRUE(EnsureWellKnownContexts(root_, sys_, domain_).ok());
    device_ = std::make_unique<MemBlockDevice>(ufs::kBlockSize, 8192);
    sfs_ = *CreateSfs(device_.get(), SfsOptions{}, &clock_);
    ASSERT_TRUE(ExportFs(root_, "sfs0", sfs_.root, sys_).ok());
  }

  Credentials sys_ = Credentials::System();
  FakeClock clock_;
  // The device is declared FIRST so it is destroyed LAST: the name space
  // (root_) holds bindings that keep the whole stack — and therefore the
  // mounted UFS — alive, and the UFS syncs to the device on unmount.
  std::unique_ptr<MemBlockDevice> device_;
  sp<Domain> domain_;
  sp<MemContext> root_;
  Sfs sfs_;
};

TEST_F(RegistryTest, WellKnownContextsExist) {
  EXPECT_TRUE(ResolveAs<Context>(root_, "fs_creators", sys_).ok());
  EXPECT_TRUE(ResolveAs<Context>(root_, "fs", sys_).ok());
  // Idempotent.
  EXPECT_TRUE(EnsureWellKnownContexts(root_, sys_, domain_).ok());
}

TEST_F(RegistryTest, RegisterAndLookupCreator) {
  auto creator = std::make_shared<LambdaFsCreator>(
      "passfs_creator", [&]() -> Result<sp<StackableFs>> {
        return sp<StackableFs>(PassLayer::Create(domain_, {}, 0, &clock_));
      });
  ASSERT_TRUE(RegisterCreator(root_, creator, sys_).ok());
  Result<sp<StackableFsCreator>> found =
      LookupCreator(root_, "passfs_creator", sys_);
  ASSERT_TRUE(found.ok());
  EXPECT_EQ((*found)->creator_name(), "passfs_creator");
  EXPECT_EQ(LookupCreator(root_, "missing_creator", sys_).status().code(),
            ErrorCode::kNotFound);
}

TEST_F(RegistryTest, BuildStackRunsTheSection44Recipe) {
  ASSERT_TRUE(RegisterCreator(
                  root_,
                  std::make_shared<LambdaFsCreator>(
                      "compfs_creator",
                      [&]() -> Result<sp<StackableFs>> {
                        return sp<StackableFs>(CompLayer::Create(
                            domain_, CompLayerOptions{}, &clock_));
                      }),
                  sys_)
                  .ok());
  ASSERT_TRUE(RegisterCreator(
                  root_,
                  std::make_shared<LambdaFsCreator>(
                      "cryptfs_creator",
                      [&]() -> Result<sp<StackableFs>> {
                        return sp<StackableFs>(CryptLayer::Create(
                            domain_, "recipe-key", {}, &clock_));
                      }),
                  sys_)
                  .ok());

  StackSpec spec;
  spec.base_fs = "sfs0";
  spec.layers = {"compfs_creator", "cryptfs_creator"};
  spec.export_as = "secure_docs";
  Result<sp<StackableFs>> top = BuildStack(root_, spec, sys_);
  ASSERT_TRUE(top.ok()) << top.status().ToString();
  EXPECT_EQ((*top)->GetFsInfo()->type,
            "cryptfs(compfs(coherency(disk)))");

  // The stack is exported into the name space and usable through it.
  Result<sp<StackableFs>> via_ns =
      ResolveAs<StackableFs>(root_, "fs/secure_docs", sys_);
  ASSERT_TRUE(via_ns.ok());
  sp<File> file = (*via_ns)->CreateFile(*Name::Parse("f"), sys_).take_value();
  Buffer data(std::string("compressed then encrypted"));
  ASSERT_TRUE(file->Write(0, data.span()).ok());
  Buffer out(data.size());
  ASSERT_TRUE(file->Read(0, out.mutable_span()).ok());
  EXPECT_EQ(out, data);
}

TEST_F(RegistryTest, BuildStackFailsOnMissingBase) {
  StackSpec spec;
  spec.base_fs = "nope";
  EXPECT_EQ(BuildStack(root_, spec, sys_).status().code(),
            ErrorCode::kNotFound);
}

// --- deep heterogeneous stack: crypt on pass on comp on SFS ---

TEST(DeepStackTest, FourLayersRoundTripAndPersist) {
  FakeClock clock;
  MemBlockDevice device(ufs::kBlockSize, 16384);
  Credentials sys = Credentials::System();
  Sfs sfs = *CreateSfs(&device, SfsOptions{}, &clock);

  sp<CompLayer> comp =
      CompLayer::Create(Domain::Create("comp"), CompLayerOptions{}, &clock);
  ASSERT_TRUE(comp->StackOn(sfs.root).ok());
  sp<PassLayer> pass = PassLayer::Create(Domain::Create("pass"), {}, 0, &clock);
  ASSERT_TRUE(pass->StackOn(comp).ok());
  sp<CryptLayer> crypt =
      CryptLayer::Create(Domain::Create("crypt"), "deep", {}, &clock);
  ASSERT_TRUE(crypt->StackOn(pass).ok());

  EXPECT_EQ(crypt->GetFsInfo()->type,
            "cryptfs(passfs(compfs(coherency(disk))))");
  EXPECT_EQ(crypt->GetFsInfo()->stack_depth, 5u);

  sp<File> file = crypt->CreateFile(*Name::Parse("f"), sys).take_value();
  Rng rng(99);
  Buffer data = rng.CompressibleBuffer(5 * kPageSize + 333);
  ASSERT_TRUE(file->Write(0, data.span()).ok());
  ASSERT_TRUE(crypt->SyncFs().ok());

  Buffer out(data.size());
  ASSERT_TRUE(file->Read(0, out.mutable_span()).ok());
  EXPECT_EQ(out, data);

  // Ciphertext below the crypt layer; random-looking, so the compression
  // layer stored it raw.
  sp<File> below = *ResolveAs<File>(pass, "f", sys);
  Buffer raw(64);
  ASSERT_TRUE(below->Read(0, raw.mutable_span()).ok());
  EXPECT_NE(Fnv1a64(raw.span()), Fnv1a64(data.subspan(0, 64)));
}

// --- real threads: the whole stack under ThreadTransport ---

TEST(ThreadTransportIntegrationTest, SfsWorksWithRealThreadHandoff) {
  ThreadTransport transport;
  Transport* old = Domain::SetDefaultTransport(&transport);
  {
    FakeClock clock;
    MemBlockDevice device(ufs::kBlockSize, 8192);
    Credentials sys = Credentials::System();
    SfsOptions options;
    options.placement = SfsPlacement::kTwoDomains;
    Sfs sfs = *CreateSfs(&device, options, &clock);
    sp<File> file = sfs.root->CreateFile(*Name::Parse("t"), sys).take_value();
    Buffer data(std::string("threads for real"));
    ASSERT_TRUE(file->Write(0, data.span()).ok());
    Buffer out(data.size());
    ASSERT_TRUE(file->Read(0, out.mutable_span()).ok());
    EXPECT_EQ(out, data);

    // Mapped client with coherency callbacks across real threads.
    sp<Vmm> vmm = Vmm::Create(Domain::Create("client"), "vmm");
    sp<MappedRegion> region =
        vmm->Map(file, AccessRights::kReadWrite).take_value();
    Buffer patch(std::string("THREADS"));
    ASSERT_TRUE(region->Write(0, patch.span()).ok());
    ASSERT_TRUE(file->Read(0, out.mutable_span()).ok());
    EXPECT_EQ(out.ToString().substr(0, 7), "THREADS");
    ASSERT_TRUE(sfs.root->SyncFs().ok());
  }
  Domain::SetDefaultTransport(old);
}

TEST(ThreadTransportIntegrationTest, ConcurrentWritersOnOneSfs) {
  ThreadTransport transport;
  Transport* old = Domain::SetDefaultTransport(&transport);
  {
    FakeClock clock;
    MemBlockDevice device(ufs::kBlockSize, 8192);
    Credentials sys = Credentials::System();
    Sfs sfs = *CreateSfs(&device, SfsOptions{}, &clock);
    // Eight client threads hammer eight files through the same stack.
    std::vector<std::thread> threads;
    std::atomic<int> failures{0};
    for (int t = 0; t < 8; ++t) {
      threads.emplace_back([&, t] {
        std::string name = "f" + std::to_string(t);
        Result<sp<File>> file = sfs.root->CreateFile(Name::Single(name), sys);
        if (!file.ok()) {
          ++failures;
          return;
        }
        Rng rng(t);
        for (int i = 0; i < 50; ++i) {
          Buffer data = rng.RandomBuffer(512);
          if (!(*file)->Write(i * 512, data.span()).ok()) {
            ++failures;
            return;
          }
          Buffer out(512);
          if (!(*file)->Read(i * 512, out.mutable_span()).ok() ||
              !(out == data)) {
            ++failures;
            return;
          }
        }
      });
    }
    for (auto& th : threads) {
      th.join();
    }
    EXPECT_EQ(failures.load(), 0);
    ASSERT_TRUE(sfs.root->SyncFs().ok());
  }
  Domain::SetDefaultTransport(old);
}

// --- POSIX over a DFS mount ---

TEST(PosixOverDfsTest, UnixStyleAccessToRemoteFiles) {
  FakeClock clock;
  net::Network network(&clock, 1000);
  sp<net::Node> server_node = network.AddNode("server");
  sp<net::Node> client_node = network.AddNode("client");
  MemBlockDevice device(ufs::kBlockSize, 8192);
  Sfs sfs = *CreateSfs(&device, SfsOptions{}, &clock);
  sp<DfsServer> server =
      *DfsServer::Create(server_node, &network, "dfs", sfs.root, &clock);
  sp<DfsClient> client =
      *DfsClient::Mount(client_node, &network, "server", "dfs");

  // The POSIX shim needs a StackableFs-ish CreateFile; wrap the client
  // context ops directly.
  posix::Process proc(client);
  // Open with kCreate requires StackableFs; DfsClient is a Context+Fs, so
  // create through the client API then open through POSIX.
  ASSERT_TRUE(client->CreateFile(*Name::Parse("remote.txt"),
                                 Credentials::System()).ok());
  Result<int> fd = proc.Open("remote.txt", posix::kRdWr);
  ASSERT_TRUE(fd.ok()) << fd.status().ToString();
  Buffer data(std::string("posix across the network"));
  EXPECT_EQ(*proc.Write(*fd, data.span()), data.size());
  ASSERT_TRUE(proc.Lseek(*fd, 0, posix::Whence::kSet).ok());
  Buffer out(data.size());
  EXPECT_EQ(*proc.Read(*fd, out.mutable_span()), data.size());
  EXPECT_EQ(out, data);
  EXPECT_EQ(proc.Fstat(*fd)->size, data.size());

  // Visible server-side.
  Result<sp<File>> local =
      ResolveAs<File>(sfs.root, "remote.txt", Credentials::System());
  ASSERT_TRUE(local.ok());
  EXPECT_EQ((*local)->Stat()->size, data.size());
}

// --- whole-system consistency: mixed workload then fsck ---

TEST(WholeSystemTest, MixedWorkloadLeavesCleanDisk) {
  FakeClock clock;
  MemBlockDevice device(ufs::kBlockSize, 16384);
  Credentials sys = Credentials::System();
  {
    Sfs sfs = *CreateSfs(&device, SfsOptions{}, &clock);
    sp<CompLayer> comp =
        CompLayer::Create(Domain::Create("comp"), CompLayerOptions{}, &clock);
    ASSERT_TRUE(comp->StackOn(sfs.root).ok());

    Rng rng(123);
    // Mixed traffic: files via SFS, files via COMPFS, directories, mapped
    // clients, removals.
    ASSERT_TRUE(sfs.root->CreateContext(*Name::Parse("dir"), sys).ok());
    for (int i = 0; i < 10; ++i) {
      sp<File> plain = sfs.root->CreateFile(
          Name::Single("p" + std::to_string(i)), sys).take_value();
      Buffer data = rng.RandomBuffer(rng.Range(1, 3 * kPageSize));
      ASSERT_TRUE(plain->Write(0, data.span()).ok());
      sp<File> compressed = comp->CreateFile(
          Name::Single("c" + std::to_string(i)), sys).take_value();
      Buffer cdata = rng.CompressibleBuffer(rng.Range(1, 3 * kPageSize));
      ASSERT_TRUE(compressed->Write(0, cdata.span()).ok());
      ASSERT_TRUE(compressed->SyncFile().ok());
    }
    sp<Vmm> vmm = Vmm::Create(Domain::Create("n"), "vmm");
    sp<File> mapped_file = sfs.root->CreateFile(*Name::Parse("m"), sys)
                               .take_value();
    ASSERT_TRUE(mapped_file->SetLength(2 * kPageSize).ok());
    sp<MappedRegion> region =
        vmm->Map(mapped_file, AccessRights::kReadWrite).take_value();
    Buffer mapped_data = rng.RandomBuffer(kPageSize);
    ASSERT_TRUE(region->Write(0, mapped_data.span()).ok());
    ASSERT_TRUE(region->Sync().ok());
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(sfs.root->Unbind(Name::Single("p" + std::to_string(i)),
                                   sys).ok());
      ASSERT_TRUE(comp->Unbind(Name::Single("c" + std::to_string(i)), sys)
                      .ok());
    }
    ASSERT_TRUE(comp->SyncFs().ok());
    ASSERT_TRUE(sfs.root->SyncFs().ok());
  }
  // Unmounted: the device must check clean.
  ufs::Checker checker(&device);
  Result<ufs::CheckReport> report = checker.Check();
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->clean()) << report->Summary();
}

// --- per-file interposition on top of a real stack (section 5) ---

TEST(InterpositionIntegrationTest, DenyingWatchdogBlocksWrites) {
  FakeClock clock;
  MemBlockDevice device(ufs::kBlockSize, 8192);
  Credentials sys = Credentials::System();
  Sfs sfs = *CreateSfs(&device, SfsOptions{}, &clock);
  sp<Domain> domain = Domain::Create("admin");
  sp<MemContext> root = MemContext::Create(domain);
  ASSERT_TRUE(root->Bind(Name::Single("vol"), sfs.root, sys).ok());

  // A read-only watchdog.
  class ReadOnlyFile : public File {
   public:
    explicit ReadOnlyFile(sp<File> original) : original_(std::move(original)) {}
    Result<sp<CacheRights>> Bind(const sp<CacheManager>& caller,
                                 AccessRights access) override {
      if (access == AccessRights::kReadWrite) {
        return ErrPermissionDenied("read-only watchdog");
      }
      return original_->Bind(caller, access);
    }
    Result<Offset> GetLength() override { return original_->GetLength(); }
    Status SetLength(Offset) override {
      return ErrPermissionDenied("read-only watchdog");
    }
    Result<size_t> Read(Offset offset, MutableByteSpan out) override {
      return original_->Read(offset, out);
    }
    Result<size_t> Write(Offset, ByteSpan) override {
      return ErrPermissionDenied("read-only watchdog");
    }
    Result<FileAttributes> Stat() override { return original_->Stat(); }
    Status SetTimes(uint64_t, uint64_t) override {
      return ErrPermissionDenied("read-only watchdog");
    }
    Status SyncFile() override { return original_->SyncFile(); }

   private:
    sp<File> original_;
  };

  sp<StackableFs> vol = *ResolveAs<StackableFs>(root, "vol", sys);
  sp<File> file = vol->CreateFile(*Name::Parse("protected"), sys).take_value();
  Buffer data(std::string("initial"));
  ASSERT_TRUE(file->Write(0, data.span()).ok());

  ASSERT_TRUE(InterposeOnContext(
                  root, "vol",
                  [&](const std::string& component,
                      sp<Object> original) -> Result<sp<Object>> {
                    if (component == "protected") {
                      sp<File> orig = narrow<File>(original);
                      return sp<Object>(std::make_shared<ReadOnlyFile>(orig));
                    }
                    return original;
                  },
                  sys, domain)
                  .ok());

  sp<File> via_ns = *ResolveAs<File>(root, "vol/protected", sys);
  Buffer out(7);
  EXPECT_EQ(*via_ns->Read(0, out.mutable_span()), 7u);
  EXPECT_EQ(out.ToString(), "initial");
  Buffer attack(std::string("mutated"));
  EXPECT_EQ(via_ns->Write(0, attack.span()).status().code(),
            ErrorCode::kPermissionDenied);
  sp<Vmm> vmm = Vmm::Create(Domain::Create("n"), "vmm");
  EXPECT_EQ(vmm->Map(via_ns, AccessRights::kReadWrite).status().code(),
            ErrorCode::kPermissionDenied);
  EXPECT_TRUE(vmm->Map(via_ns, AccessRights::kReadOnly).ok());
}

}  // namespace
}  // namespace springfs
