// Tests for MIRRORFS (the two-underlying-FS layer of Figure 3) and MONOFS
// (the monolithic Table 3 baseline).

#include <gtest/gtest.h>

#include "src/blockdev/decorators.h"
#include "src/layers/mirrorfs/mirror_layer.h"
#include "src/layers/monofs/mono_fs.h"
#include "src/layers/sfs/sfs.h"
#include "src/support/rng.h"

namespace springfs {
namespace {

class MirrorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Two independent SFS instances on two (fault-injectable) devices.
    for (int i = 0; i < 2; ++i) {
      faulty_[i] = new FaultyBlockDevice(
          std::make_unique<MemBlockDevice>(ufs::kBlockSize, 4096));
      devices_[i].reset(faulty_[i]);
      sfs_[i] = *CreateSfs(devices_[i].get(), SfsOptions{}, &clock_);
    }
    mirror_ = MirrorLayer::Create(Domain::Create("mirror"), &clock_);
    ASSERT_TRUE(mirror_->StackOn(sfs_[0].root).ok());
    ASSERT_TRUE(mirror_->StackOn(sfs_[1].root).ok());
  }

  Credentials sys_ = Credentials::System();
  FakeClock clock_;
  FaultyBlockDevice* faulty_[2];
  std::unique_ptr<BlockDevice> devices_[2];
  Sfs sfs_[2];
  sp<MirrorLayer> mirror_;
};

TEST_F(MirrorTest, RequiresTwoReplicas) {
  sp<MirrorLayer> lonely = MirrorLayer::Create(Domain::Create("m1"), &clock_);
  ASSERT_TRUE(lonely->StackOn(sfs_[0].root).ok());
  EXPECT_EQ(lonely->CreateFile(*Name::Parse("x"), sys_).status().code(),
            ErrorCode::kInvalidArgument);
  EXPECT_EQ(mirror_->NumReplicas(), 2u);
}

TEST_F(MirrorTest, WritesLandOnBothReplicas) {
  sp<File> file = *mirror_->CreateFile(*Name::Parse("both"), sys_);
  Buffer data(std::string("replicated"));
  ASSERT_TRUE(file->Write(0, data.span()).ok());
  ASSERT_TRUE(mirror_->SyncFs().ok());
  for (int i = 0; i < 2; ++i) {
    Result<sp<File>> replica = ResolveAs<File>(sfs_[i].root, "both", sys_);
    ASSERT_TRUE(replica.ok()) << "replica " << i;
    Buffer out(10);
    EXPECT_EQ(*(*replica)->Read(0, out.mutable_span()), 10u);
    EXPECT_EQ(out.ToString(), "replicated") << "replica " << i;
  }
  EXPECT_GE(metrics::StatValue(*mirror_, "write_fanouts"), 1u);
}

TEST_F(MirrorTest, ReadsFailOverWhenPrimaryDies) {
  sp<File> file = *mirror_->CreateFile(*Name::Parse("ha"), sys_);
  Buffer data(std::string("still served"));
  ASSERT_TRUE(file->Write(0, data.span()).ok());
  ASSERT_TRUE(mirror_->SyncFs().ok());

  faulty_[0]->set_broken(true);  // primary's disk dies
  // Re-resolve so the file handle is fresh (old handles may hold cached
  // pages; the failover path is in the mirror layer either way).
  sp<File> again = *ResolveAs<File>(mirror_, "ha", sys_);
  Buffer out(12);
  Result<size_t> n = again->Read(0, out.mutable_span());
  ASSERT_TRUE(n.ok()) << n.status().ToString();
  EXPECT_EQ(out.ToString(), "still served");
  EXPECT_GE(metrics::StatValue(*mirror_, "reads_failover"), 0u);
}

TEST_F(MirrorTest, DegradedWritesSucceedAndResilverRepairs) {
  sp<File> file = *mirror_->CreateFile(*Name::Parse("heal"), sys_);
  Buffer v1(std::string("version-one"));
  ASSERT_TRUE(file->Write(0, v1.span()).ok());
  ASSERT_TRUE(mirror_->SyncFs().ok());

  // Replica 1 dies; writes continue in degraded mode.
  faulty_[1]->set_broken(true);
  Buffer v2(std::string("version-two"));
  ASSERT_TRUE(file->Write(0, v2.span()).ok());
  Status sync_degraded = mirror_->SyncFs();
  EXPECT_TRUE(sync_degraded.ok()) << sync_degraded.ToString();

  // Replica 1 comes back holding stale data; resilver repairs it.
  faulty_[1]->set_broken(false);
  clock_.Advance(1000);
  ASSERT_TRUE(mirror_->Resilver(*Name::Parse("heal"), sys_).ok());
  ASSERT_TRUE(mirror_->SyncFs().ok());
  Result<sp<File>> replica1 = ResolveAs<File>(sfs_[1].root, "heal", sys_);
  ASSERT_TRUE(replica1.ok());
  Buffer out(11);
  EXPECT_EQ(*(*replica1)->Read(0, out.mutable_span()), 11u);
  EXPECT_EQ(out.ToString(), "version-two");
  EXPECT_GE(metrics::StatValue(*mirror_, "resilvered_files"), 1u);
}

TEST_F(MirrorTest, FailoverUnderSustainedWrites) {
  // A replica dies in the middle of a write-heavy workload: every write
  // and read issued afterwards must still succeed, and once the replica
  // returns, resilvering must bring it byte-identical to the survivor.
  sp<File> file = *mirror_->CreateFile(*Name::Parse("busy"), sys_);
  Rng rng(77);
  Buffer expected;
  constexpr int kRounds = 24;
  for (int round = 0; round < kRounds; ++round) {
    if (round == kRounds / 3) {
      faulty_[1]->set_broken(true);  // replica 1 dies mid-workload
    }
    uint64_t off = rng.Below(4 * ufs::kBlockSize);
    Buffer chunk = rng.RandomBuffer(rng.Range(1, ufs::kBlockSize));
    ASSERT_TRUE(file->Write(off, chunk.span()).ok()) << "round " << round;
    if (expected.size() < off + chunk.size()) {
      expected.resize(off + chunk.size());
    }
    expected.WriteAt(off, chunk.span());
    // Reads served while degraded must reflect all writes so far.
    Buffer out(expected.size());
    Result<size_t> n = file->Read(0, out.mutable_span());
    ASSERT_TRUE(n.ok()) << "round " << round << ": " << n.status().ToString();
    ASSERT_EQ(*n, expected.size()) << "round " << round;
    ASSERT_EQ(out, expected) << "round " << round;
    if (round % 5 == 4) {
      Status sync = mirror_->SyncFs();
      ASSERT_TRUE(sync.ok()) << "round " << round << ": " << sync.ToString();
    }
  }
  ASSERT_TRUE(mirror_->SyncFs().ok());
  // The dead replica rejected traffic (reads fault first on its page-in
  // path, so either counter may absorb the hits).
  BlockDeviceStats faults = faulty_[1]->stats();
  EXPECT_GE(faults.read_errors + faults.write_errors, 1u);

  // The replica comes back with stale contents; resilver repairs it.
  faulty_[1]->set_broken(false);
  clock_.Advance(1000);
  ASSERT_TRUE(mirror_->Resilver(*Name::Parse("busy"), sys_).ok());
  ASSERT_TRUE(mirror_->SyncFs().ok());
  Result<sp<File>> replica1 = ResolveAs<File>(sfs_[1].root, "busy", sys_);
  ASSERT_TRUE(replica1.ok());
  Buffer out(expected.size());
  ASSERT_EQ(*(*replica1)->Read(0, out.mutable_span()), expected.size());
  EXPECT_EQ(out, expected);
  EXPECT_GE(metrics::StatValue(*mirror_, "resilvered_files"), 1u);
}

TEST_F(MirrorTest, DirectoriesMirrorToo) {
  ASSERT_TRUE(mirror_->CreateContext(*Name::Parse("d"), sys_).ok());
  sp<File> file = *mirror_->CreateFile(*Name::Parse("d/f"), sys_);
  Buffer data(std::string("nested"));
  ASSERT_TRUE(file->Write(0, data.span()).ok());
  ASSERT_TRUE(mirror_->SyncFs().ok());
  for (int i = 0; i < 2; ++i) {
    EXPECT_TRUE(ResolveAs<File>(sfs_[i].root, "d/f", sys_).ok())
        << "replica " << i;
  }
  // Listing through the mirrored context.
  Result<sp<Context>> dir = ResolveAs<Context>(mirror_, "d", sys_);
  ASSERT_TRUE(dir.ok());
  Result<std::vector<BindingInfo>> list = (*dir)->List(sys_);
  ASSERT_TRUE(list.ok());
  EXPECT_EQ(list->size(), 1u);
}

TEST_F(MirrorTest, UnbindRemovesEverywhere) {
  ASSERT_TRUE(mirror_->CreateFile(*Name::Parse("gone"), sys_).ok());
  ASSERT_TRUE(mirror_->Unbind(*Name::Parse("gone"), sys_).ok());
  for (int i = 0; i < 2; ++i) {
    EXPECT_EQ(sfs_[i].root->Resolve(*Name::Parse("gone"), sys_).status().code(),
              ErrorCode::kNotFound);
  }
}

TEST_F(MirrorTest, FsInfoDescribesBothReplicas) {
  Result<FsInfo> info = mirror_->GetFsInfo();
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->type, "mirrorfs[2](coherency(disk),coherency(disk))");
  EXPECT_EQ(info->stack_depth, 3u);
}

// --- MONOFS ---

class MonoFsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    device_ = std::make_unique<MemBlockDevice>(ufs::kBlockSize, 4096);
    fs_ = MonoFs::Format(device_.get(), &clock_).take_value();
  }

  FakeClock clock_;
  std::unique_ptr<MemBlockDevice> device_;
  std::unique_ptr<MonoFs> fs_;
};

TEST_F(MonoFsTest, CreateOpenReadWriteStat) {
  Result<MonoFd> fd = fs_->Create("file");
  ASSERT_TRUE(fd.ok());
  Buffer data(std::string("direct calls"));
  ASSERT_TRUE(fs_->Write(*fd, 0, data.span()).ok());
  Buffer out(12);
  EXPECT_EQ(*fs_->Read(*fd, 0, out.mutable_span()), 12u);
  EXPECT_EQ(out.ToString(), "direct calls");
  Result<FileAttributes> attrs = fs_->Stat(*fd);
  ASSERT_TRUE(attrs.ok());
  EXPECT_EQ(attrs->size, 12u);
}

TEST_F(MonoFsTest, NameCacheServesRepeatOpens) {
  ASSERT_TRUE(fs_->Mkdir("a").ok());
  ASSERT_TRUE(fs_->Mkdir("a/b").ok());
  ASSERT_TRUE(fs_->Create("a/b/f").ok());
  ASSERT_TRUE(fs_->Open("a/b/f").ok());
  MonoFsStats before = fs_->stats();
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(fs_->Open("a/b/f").ok());
  }
  MonoFsStats after = fs_->stats();
  EXPECT_EQ(after.name_cache_misses, before.name_cache_misses);
  EXPECT_GE(after.name_cache_hits, before.name_cache_hits + 10);
}

TEST_F(MonoFsTest, BufferCacheAbsorbsRereads) {
  MonoFd fd = *fs_->Create("f");
  Rng rng(1);
  Buffer data = rng.RandomBuffer(2 * ufs::kBlockSize);
  ASSERT_TRUE(fs_->Write(fd, 0, data.span()).ok());
  Buffer out(data.size());
  ASSERT_TRUE(fs_->Read(fd, 0, out.mutable_span()).ok());
  MonoFsStats before = fs_->stats();
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(fs_->Read(fd, 0, out.mutable_span()).ok());
  }
  MonoFsStats after = fs_->stats();
  EXPECT_EQ(after.buffer_cache_misses, before.buffer_cache_misses);
}

TEST_F(MonoFsTest, SyncMakesDataDurable) {
  MonoFd fd = *fs_->Create("durable");
  Buffer data(std::string("survives"));
  ASSERT_TRUE(fs_->Write(fd, 0, data.span()).ok());
  ASSERT_TRUE(fs_->Sync().ok());
  fs_.reset();
  std::unique_ptr<MonoFs> again = MonoFs::Mount(device_.get(), &clock_).take_value();
  MonoFd fd2 = *again->Open("durable");
  Buffer out(8);
  EXPECT_EQ(*again->Read(fd2, 0, out.mutable_span()), 8u);
  EXPECT_EQ(out.ToString(), "survives");
}

TEST_F(MonoFsTest, TruncateDropsData) {
  MonoFd fd = *fs_->Create("t");
  Buffer data(std::string("0123456789"));
  ASSERT_TRUE(fs_->Write(fd, 0, data.span()).ok());
  ASSERT_TRUE(fs_->Sync().ok());
  ASSERT_TRUE(fs_->Truncate(fd, 4).ok());
  EXPECT_EQ(fs_->Stat(fd)->size, 4u);
  Buffer out(10);
  EXPECT_EQ(*fs_->Read(fd, 0, out.mutable_span()), 4u);
}

TEST_F(MonoFsTest, RemoveInvalidatesCaches) {
  MonoFd fd = *fs_->Create("r");
  Buffer data(std::string("x"));
  ASSERT_TRUE(fs_->Write(fd, 0, data.span()).ok());
  ASSERT_TRUE(fs_->Sync().ok());
  ASSERT_TRUE(fs_->Remove("r").ok());
  EXPECT_EQ(fs_->Open("r").status().code(), ErrorCode::kNotFound);
}

TEST_F(MonoFsTest, OpenMissingFails) {
  EXPECT_EQ(fs_->Open("nothing").status().code(), ErrorCode::kNotFound);
}

}  // namespace
}  // namespace springfs
