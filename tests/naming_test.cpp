// Unit tests for the naming architecture: names, contexts, ACLs, per-domain
// name spaces, and name-space interposition (paper sections 3.2 and 5).

#include <gtest/gtest.h>

#include "src/naming/mem_context.h"
#include "src/naming/views.h"

namespace springfs {
namespace {

class NamingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    domain_ = Domain::Create("naming");
    root_ = MemContext::Create(domain_);
  }

  Credentials sys_ = Credentials::System();
  sp<Domain> domain_;
  sp<MemContext> root_;
};

TEST_F(NamingTest, ParseSplitsComponents) {
  Result<Name> name = Name::Parse("/a/b/c");
  ASSERT_TRUE(name.ok());
  EXPECT_EQ(name->size(), 3u);
  EXPECT_EQ(name->front(), "a");
  EXPECT_EQ(name->back(), "c");
  EXPECT_EQ(name->ToString(), "a/b/c");
}

TEST_F(NamingTest, ParseIgnoresRedundantSlashesAndDots) {
  Result<Name> name = Name::Parse("//a///./b/");
  ASSERT_TRUE(name.ok());
  EXPECT_EQ(name->ToString(), "a/b");
}

TEST_F(NamingTest, ParseRejectsDotDot) {
  EXPECT_EQ(Name::Parse("a/../b").status().code(),
            ErrorCode::kInvalidArgument);
}

TEST_F(NamingTest, ParseEmptyIsEmptyName) {
  Result<Name> name = Name::Parse("");
  ASSERT_TRUE(name.ok());
  EXPECT_TRUE(name->empty());
}

TEST_F(NamingTest, NameAlgebra) {
  Name name = *Name::Parse("a/b/c");
  EXPECT_EQ(name.Rest().ToString(), "b/c");
  EXPECT_EQ(name.Parent().ToString(), "a/b");
  EXPECT_EQ(name.Join(*Name::Parse("d/e")).ToString(), "a/b/c/d/e");
  EXPECT_EQ(Name::Single("x").ToString(), "x");
}

TEST_F(NamingTest, BindThenResolve) {
  sp<Object> obj = root_;  // any object will do; a context is one
  ASSERT_TRUE(root_->Bind(Name::Single("x"), obj, sys_).ok());
  Result<sp<Object>> found = root_->Resolve(Name::Single("x"), sys_);
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(*found, obj);
}

TEST_F(NamingTest, ResolveMissingIsNotFound) {
  EXPECT_EQ(root_->Resolve(Name::Single("nope"), sys_).status().code(),
            ErrorCode::kNotFound);
}

TEST_F(NamingTest, DuplicateBindFailsWithoutReplace) {
  ASSERT_TRUE(root_->Bind(Name::Single("x"), root_, sys_).ok());
  EXPECT_EQ(root_->Bind(Name::Single("x"), root_, sys_).code(),
            ErrorCode::kAlreadyExists);
  EXPECT_TRUE(root_->Bind(Name::Single("x"), root_, sys_, /*replace=*/true).ok());
}

TEST_F(NamingTest, MultiComponentResolutionStepsThroughContexts) {
  Result<sp<Context>> a = root_->CreateContext(Name::Single("a"), sys_);
  ASSERT_TRUE(a.ok());
  Result<sp<Context>> b = (*a)->CreateContext(Name::Single("b"), sys_);
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE((*b)->Bind(Name::Single("leaf"), root_, sys_).ok());

  Result<sp<Object>> found = root_->Resolve(*Name::Parse("a/b/leaf"), sys_);
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(*found, root_);
}

TEST_F(NamingTest, ResolveThroughNonContextFails) {
  // Bind a plain object (not a context) then try to resolve through it.
  struct Leaf : Object {};
  sp<Object> leaf = std::make_shared<Leaf>();
  ASSERT_TRUE(root_->Bind(Name::Single("leaf"), leaf, sys_).ok());
  EXPECT_EQ(root_->Resolve(*Name::Parse("leaf/deeper"), sys_).status().code(),
            ErrorCode::kNotADirectory);
}

TEST_F(NamingTest, MultiComponentBindRequiresIntermediates) {
  EXPECT_EQ(root_->Bind(*Name::Parse("a/b"), root_, sys_).code(),
            ErrorCode::kNotFound);
  ASSERT_TRUE(root_->CreateContext(Name::Single("a"), sys_).ok());
  EXPECT_TRUE(root_->Bind(*Name::Parse("a/b"), root_, sys_).ok());
}

TEST_F(NamingTest, UnbindRemovesOnlyTheBinding) {
  ASSERT_TRUE(root_->Bind(Name::Single("x"), root_, sys_).ok());
  ASSERT_TRUE(root_->Unbind(Name::Single("x"), sys_).ok());
  EXPECT_EQ(root_->Resolve(Name::Single("x"), sys_).status().code(),
            ErrorCode::kNotFound);
  EXPECT_EQ(root_->Unbind(Name::Single("x"), sys_).code(),
            ErrorCode::kNotFound);
}

TEST_F(NamingTest, ListReportsContextness) {
  ASSERT_TRUE(root_->CreateContext(Name::Single("dir"), sys_).ok());
  struct Leaf : Object {};
  ASSERT_TRUE(root_->Bind(Name::Single("leaf"), std::make_shared<Leaf>(), sys_).ok());
  Result<std::vector<BindingInfo>> list = root_->List(sys_);
  ASSERT_TRUE(list.ok());
  ASSERT_EQ(list->size(), 2u);
  EXPECT_EQ((*list)[0].name, "dir");
  EXPECT_TRUE((*list)[0].is_context);
  EXPECT_EQ((*list)[1].name, "leaf");
  EXPECT_FALSE((*list)[1].is_context);
}

TEST_F(NamingTest, ResolveEmptyNameReturnsSelf) {
  Result<sp<Object>> self = root_->Resolve(Name(), sys_);
  ASSERT_TRUE(self.ok());
  EXPECT_EQ(narrow<Context>(*self), root_);
}

TEST_F(NamingTest, AclDeniesUnauthorizedBind) {
  sp<MemContext> secured =
      MemContext::Create(domain_, Acl::OwnedBy("alice"));
  Credentials alice = Credentials::User("alice");
  Credentials bob = Credentials::User("bob");
  EXPECT_TRUE(secured->Bind(Name::Single("x"), root_, alice).ok());
  EXPECT_EQ(secured->Bind(Name::Single("y"), root_, bob).code(),
            ErrorCode::kPermissionDenied);
  // Resolve is open in OwnedBy ACLs.
  EXPECT_TRUE(secured->Resolve(Name::Single("x"), bob).ok());
  // System passes everything.
  EXPECT_TRUE(secured->Bind(Name::Single("z"), root_, sys_).ok());
}

TEST_F(NamingTest, AclAdministration) {
  sp<MemContext> secured = MemContext::Create(domain_, Acl::OwnedBy("alice"));
  Credentials alice = Credentials::User("alice");
  Credentials bob = Credentials::User("bob");
  EXPECT_EQ(secured->SetAcl(Acl::Open(), bob).code(),
            ErrorCode::kPermissionDenied);
  EXPECT_TRUE(secured->SetAcl(Acl::Open(), alice).ok());
  EXPECT_TRUE(secured->Bind(Name::Single("x"), root_, bob).ok());
}

TEST_F(NamingTest, ResolveAsNarrowsResult) {
  ASSERT_TRUE(root_->CreateContext(Name::Single("dir"), sys_).ok());
  Result<sp<Context>> dir = ResolveAs<Context>(root_, "dir", sys_);
  EXPECT_TRUE(dir.ok());
  struct Leaf : Object {};
  ASSERT_TRUE(root_->Bind(Name::Single("leaf"), std::make_shared<Leaf>(), sys_).ok());
  EXPECT_EQ(ResolveAs<Context>(root_, "leaf", sys_).status().code(),
            ErrorCode::kWrongType);
}

// --- overlay (per-domain name space) ---

TEST_F(NamingTest, OverlayPrefersFrontFallsBackToBack) {
  sp<MemContext> shared = MemContext::Create(domain_);
  ASSERT_TRUE(shared->Bind(Name::Single("common"), shared, sys_).ok());

  DomainNamespace ns(domain_, shared);
  // Shared binding visible.
  EXPECT_TRUE(ns.root()->Resolve(Name::Single("common"), sys_).ok());
  // Private customization shadows without touching the shared space.
  struct Leaf : Object {};
  sp<Object> mine = std::make_shared<Leaf>();
  ASSERT_TRUE(ns.root()->Bind(Name::Single("common"), mine, sys_).ok());
  Result<sp<Object>> got = ns.root()->Resolve(Name::Single("common"), sys_);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, mine);
  // Shared space unchanged.
  Result<sp<Object>> shared_view = shared->Resolve(Name::Single("common"), sys_);
  ASSERT_TRUE(shared_view.ok());
  EXPECT_NE(*shared_view, mine);
}

TEST_F(NamingTest, TwoDomainNamespacesAreIndependent) {
  sp<MemContext> shared = MemContext::Create(domain_);
  DomainNamespace ns1(domain_, shared);
  DomainNamespace ns2(domain_, shared);
  struct Leaf : Object {};
  ASSERT_TRUE(ns1.root()->Bind(Name::Single("private"),
                               std::make_shared<Leaf>(), sys_).ok());
  EXPECT_EQ(ns2.root()->Resolve(Name::Single("private"), sys_).status().code(),
            ErrorCode::kNotFound);
}

TEST_F(NamingTest, OverlayListMergesWithoutDuplicates) {
  sp<MemContext> shared = MemContext::Create(domain_);
  ASSERT_TRUE(shared->Bind(Name::Single("a"), shared, sys_).ok());
  ASSERT_TRUE(shared->Bind(Name::Single("b"), shared, sys_).ok());
  DomainNamespace ns(domain_, shared);
  ASSERT_TRUE(ns.root()->Bind(Name::Single("b"), shared, sys_).ok());
  ASSERT_TRUE(ns.root()->Bind(Name::Single("c"), shared, sys_).ok());
  Result<std::vector<BindingInfo>> list = ns.root()->List(sys_);
  ASSERT_TRUE(list.ok());
  EXPECT_EQ(list->size(), 3u);
}

// --- interposition (section 5) ---

TEST_F(NamingTest, InterposerInterceptsSelectedResolutions) {
  struct Leaf : Object {};
  sp<Context> dir = *root_->CreateContext(Name::Single("dir"), sys_);
  sp<Object> original = std::make_shared<Leaf>();
  sp<Object> substitute = std::make_shared<Leaf>();
  ASSERT_TRUE(dir->Bind(Name::Single("watched"), original, sys_).ok());
  ASSERT_TRUE(dir->Bind(Name::Single("plain"), original, sys_).ok());

  Result<sp<InterposerContext>> interposer = InterposeOnContext(
      root_, "dir",
      [&](const std::string& component, sp<Object> obj) -> Result<sp<Object>> {
        if (component == "watched") {
          return substitute;
        }
        return obj;
      },
      sys_, domain_);
  ASSERT_TRUE(interposer.ok());

  // All naming traffic now goes through the interposer.
  Result<sp<Object>> watched = root_->Resolve(*Name::Parse("dir/watched"), sys_);
  ASSERT_TRUE(watched.ok());
  EXPECT_EQ(*watched, substitute);
  Result<sp<Object>> plain = root_->Resolve(*Name::Parse("dir/plain"), sys_);
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(*plain, original);
  EXPECT_EQ((*interposer)->intercept_count(), 2u);
}

TEST_F(NamingTest, InterposeRequiresBindRights) {
  sp<MemContext> secured = MemContext::Create(domain_, Acl::OwnedBy("alice"));
  ASSERT_TRUE(secured->CreateContext(Name::Single("dir"),
                                     Credentials::User("alice")).ok());
  Result<sp<InterposerContext>> denied = InterposeOnContext(
      secured, "dir",
      [](const std::string&, sp<Object> obj) -> Result<sp<Object>> {
        return obj;
      },
      Credentials::User("bob"), domain_);
  EXPECT_EQ(denied.status().code(), ErrorCode::kPermissionDenied);
}

TEST_F(NamingTest, InterposerPassesThroughBindAndList) {
  sp<Context> dir = *root_->CreateContext(Name::Single("dir"), sys_);
  Result<sp<InterposerContext>> interposer = InterposeOnContext(
      root_, "dir",
      [](const std::string&, sp<Object> obj) -> Result<sp<Object>> {
        return obj;
      },
      sys_, domain_);
  ASSERT_TRUE(interposer.ok());
  struct Leaf : Object {};
  ASSERT_TRUE(root_->Bind(*Name::Parse("dir/x"), std::make_shared<Leaf>(),
                          sys_).ok());
  // Visible through the original context too: the interposer delegates.
  EXPECT_TRUE(dir->Resolve(Name::Single("x"), sys_).ok());
  Result<std::vector<BindingInfo>> list =
      ResolveAs<Context>(root_, "dir", sys_).take_value()->List(sys_);
  ASSERT_TRUE(list.ok());
  EXPECT_EQ(list->size(), 1u);
}

}  // namespace
}  // namespace springfs
