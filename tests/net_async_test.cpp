// Deterministic unit tests for the async channel (DESIGN.md §12): tag
// allocation and pairing, completion ordering under reordering, pacing
// bounds, RACK-style early loss declaration, the capped RTO fallback, and
// full-window behaviour. Everything runs on a FakeClock — the channel's
// event pump advances virtual time itself, so there are no sleeps and no
// timing flakes.

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "src/net/network.h"

namespace springfs {
namespace {

// Fabric with two nodes and an echo service that returns arg0 + 1.
class NetAsyncTest : public ::testing::Test {
 protected:
  void SetUp() override {
    network_ = std::make_unique<net::Network>(&clock_, /*latency=*/1000);
    a_ = network_->AddNode("a");
    b_ = network_->AddNode("b");
    b_->RegisterService("echo", [this](const net::Frame& request) {
      ++handler_runs_;
      net::Frame response;
      response.arg0 = request.arg0 + 1;
      response.payload = request.payload;
      return response;
    });
  }

  uint64_t Submit(const sp<net::Channel>& channel, uint64_t arg0) {
    net::Frame request;
    request.arg0 = arg0;
    return channel->Submit(request);
  }

  FakeClock clock_;
  std::unique_ptr<net::Network> network_;
  sp<net::Node> a_, b_;
  int handler_runs_ = 0;
};

TEST_F(NetAsyncTest, TagsAreUniqueAndTrackOutstanding) {
  net::ChannelOptions options;
  options.max_inflight = 8;
  sp<net::Channel> channel = network_->OpenChannel("a", "b", "echo", options);
  uint64_t t1 = Submit(channel, 10);
  uint64_t t2 = Submit(channel, 20);
  uint64_t t3 = Submit(channel, 30);
  EXPECT_NE(t1, t2);
  EXPECT_NE(t2, t3);
  EXPECT_EQ(channel->in_flight(), 3u);
  // Responses pair with their submission by tag, not completion order.
  Result<net::Completion> c2 = channel->Wait(t2);
  ASSERT_TRUE(c2.ok());
  ASSERT_TRUE(c2->status.ok());
  EXPECT_EQ(c2->tag, t2);
  EXPECT_EQ(c2->response.arg0, 21u);
  Result<net::Completion> c1 = channel->Wait(t1);
  ASSERT_TRUE(c1.ok());
  EXPECT_EQ(c1->response.arg0, 11u);
  Result<net::Completion> c3 = channel->Wait(t3);
  ASSERT_TRUE(c3.ok());
  EXPECT_EQ(c3->response.arg0, 31u);
  EXPECT_EQ(channel->in_flight(), 0u);
  EXPECT_EQ(channel->stats().submitted, 3u);
  EXPECT_EQ(channel->stats().completed, 3u);
  // A tag that was never submitted (or already claimed) is an error.
  EXPECT_EQ(channel->Wait(t1).status().code(), ErrorCode::kNotFound);
  EXPECT_EQ(channel->WaitAny().status().code(), ErrorCode::kNotFound);
}

TEST_F(NetAsyncTest, PipelinedRoundTripsOverlap) {
  // N outstanding requests cost one round trip of virtual time, not N.
  net::ChannelOptions options;
  options.max_inflight = 16;
  sp<net::Channel> channel = network_->OpenChannel("a", "b", "echo", options);
  TimeNs before = clock_.Now();
  std::vector<uint64_t> tags;
  for (uint64_t i = 0; i < 16; ++i) {
    tags.push_back(Submit(channel, i));
  }
  for (uint64_t tag : tags) {
    Result<net::Completion> done = channel->Wait(tag);
    ASSERT_TRUE(done.ok());
    ASSERT_TRUE(done->status.ok());
  }
  // All 16 submitted at the same instant: every arrival lands at +1000,
  // every response at +2000. A synchronous loop would burn 32000.
  EXPECT_EQ(clock_.Now() - before, 2000u);
}

TEST_F(NetAsyncTest, CompletionsReorderUnderDelay) {
  net::ChannelOptions options;
  options.max_inflight = 4;
  options.rto_ns = 10'000'000;  // far beyond the injected delay
  sp<net::Channel> channel = network_->OpenChannel("a", "b", "echo", options);
  // First frame limps, second overtakes it.
  network_->DelayNextRequests("a", "b", 1, /*delay_ns=*/100'000);
  uint64_t slow = Submit(channel, 1);
  uint64_t fast = Submit(channel, 2);
  Result<net::Completion> first = channel->WaitAny();
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->tag, fast);
  EXPECT_EQ(first->response.arg0, 3u);
  Result<net::Completion> second = channel->WaitAny();
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->tag, slow);
  EXPECT_EQ(second->response.arg0, 2u);
  // Reordering alone must not trigger loss recovery: the fast completion
  // arrived inside the (default, 100µs) reordering window.
  EXPECT_EQ(channel->stats().rack_retransmits, 0u);
  EXPECT_EQ(channel->stats().rto_retransmits, 0u);
  EXPECT_EQ(handler_runs_, 2);
}

TEST_F(NetAsyncTest, PacerSpacesBurstsAndAccountsPacedSends) {
  net::ChannelOptions options;
  options.max_inflight = 8;
  options.pace_gap_ns = 10'000;
  options.pace_burst = 2;
  sp<net::Channel> channel = network_->OpenChannel("a", "b", "echo", options);
  std::vector<uint64_t> tags;
  for (uint64_t i = 0; i < 6; ++i) {
    tags.push_back(Submit(channel, i));
  }
  // GCRA with burst 2: the first two sends go back to back at T, then one
  // every gap: T, T, T+10k, T+20k, T+30k, T+40k.
  std::vector<TimeNs> sends;
  for (uint64_t tag : tags) {
    Result<net::Completion> done = channel->Wait(tag);
    ASSERT_TRUE(done.ok());
    ASSERT_TRUE(done->status.ok());
    sends.push_back(done->last_send_ns);
  }
  EXPECT_EQ(sends[0], sends[1]);
  for (size_t i = 2; i < sends.size(); ++i) {
    EXPECT_EQ(sends[i], sends[1] + (i - 1) * 10'000) << "send " << i;
  }
  EXPECT_EQ(channel->stats().paced_sends, 4u);
}

TEST_F(NetAsyncTest, RackDeclaresLossWhenLaterSendCompletes) {
  net::ChannelOptions options;
  options.max_inflight = 4;
  options.rack_reorder_ns = 1000;
  options.rto_ns = 50'000'000;  // the timer must not be what recovers this
  sp<net::Channel> channel = network_->OpenChannel("a", "b", "echo", options);
  network_->DropNextRequests("a", "b", 1);
  TimeNs before = clock_.Now();
  uint64_t lost = Submit(channel, 1);
  uint64_t witness = Submit(channel, 2);
  Result<net::Completion> w = channel->Wait(witness);
  ASSERT_TRUE(w.ok());
  EXPECT_EQ(clock_.Now() - before, 2000u);
  // The witness's completion testified against the dropped frame: it was
  // retransmitted immediately, not at the 50ms timer.
  Result<net::Completion> recovered = channel->Wait(lost);
  ASSERT_TRUE(recovered.ok());
  ASSERT_TRUE(recovered->status.ok());
  EXPECT_EQ(recovered->response.arg0, 2u);
  EXPECT_TRUE(recovered->rack_recovered);
  EXPECT_EQ(recovered->retransmits, 1u);
  EXPECT_EQ(recovered->last_send_ns, before + 2000);
  EXPECT_EQ(clock_.Now() - before, 4000u);  // retransmit RTT, not 50ms
  EXPECT_EQ(channel->stats().rack_retransmits, 1u);
  EXPECT_EQ(channel->stats().rto_retransmits, 0u);
}

TEST_F(NetAsyncTest, RtoBackoffDoublesAndRecoversSolitaryLoss) {
  // A solitary frame has no later completion to testify for it — only the
  // timer can recover it, doubling on each unanswered copy.
  net::ChannelOptions options;
  options.max_inflight = 4;
  options.rto_ns = 10'000;
  options.max_retransmits = 4;
  sp<net::Channel> channel = network_->OpenChannel("a", "b", "echo", options);
  network_->DropNextRequests("a", "b", 2);
  TimeNs before = clock_.Now();
  uint64_t tag = Submit(channel, 7);
  Result<net::Completion> done = channel->Wait(tag);
  ASSERT_TRUE(done.ok());
  ASSERT_TRUE(done->status.ok());
  EXPECT_EQ(done->response.arg0, 8u);
  EXPECT_EQ(done->retransmits, 2u);
  EXPECT_FALSE(done->rack_recovered);
  // Copies at T (dropped), T+10k (dropped), T+30k (10k + doubled 20k);
  // the survivor's round trip completes at T+32k.
  EXPECT_EQ(done->last_send_ns, before + 30'000);
  EXPECT_EQ(clock_.Now() - before, 32'000u);
  EXPECT_EQ(channel->stats().rto_retransmits, 2u);
}

TEST_F(NetAsyncTest, ExhaustedRetransmitsCompleteWithTimeout) {
  net::ChannelOptions options;
  options.max_inflight = 4;
  options.rto_ns = 10'000;
  options.max_retransmits = 1;
  sp<net::Channel> channel = network_->OpenChannel("a", "b", "echo", options);
  network_->DropNextRequests("a", "b", 10);
  uint64_t tag = Submit(channel, 1);
  Result<net::Completion> done = channel->Wait(tag);
  ASSERT_TRUE(done.ok());
  EXPECT_EQ(done->status.code(), ErrorCode::kTimedOut);
  EXPECT_EQ(done->retransmits, 1u);
  EXPECT_EQ(channel->stats().exhausted, 1u);
  network_->DropNextRequests("a", "b", 0);  // disarm the leftover budget
}

TEST_F(NetAsyncTest, WindowBlocksSubmitUntilCompletionsDrain) {
  net::ChannelOptions options;
  options.max_inflight = 2;
  sp<net::Channel> channel = network_->OpenChannel("a", "b", "echo", options);
  std::vector<uint64_t> tags;
  for (uint64_t i = 0; i < 5; ++i) {
    tags.push_back(Submit(channel, i));
    EXPECT_LE(channel->in_flight(), 2u);
  }
  // The third submit had to pump at least one completion to make room.
  EXPECT_GE(channel->stats().completed, 3u);
  for (uint64_t tag : tags) {
    Result<net::Completion> done = channel->Wait(tag);
    ASSERT_TRUE(done.ok());
    ASSERT_TRUE(done->status.ok());
  }
  EXPECT_EQ(channel->stats().completed, 5u);
}

TEST_F(NetAsyncTest, SeededFaultSweepCompletesEveryTagExactlyOnce) {
  // Loss, duplication, and reordering all at once, from seeded streams:
  // every submission must complete exactly once with its own response.
  for (uint64_t seed : {11u, 29u, 47u, 101u}) {
    net::FaultPlan plan;
    plan.seed = seed;
    plan.drop_request_pct = 20;
    plan.drop_response_pct = 10;
    plan.dup_request_pct = 15;
    plan.delay_pct = 25;
    plan.delay_ns = 5'000;
    network_->ArmFaultsOnLink("a", "b", plan);
    net::ChannelOptions options;
    options.max_inflight = 8;
    options.rack_reorder_ns = 2'000;
    options.rto_ns = 20'000;
    options.max_retransmits = 10;
    sp<net::Channel> channel =
        network_->OpenChannel("a", "b", "echo", options);
    std::map<uint64_t, uint64_t> want;  // tag -> expected arg0
    for (uint64_t i = 0; i < 40; ++i) {
      net::Frame request;
      request.arg0 = seed * 1000 + i;
      want[channel->Submit(request)] = request.arg0 + 1;
    }
    size_t completions = 0;
    while (!want.empty()) {
      Result<net::Completion> done = channel->WaitAny();
      ASSERT_TRUE(done.ok()) << "seed " << seed;
      ASSERT_TRUE(done->status.ok())
          << "seed " << seed << ": " << done->status.ToString();
      auto it = want.find(done->tag);
      ASSERT_NE(it, want.end()) << "seed " << seed << " duplicate completion";
      EXPECT_EQ(done->response.arg0, it->second) << "seed " << seed;
      want.erase(it);
      ++completions;
    }
    EXPECT_EQ(completions, 40u);
    net::Channel::Stats stats = channel->stats();
    EXPECT_EQ(stats.submitted, 40u);
    EXPECT_EQ(stats.completed, 40u);
    EXPECT_EQ(stats.exhausted, 0u) << "seed " << seed;
    network_->DisarmFaults();
  }
}

TEST_F(NetAsyncTest, RetransmittedCopiesAreByteIdentical) {
  // The retransmission must reuse the tag (and request id): that is what
  // lets a server-side dedup window absorb reordered duplicates.
  std::vector<uint64_t> seen_tags;
  std::vector<uint64_t> seen_request_ids;
  b_->RegisterService("capture", [&](const net::Frame& request) {
    seen_tags.push_back(request.tag);
    seen_request_ids.push_back(request.request_id);
    return net::Frame{};
  });
  net::ChannelOptions options;
  options.max_inflight = 2;
  options.rto_ns = 10'000;
  sp<net::Channel> channel = network_->OpenChannel("a", "b", "capture",
                                                   options);
  // Drop the response (not the request): the handler sees the original AND
  // the timer-driven copy.
  network_->DropNextResponses("a", "b", 1);
  net::Frame request;
  request.request_id = 424242;
  uint64_t tag = channel->Submit(request);
  Result<net::Completion> done = channel->Wait(tag);
  ASSERT_TRUE(done.ok());
  ASSERT_TRUE(done->status.ok());
  ASSERT_EQ(seen_tags.size(), 2u);
  EXPECT_EQ(seen_tags[0], seen_tags[1]);
  EXPECT_EQ(seen_request_ids[0], 424242u);
  EXPECT_EQ(seen_request_ids[1], 424242u);
}

}  // namespace
}  // namespace springfs
