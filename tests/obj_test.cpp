// Unit tests for the Spring object model: narrow, domains, transparent
// same/cross-domain invocation, invocation statistics, both transports.

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <thread>

#include "src/obj/domain.h"
#include "src/obj/object.h"

namespace springfs {
namespace {

class Animal : public virtual Object {
 public:
  const char* interface_name() const override { return "animal"; }
  virtual int Legs() const = 0;
};

class Dog : public Animal {
 public:
  const char* interface_name() const override { return "dog"; }
  int Legs() const override { return 4; }
  virtual const char* Bark() const { return "woof"; }
};

class Stone : public virtual Object {};

TEST(NarrowTest, SucceedsOnSubtype) {
  sp<Object> obj = std::make_shared<Dog>();
  sp<Animal> animal = narrow<Animal>(obj);
  ASSERT_NE(animal, nullptr);
  EXPECT_EQ(animal->Legs(), 4);
  sp<Dog> dog = narrow<Dog>(animal);
  ASSERT_NE(dog, nullptr);
  EXPECT_STREQ(dog->Bark(), "woof");
}

TEST(NarrowTest, FailsOnUnrelatedType) {
  sp<Object> obj = std::make_shared<Stone>();
  EXPECT_EQ(narrow<Animal>(obj), nullptr);
}

TEST(NarrowTest, NullStaysNull) {
  sp<Object> obj;
  EXPECT_EQ(narrow<Animal>(obj), nullptr);
}

// A counter servant whose methods are wrapped the way all springfs servants
// wrap theirs.
class Counter : public Servant {
 public:
  explicit Counter(sp<Domain> dom) : Servant(std::move(dom)) {}

  void Increment() {
    InDomain([this] { ++value_; });
  }
  int Get() const {
    return InDomain([this] { return value_; });
  }

 private:
  int value_ = 0;
};

TEST(DomainTest, CurrentIsNullOutsideAnyDomain) {
  EXPECT_EQ(Domain::current(), nullptr);
}

TEST(DomainTest, ScopeSetsAndRestoresCurrent) {
  sp<Domain> d = Domain::Create("d");
  {
    Domain::Scope scope(d.get());
    EXPECT_EQ(Domain::current(), d.get());
    {
      Domain::Scope inner(nullptr);
      EXPECT_EQ(Domain::current(), nullptr);
    }
    EXPECT_EQ(Domain::current(), d.get());
  }
  EXPECT_EQ(Domain::current(), nullptr);
}

TEST(DomainTest, SameDomainCallsAreInline) {
  sp<Domain> d = Domain::Create("server");
  Counter counter(d);
  Domain::Scope scope(d.get());  // the client lives in the same domain
  counter.Increment();
  counter.Increment();
  EXPECT_EQ(counter.Get(), 2);
  std::map<std::string, uint64_t> stats = metrics::CollectFrom(*d);
  EXPECT_EQ(stats["inline_calls"], 3u);
  EXPECT_EQ(stats["cross_calls"], 0u);
}

TEST(DomainTest, CrossDomainCallsAreCounted) {
  sp<Domain> server = Domain::Create("server");
  sp<Domain> client = Domain::Create("client");
  Counter counter(server);
  Domain::Scope scope(client.get());
  counter.Increment();
  EXPECT_EQ(counter.Get(), 1);
  std::map<std::string, uint64_t> stats = metrics::CollectFrom(*server);
  EXPECT_EQ(stats["inline_calls"], 0u);
  EXPECT_EQ(stats["cross_calls"], 2u);
}

TEST(DomainTest, ResetStatsClearsCounters) {
  sp<Domain> d = Domain::Create("d");
  Counter counter(d);
  counter.Increment();
  d->ResetStats();
  std::map<std::string, uint64_t> stats = metrics::CollectFrom(*d);
  EXPECT_EQ(stats["inline_calls"], 0u);
  EXPECT_EQ(stats["cross_calls"], 0u);
}

TEST(DomainTest, RunReturnsValues) {
  sp<Domain> d = Domain::Create("d");
  int x = d->Run([] { return 41; }) + 1;
  EXPECT_EQ(x, 42);
  std::string s = d->Run([] { return std::string("spring"); });
  EXPECT_EQ(s, "spring");
}

TEST(DomainTest, NestedCallsWithinTargetDomainAreInline) {
  sp<Domain> d = Domain::Create("d");
  // Caller is outside: the outer call crosses, the inner one must not.
  d->Run([&] {
    EXPECT_EQ(Domain::current(), d.get());
    d->Run([] {});
  });
  std::map<std::string, uint64_t> stats = metrics::CollectFrom(*d);
  EXPECT_EQ(stats["cross_calls"], 1u);
  EXPECT_EQ(stats["inline_calls"], 1u);
}

TEST(SpinTransportTest, ChargesConfiguredCost) {
  FakeClock clock;
  SpinTransport transport(/*cross_call_ns=*/1234, &clock);
  sp<Domain> d = Domain::Create("d", &transport);
  TimeNs before = clock.Now();
  d->Run([] {});
  EXPECT_EQ(clock.Now() - before, 1234u);
  // Same-domain calls are free.
  Domain::Scope scope(d.get());
  before = clock.Now();
  d->Run([] {});
  EXPECT_EQ(clock.Now(), before);
}

TEST(ThreadTransportTest, ExecutesOnWorkerThread) {
  ThreadTransport transport;
  sp<Domain> d = Domain::Create("d", &transport);
  std::thread::id caller = std::this_thread::get_id();
  std::thread::id executed_on;
  d->Run([&] { executed_on = std::this_thread::get_id(); });
  EXPECT_NE(executed_on, caller);
}

TEST(ThreadTransportTest, NestedCallbackDoesNotDeadlock) {
  // a -> b -> a again: b's worker posts back into a while a's worker is
  // blocked; the pool must grow instead of deadlocking.
  ThreadTransport transport;
  sp<Domain> a = Domain::Create("a", &transport);
  sp<Domain> b = Domain::Create("b", &transport);
  int result = a->Run([&] {
    return b->Run([&] {
      return a->Run([] { return 7; });
    });
  });
  EXPECT_EQ(result, 7);
}

TEST(ThreadTransportTest, ConcurrentCallersAllComplete) {
  ThreadTransport transport;
  sp<Domain> d = Domain::Create("d", &transport);
  std::atomic<int> sum{0};
  std::vector<std::thread> threads;
  threads.reserve(8);
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 100; ++i) {
        d->Run([&] { sum.fetch_add(1); });
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(sum.load(), 800);
}

TEST(ThreadTransportTest, CurrentDomainIsTargetDuringExecution) {
  ThreadTransport transport;
  sp<Domain> d = Domain::Create("d", &transport);
  Domain* observed = nullptr;
  d->Run([&] { observed = Domain::current(); });
  EXPECT_EQ(observed, d.get());
}

TEST(DefaultTransportTest, SwapAndRestore) {
  ThreadTransport transport;
  Transport* old = Domain::SetDefaultTransport(&transport);
  EXPECT_EQ(Domain::DefaultTransport(), &transport);
  sp<Domain> d = Domain::Create("d");
  std::thread::id executed_on;
  d->Run([&] { executed_on = std::this_thread::get_id(); });
  EXPECT_NE(executed_on, std::this_thread::get_id());
  Domain::SetDefaultTransport(old);
}

}  // namespace
}  // namespace springfs
