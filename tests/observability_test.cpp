// Tests for the observability stack: springtrace span trees, the metrics
// registry, the per-layer report, and the Figure 7 claim re-proven through
// trace spans (DFS appears in bind traces but never in local page-in /
// page-out traces once binds are forwarded).

#include <gtest/gtest.h>

#include <map>
#include <stdexcept>
#include <string>
#include <thread>

#include "src/layers/dfs/dfs_client.h"
#include "src/layers/dfs/dfs_server.h"
#include "src/layers/sfs/sfs.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/stat_report.h"
#include "src/obs/trace.h"
#include "src/posix/posix_shim.h"
#include "src/vmm/vmm.h"

namespace springfs {
namespace {

// --- span trees ---

TEST(TraceTest, InactiveByDefaultAndScopedSpansAreFree) {
  EXPECT_FALSE(trace::Active());
  trace::ScopedSpan span("never.recorded");
  EXPECT_FALSE(span.active());
}

TEST(TraceTest, SpanTreeShapeAcrossThreeLayerStack) {
  // VMM on a two-domain SFS: a first-touch mapped read runs a fault that
  // descends vmm -> coherency layer -> disk layer, crossing two domains.
  FakeClock clock;
  MemBlockDevice device(ufs::kBlockSize, 8192);
  SfsOptions options;
  options.placement = SfsPlacement::kTwoDomains;
  Sfs sfs = *CreateSfs(&device, options, &clock);
  Credentials sys = Credentials::System();
  sp<File> file = *sfs.root->CreateFile(*Name::Parse("traced"), sys);
  ASSERT_TRUE(file->SetLength(kPageSize).ok());

  sp<Domain> client_domain = Domain::Create("trace-client");
  sp<Vmm> vmm = Vmm::Create(client_domain, "trace-vmm");
  sp<MappedRegion> region = *vmm->Map(file, AccessRights::kReadOnly);

  trace::TraceRoot root("mapped_read", &clock);
  Buffer out(16);
  ASSERT_TRUE(region->Read(0, out.mutable_span()).ok());
  const trace::Span& tree = root.Finish();

  // The fault is in the tree, the coherency layer's page_in is *inside* the
  // fault, and the disk layer's domain is crossed somewhere below it —
  // causal nesting, not just presence.
  const trace::Span* fault = trace::FindFirst(tree, "vmm.fault");
  ASSERT_NE(fault, nullptr) << trace::ToString(tree);
  EXPECT_TRUE(trace::Contains(*fault, "coh.page_in")) << trace::ToString(tree);
  EXPECT_TRUE(trace::Contains(*fault, "xdc:sfs-disk")) << trace::ToString(tree);
  // Spans are timed by the injected clock and properly nested.
  EXPECT_GE(fault->end_ns, fault->start_ns);
  EXPECT_GE(fault->start_ns, tree.start_ns);
  EXPECT_LE(fault->end_ns, tree.end_ns);
  // Once finished, the thread is no longer tracing.
  EXPECT_FALSE(trace::Active());
}

TEST(TraceTest, NestedRootsDoNotMix) {
  FakeClock clock;
  trace::TraceRoot outer("outer", &clock);
  {
    trace::ScopedSpan before("outer.child");
  }
  {
    trace::TraceRoot inner("inner", &clock);
    trace::ScopedSpan hidden("inner.child");
  }
  {
    trace::ScopedSpan after("outer.child2");
  }
  const trace::Span& tree = outer.Finish();
  EXPECT_TRUE(trace::Contains(tree, "outer.child"));
  EXPECT_TRUE(trace::Contains(tree, "outer.child2"));
  EXPECT_FALSE(trace::Contains(tree, "inner.child"))
      << "inner roots must not leak spans into the outer tree";
}

// Figure 7, re-proven with spans instead of counters: the bind of a local
// client IS visible as a DFS forwarding span, but the page traffic that
// follows never touches DFS.
TEST(TraceTest, Figure7DfsInBindTraceButNotLocalPaging) {
  FakeClock clock;
  net::Network network(&clock, 1000);
  sp<net::Node> server_node = network.AddNode("server");
  MemBlockDevice device(ufs::kBlockSize, 8192);
  Sfs sfs = *CreateSfs(&device, SfsOptions{}, &clock);
  sp<dfs::DfsServer> server =
      *dfs::DfsServer::Create(server_node, &network, "dfs", sfs.root, &clock);

  Credentials sys = Credentials::System();
  sp<File> file = *server->CreateFile(*Name::Parse("fig7"), sys);
  ASSERT_TRUE(file->SetLength(kPageSize).ok());
  sp<Vmm> local_vmm = Vmm::Create(server_node->domain(), "local-vmm");

  // The bind (Map) goes through DfsLocalFile, which forwards it below.
  sp<MappedRegion> region;
  {
    trace::TraceRoot bind_root("map", &clock);
    region = *local_vmm->Map(file, AccessRights::kReadWrite);
    const trace::Span& tree = bind_root.Finish();
    EXPECT_TRUE(trace::Contains(tree, "dfs.bind_forward"))
        << trace::ToString(tree);
  }

  // First touch: a page-in fault. DFS must not appear anywhere in it.
  {
    trace::TraceRoot fault_root("first_touch", &clock);
    Buffer data(std::string("local"));
    ASSERT_TRUE(region->Write(0, data.span()).ok());
    const trace::Span& tree = fault_root.Finish();
    ASSERT_TRUE(trace::Contains(tree, "vmm.fault")) << trace::ToString(tree);
    EXPECT_TRUE(trace::FindAll(tree, "dfs.").empty())
        << "DFS in a local page-in path:\n" << trace::ToString(tree);
    EXPECT_TRUE(trace::FindAll(tree, "net.").empty())
        << "network hop in a local page-in path:\n" << trace::ToString(tree);
  }

  // Page-out (sync flushes the dirty page): same claim.
  {
    trace::TraceRoot sync_root("sync", &clock);
    ASSERT_TRUE(region->Sync().ok());
    const trace::Span& tree = sync_root.Finish();
    EXPECT_TRUE(trace::FindAll(tree, "dfs.").empty())
        << "DFS in a local page-out path:\n" << trace::ToString(tree);
  }
}

// --- Domain::Run exception safety (the non-void slot + exception_ptr
// transfer through ThreadTransport) ---

TEST(DomainRunTest, ExceptionsPropagateAcrossDomains) {
  for (bool use_threads : {false, true}) {
    SCOPED_TRACE(use_threads ? "ThreadTransport" : "SpinTransport");
    SpinTransport spin;
    ThreadTransport threads;
    Transport* transport = use_threads ? static_cast<Transport*>(&threads)
                                       : static_cast<Transport*>(&spin);
    sp<Domain> domain = Domain::Create("thrower", transport);
    // Non-void result path: the result slot must stay untouched when the
    // op throws, and the exception must surface on the caller's thread.
    EXPECT_THROW(
        domain->Run([]() -> int { throw std::runtime_error("boom"); }),
        std::runtime_error);
    // The domain still works afterwards.
    EXPECT_EQ(domain->Run([] { return 7; }), 7);
  }
}

// --- metrics registry ---

TEST(MetricsTest, HistogramBucketsAndQuantiles) {
  metrics::Histogram h;
  h.Record(100);     // bucket 0 (<=128)
  h.Record(100);
  h.Record(1000);    // <=1024
  h.Record(1000000);
  metrics::Histogram::Snapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, 4u);
  EXPECT_EQ(snap.sum_ns, 1001200u);
  // Nearest-rank on floor(q * (count-1)): the median sample sits in the
  // first bucket, the max in the 1ms-ish bucket.
  EXPECT_EQ(snap.ApproxQuantileNs(0.5), 128u);
  EXPECT_EQ(snap.ApproxQuantileNs(0.99), 1024u);
  EXPECT_GE(snap.ApproxQuantileNs(1.0), 1000000u);
}

TEST(MetricsTest, ProvidersSumAcrossInstances) {
  struct Fixed : metrics::StatsProvider {
    std::string stats_prefix() const override { return "test/fixed"; }
    void CollectStats(const metrics::StatsEmitter& emit) const override {
      emit("ticks", 3);
    }
  };
  Fixed a, b;
  metrics::Registry& reg = metrics::Registry::Global();
  size_t before = reg.NumProviders();
  reg.RegisterProvider(&a);
  reg.RegisterProvider(&b);
  EXPECT_EQ(reg.Collect().values.at("test/fixed/ticks"), 6u);
  reg.UnregisterProvider(&a);
  reg.UnregisterProvider(&b);
  EXPECT_EQ(reg.NumProviders(), before);
}

// The workload's own contribution: metrics::Delta against the pre-workload
// snapshot, dropping keys that did not move (earlier tests' layer stacks
// hold intentional sp<> cycles, so their providers linger with frozen
// values that would otherwise differ between two runs).
std::map<std::string, uint64_t> MovedValues(
    const metrics::Registry::Snapshot& base,
    const metrics::Registry::Snapshot& end) {
  std::map<std::string, uint64_t> moved;
  for (const auto& [key, value] : metrics::Delta(base, end).values) {
    if (value != 0) {
      moved[key] = value;
    }
  }
  return moved;
}

std::map<std::string, metrics::Histogram::Snapshot> NonEmptyHistograms(
    const std::map<std::string, metrics::Histogram::Snapshot>& all) {
  std::map<std::string, metrics::Histogram::Snapshot> out;
  for (const auto& [key, snap] : all) {
    if (snap.count != 0) {
      out[key] = snap;
    }
  }
  return out;
}

struct RunResult {
  std::map<std::string, uint64_t> value_delta;
  std::map<std::string, metrics::Histogram::Snapshot> histograms;
};

// One complete instrumented workload on a fresh two-domain stack, driven
// entirely by a fresh FakeClock (transport, layers, and the registry clock
// all read it).
RunResult InstrumentedRun() {
  FakeClock clock;
  SpinTransport spin(/*cross_call_ns=*/500, &clock);
  Transport* previous_transport = Domain::SetDefaultTransport(&spin);
  metrics::Registry& reg = metrics::Registry::Global();
  reg.SetClock(&clock);

  RunResult result;
  {
    MemBlockDevice device(ufs::kBlockSize, 8192);
    SfsOptions options;
    options.placement = SfsPlacement::kTwoDomains;
    Sfs sfs = *CreateSfs(&device, options, &clock);
    Credentials sys = Credentials::System();
    sp<File> file = *sfs.root->CreateFile(*Name::Parse("det"), sys);

    reg.Reset();
    metrics::Registry::Snapshot base = reg.Collect();
    Buffer page(kPageSize);
    for (int i = 0; i < 50; ++i) {
      file->Write(0, page.span()).take_value();
      file->Read(0, page.mutable_span()).take_value();
      file->Stat().take_value();
    }
    metrics::Registry::Snapshot end = reg.Collect();
    result.value_delta = MovedValues(base, end);
    result.histograms = NonEmptyHistograms(end.histograms);
  }

  reg.SetClock(nullptr);
  Domain::SetDefaultTransport(previous_transport);
  return result;
}

TEST(MetricsTest, SnapshotsDeterministicUnderSpinTransportAndFakeClock) {
  RunResult first = InstrumentedRun();
  RunResult second = InstrumentedRun();
  // Not trivially empty: the workload crossed domains and timed layer ops.
  EXPECT_GT(first.value_delta.at("domain/cross_call.calls"), 0u);
  ASSERT_TRUE(first.histograms.count("layer/coherent/read.latency_ns"));
  EXPECT_EQ(first.histograms.at("layer/coherent/read.latency_ns").count, 50u);
  // Bit-identical across runs, buckets and all.
  EXPECT_EQ(first.value_delta, second.value_delta);
  EXPECT_EQ(first.histograms, second.histograms);
}

TEST(MetricsTest, RegistryThreadSafeUnderThreadTransport) {
  ThreadTransport transport;
  sp<Domain> domain = Domain::Create("tt-metrics", &transport);
  metrics::Registry& reg = metrics::Registry::Global();
  metrics::Counter& shared = reg.counter("test/tt.increments");
  shared.Reset();
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 500;

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&domain, &reg] {
      // Each thread traces its own cross-domain ops (worker hand-off) and
      // hammers a shared counter/histogram through the registry.
      for (int i = 0; i < kOpsPerThread; ++i) {
        trace::TraceRoot root("tt-op");
        int got = domain->Run([&reg] {
          static metrics::OpMetric metric("test/tt.op");
          metrics::TimedOp timed(metric, "tt.body");
          reg.counter("test/tt.increments").Increment();
          return 1;
        });
        ASSERT_EQ(got, 1);
        ASSERT_TRUE(trace::Contains(root.Finish(), "xdc:tt-metrics"));
      }
    });
  }
  // Concurrent snapshots while the writers run.
  for (int i = 0; i < 50; ++i) {
    (void)reg.Collect();
  }
  for (std::thread& t : threads) {
    t.join();
  }
  EXPECT_EQ(shared.Value(),
            static_cast<uint64_t>(kThreads) * kOpsPerThread);
  EXPECT_GE(reg.histogram("test/tt.op.latency_ns").snapshot().count,
            static_cast<uint64_t>(kThreads) * kOpsPerThread);
}

TEST(MetricsTest, DeltaSubtractsValuesAndHistogramBuckets) {
  metrics::Histogram h;
  h.Record(100);
  h.Record(1000);
  metrics::Registry::Snapshot before;
  before.values["a"] = 3;
  before.values["gone"] = 9;
  before.histograms["h"] = h.snapshot();

  h.Record(100);
  h.Record(1'000'000);
  metrics::Registry::Snapshot after;
  after.values["a"] = 5;
  after.values["fresh"] = 2;
  after.histograms["h"] = h.snapshot();

  metrics::Registry::Snapshot d = metrics::Delta(before, after);
  EXPECT_EQ(d.values.at("a"), 2u);
  // An instrument born inside the interval counts in full.
  EXPECT_EQ(d.values.at("fresh"), 2u);
  // One that vanished recorded nothing in the interval.
  EXPECT_EQ(d.values.count("gone"), 0u);
  const metrics::Histogram::Snapshot& hd = d.histograms.at("h");
  EXPECT_EQ(hd.count, 2u);
  EXPECT_EQ(hd.sum_ns, 1'000'100u);
  EXPECT_EQ(hd.buckets[metrics::Histogram::BucketIndex(100)], 1u);
  EXPECT_EQ(hd.buckets[metrics::Histogram::BucketIndex(1'000'000)], 1u);
  EXPECT_EQ(hd.buckets[metrics::Histogram::BucketIndex(1000)], 0u);
  // A counter reset mid-interval clamps at zero instead of underflowing.
  EXPECT_EQ(metrics::Delta(after, before).values.at("a"), 0u);
}

// --- distributed tracing across the DFS wire ---

struct WireWorld {
  FakeClock clock;
  net::Network network{&clock, 1000};
  sp<net::Node> server_node, client_node;
  MemBlockDevice device{ufs::kBlockSize, 8192};
  Sfs sfs;
  sp<dfs::DfsServer> server;
  sp<dfs::DfsClient> client;
  Credentials sys = Credentials::System();

  WireWorld() {
    server_node = network.AddNode("server");
    client_node = network.AddNode("client");
    sfs = *CreateSfs(&device, SfsOptions{}, &clock);
    server = *dfs::DfsServer::Create(server_node, &network, "dfs", sfs.root,
                                     &clock);
    client =
        *dfs::DfsClient::Mount(client_node, &network, "server", "dfs", &clock);
  }
};

// The acceptance path: a POSIX read against a DFS mount produces ONE trace
// tree — client span, network hop, and the server-domain handler all share
// the root's trace_id, stitched by remote_parent_span_id.
TEST(TraceTest, PosixReadOverDfsIsOneTraceTree) {
  WireWorld w;
  sp<File> file = *w.server->CreateFile(*Name::Parse("doc"), w.sys);
  Buffer data(std::string("one tree across the wire"));
  ASSERT_TRUE(file->Write(0, data.span()).ok());

  posix::Process proc(w.client, w.sys);
  int fd = *proc.Open("doc", posix::kRdOnly);

  trace::TraceRoot root("posix_read", &w.clock);
  Buffer out(24);
  ASSERT_TRUE(proc.Read(fd, out.mutable_span()).ok());
  const trace::Span& tree = root.Finish();
  EXPECT_EQ(out.ToString(), "one tree across the wire");

  ASSERT_NE(tree.trace_id, 0u);
  const trace::Span* serve = trace::FindFirst(tree, "dfs.serve");
  ASSERT_NE(serve, nullptr) << trace::ToString(tree);
  ASSERT_TRUE(trace::Contains(tree, "net.call:")) << trace::ToString(tree);
  // The server-side handler is in the SAME tree with the SAME trace_id...
  EXPECT_EQ(serve->trace_id, tree.trace_id);
  EXPECT_NE(serve->span_id, 0u);
  // ...and its wire-carried parent is the network hop it arrived on.
  const trace::Span* hop = serve->parent;
  while (hop != nullptr && hop->name.rfind("net.", 0) != 0) {
    hop = hop->parent;
  }
  ASSERT_NE(hop, nullptr) << trace::ToString(tree);
  EXPECT_EQ(serve->remote_parent_span_id, hop->span_id)
      << trace::ToString(tree);
}

// Retransmissions appear as "net.retry:" spans, so the "net.call:" count of
// one logical operation is identical with and without injected faults.
TEST(TraceTest, RetriesAreRetrySpansNotExtraNetCalls) {
  WireWorld w;
  sp<File> file = *w.server->CreateFile(*Name::Parse("f"), w.sys);
  Buffer data(std::string("stable"));
  ASSERT_TRUE(file->Write(0, data.span()).ok());
  sp<File> remote = *ResolveAs<File>(w.client, "f", w.sys);
  Buffer out(6);
  ASSERT_TRUE(remote->Read(0, out.mutable_span()).ok());  // warm everything

  size_t clean_calls = 0;
  {
    trace::TraceRoot root("clean_read", &w.clock);
    ASSERT_TRUE(remote->Read(0, out.mutable_span()).ok());
    const trace::Span& tree = root.Finish();
    clean_calls = trace::FindAll(tree, "net.call:").size();
    EXPECT_TRUE(trace::FindAll(tree, "net.retry:").empty())
        << trace::ToString(tree);
  }
  ASSERT_GT(clean_calls, 0u);

  w.network.DropNextResponses("client", "server", 1);
  {
    trace::TraceRoot root("faulted_read", &w.clock);
    ASSERT_TRUE(remote->Read(0, out.mutable_span()).ok());
    const trace::Span& tree = root.Finish();
    EXPECT_EQ(trace::FindAll(tree, "net.call:").size(), clean_calls)
        << trace::ToString(tree);
    EXPECT_GE(trace::FindAll(tree, "net.retry:").size(), 1u)
        << trace::ToString(tree);
  }
}

// --- flight recorder ---

std::vector<flight::Event> EventsInLayer(const char* layer) {
  std::vector<flight::Event> mine;
  for (const flight::Event& e : flight::Snapshot()) {
    if (std::string(e.layer) == layer) {
      mine.push_back(e);
    }
  }
  return mine;
}

TEST(FlightRecorderTest, RingWrapsKeepingTheNewestEvents) {
  flight::Clear();
  const uint64_t total = flight::kRingCapacity + 50;
  for (uint64_t i = 0; i < total; ++i) {
    flight::Record(flight::Severity::kInfo, "fr-test", "wrap", i);
  }
  std::vector<flight::Event> mine = EventsInLayer("fr-test");
  ASSERT_EQ(mine.size(), flight::kRingCapacity);
  EXPECT_GE(flight::TotalDropped(), 50u);
  // Oldest retained is exactly `total - capacity`; the newest is the last
  // record; seq is strictly increasing (Snapshot is oldest-first).
  EXPECT_EQ(mine.front().arg0, total - flight::kRingCapacity);
  EXPECT_EQ(mine.back().arg0, total - 1);
  for (size_t i = 1; i < mine.size(); ++i) {
    EXPECT_LT(mine[i - 1].seq, mine[i].seq);
  }
  flight::Clear();
  EXPECT_TRUE(flight::Snapshot().empty());
  EXPECT_EQ(flight::TotalDropped(), 0u);
}

TEST(FlightRecorderTest, EventsStampTheActiveTraceContext) {
  flight::Clear();
  {
    trace::TraceRoot root("flight-ctx");
    flight::Record(flight::Severity::kWarn, "fr-ctx", "inside");
  }
  flight::Record(flight::Severity::kInfo, "fr-ctx", "outside");
  std::vector<flight::Event> mine = EventsInLayer("fr-ctx");
  ASSERT_EQ(mine.size(), 2u);
  EXPECT_NE(mine[0].trace_id, 0u);
  EXPECT_NE(mine[0].span_id, 0u);
  EXPECT_EQ(mine[1].trace_id, 0u);
  // The dump names layer, severity, and message.
  std::string dump = flight::Dump();
  EXPECT_NE(dump.find("fr-ctx"), std::string::npos);
  EXPECT_NE(dump.find("inside"), std::string::npos);
  EXPECT_NE(dump.find(flight::SeverityName(flight::Severity::kWarn)),
            std::string::npos);
  flight::Clear();
}

// --- the human-readable report ---

TEST(StatReportTest, GroupsOpsAndCountersByComponent) {
  metrics::Histogram h;
  h.Record(2000);
  h.Record(4000);
  std::string line = obs::FormatOpLine("page_in", 2, h.snapshot());
  EXPECT_NE(line.find("page_in"), std::string::npos);
  EXPECT_NE(line.find("calls=2"), std::string::npos);

  metrics::Registry::Snapshot snap;
  snap.values["layer/coherent/read.calls"] = 5;
  snap.histograms["layer/coherent/read.latency_ns"] = h.snapshot();
  snap.values["vmm/client/faults"] = 3;
  std::string report = obs::PerLayerReport(snap);
  EXPECT_NE(report.find("layer/coherent"), std::string::npos);
  EXPECT_NE(report.find("vmm/client"), std::string::npos);
  EXPECT_NE(report.find("faults = 3"), std::string::npos);
}

}  // namespace
}  // namespace springfs
