// Tests for the POSIX shim over various stacks (SFS, COMPFS-on-SFS),
// demonstrating layer-agnostic UNIX-style access (paper section 3.1).

#include <gtest/gtest.h>

#include "src/layers/compfs/comp_layer.h"
#include "src/layers/sfs/sfs.h"
#include "src/posix/posix_shim.h"

namespace springfs::posix {
namespace {

class PosixTest : public ::testing::Test {
 protected:
  void SetUp() override {
    device_ = std::make_unique<MemBlockDevice>(ufs::kBlockSize, 8192);
    sfs_ = *CreateSfs(device_.get(), SfsOptions{}, &clock_);
    process_ = std::make_unique<Process>(sfs_.root);
  }

  FakeClock clock_;
  std::unique_ptr<MemBlockDevice> device_;
  Sfs sfs_;
  std::unique_ptr<Process> process_;
};

TEST_F(PosixTest, OpenCreateWriteReadClose) {
  Result<int> fd = process_->Open("hello.txt", kRdWr | kCreate);
  ASSERT_TRUE(fd.ok()) << fd.status().ToString();
  Buffer data(std::string("hello posix"));
  EXPECT_EQ(*process_->Write(*fd, data.span()), 11u);
  EXPECT_EQ(*process_->Lseek(*fd, 0, Whence::kSet), 0u);
  Buffer out(11);
  EXPECT_EQ(*process_->Read(*fd, out.mutable_span()), 11u);
  EXPECT_EQ(out.ToString(), "hello posix");
  EXPECT_TRUE(process_->Close(*fd).ok());
  EXPECT_EQ(process_->OpenFdCount(), 0u);
}

TEST_F(PosixTest, PositionAdvancesWithReadWrite) {
  int fd = *process_->Open("f", kRdWr | kCreate);
  Buffer a(std::string("aaa")), b(std::string("bbb"));
  ASSERT_TRUE(process_->Write(fd, a.span()).ok());
  ASSERT_TRUE(process_->Write(fd, b.span()).ok());
  ASSERT_TRUE(process_->Lseek(fd, 0, Whence::kSet).ok());
  Buffer out(6);
  EXPECT_EQ(*process_->Read(fd, out.mutable_span()), 6u);
  EXPECT_EQ(out.ToString(), "aaabbb");
}

TEST_F(PosixTest, OpenFlagsEnforced) {
  EXPECT_EQ(process_->Open("missing", kRdOnly).status().code(),
            ErrorCode::kNotFound);
  int fd = *process_->Open("f", kWrOnly | kCreate);
  Buffer out(4);
  EXPECT_EQ(process_->Read(fd, out.mutable_span()).status().code(),
            ErrorCode::kPermissionDenied);
  int rd = *process_->Open("f", kRdOnly);
  Buffer data(std::string("x"));
  EXPECT_EQ(process_->Write(rd, data.span()).status().code(),
            ErrorCode::kPermissionDenied);
  EXPECT_EQ(process_->Open("f", kCreate | kExcl).status().code(),
            ErrorCode::kAlreadyExists);
}

TEST_F(PosixTest, TruncAndAppend) {
  int fd = *process_->Open("f", kRdWr | kCreate);
  Buffer data(std::string("0123456789"));
  ASSERT_TRUE(process_->Write(fd, data.span()).ok());
  ASSERT_TRUE(process_->Close(fd).ok());

  int truncated = *process_->Open("f", kRdWr | kTrunc);
  EXPECT_EQ(process_->Fstat(truncated)->size, 0u);
  ASSERT_TRUE(process_->Close(truncated).ok());

  int a1 = *process_->Open("f", kWrOnly | kAppend);
  Buffer x(std::string("xx")), y(std::string("yy"));
  ASSERT_TRUE(process_->Write(a1, x.span()).ok());
  ASSERT_TRUE(process_->Write(a1, y.span()).ok());
  EXPECT_EQ(process_->Fstat(a1)->size, 4u);
}

TEST_F(PosixTest, LseekWhence) {
  int fd = *process_->Open("f", kRdWr | kCreate);
  Buffer data(std::string("0123456789"));
  ASSERT_TRUE(process_->Write(fd, data.span()).ok());
  EXPECT_EQ(*process_->Lseek(fd, -3, Whence::kEnd), 7u);
  EXPECT_EQ(*process_->Lseek(fd, 1, Whence::kCur), 8u);
  EXPECT_EQ(process_->Lseek(fd, -100, Whence::kCur).status().code(),
            ErrorCode::kInvalidArgument);
  Buffer out(2);
  EXPECT_EQ(*process_->Read(fd, out.mutable_span()), 2u);
  EXPECT_EQ(out.ToString(), "89");
}

TEST_F(PosixTest, PreadPwriteDoNotMovePosition) {
  int fd = *process_->Open("f", kRdWr | kCreate);
  Buffer data(std::string("base"));
  ASSERT_TRUE(process_->Write(fd, data.span()).ok());
  Buffer patch(std::string("X"));
  ASSERT_TRUE(process_->Pwrite(fd, 1, patch.span()).ok());
  Buffer out(1);
  ASSERT_TRUE(process_->Pread(fd, 1, out.mutable_span()).ok());
  EXPECT_EQ(out.ToString(), "X");
  // Position still at 4 (after the initial write).
  EXPECT_EQ(*process_->Lseek(fd, 0, Whence::kCur), 4u);
}

TEST_F(PosixTest, DirectoriesAndCwd) {
  ASSERT_TRUE(process_->Mkdir("a").ok());
  ASSERT_TRUE(process_->Mkdir("a/b").ok());
  ASSERT_TRUE(process_->Chdir("a/b").ok());
  int fd = *process_->Open("rel.txt", kRdWr | kCreate);
  ASSERT_TRUE(process_->Close(fd).ok());
  // Visible by absolute path too.
  EXPECT_TRUE(process_->Stat("/a/b/rel.txt").ok());
  Result<std::vector<std::string>> entries = process_->ListDir(".");
  ASSERT_TRUE(entries.ok());
  ASSERT_EQ(entries->size(), 1u);
  EXPECT_EQ((*entries)[0], "rel.txt");
}

TEST_F(PosixTest, StatAndUnlink) {
  int fd = *process_->Open("f", kRdWr | kCreate);
  Buffer data(std::string("12345"));
  ASSERT_TRUE(process_->Write(fd, data.span()).ok());
  Result<StatBuf> st = process_->Stat("f");
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->size, 5u);
  EXPECT_EQ(st->kind, FileKind::kRegular);
  ASSERT_TRUE(process_->Mkdir("d").ok());
  EXPECT_EQ(process_->Stat("d")->kind, FileKind::kDirectory);
  ASSERT_TRUE(process_->Close(fd).ok());
  ASSERT_TRUE(process_->Unlink("f").ok());
  EXPECT_EQ(process_->Stat("f").status().code(), ErrorCode::kNotFound);
}

TEST_F(PosixTest, RenameMovesFile) {
  int fd = *process_->Open("old", kRdWr | kCreate);
  Buffer data(std::string("content"));
  ASSERT_TRUE(process_->Write(fd, data.span()).ok());
  ASSERT_TRUE(process_->Close(fd).ok());
  ASSERT_TRUE(process_->Rename("old", "new").ok());
  EXPECT_EQ(process_->Stat("old").status().code(), ErrorCode::kNotFound);
  EXPECT_EQ(process_->Stat("new")->size, 7u);
}

TEST_F(PosixTest, FsyncPersists) {
  int fd = *process_->Open("durable", kRdWr | kCreate);
  Buffer data(std::string("synced"));
  ASSERT_TRUE(process_->Write(fd, data.span()).ok());
  ASSERT_TRUE(process_->Fsync(fd).ok());
  // Visible at the disk layer after fsync.
  Result<sp<File>> under =
      ResolveAs<File>(sfs_.disk, "durable", Credentials::System());
  ASSERT_TRUE(under.ok());
  EXPECT_EQ((*under)->Stat()->size, 6u);
}

TEST_F(PosixTest, WorksOverCompressedStack) {
  sp<CompLayer> compfs =
      CompLayer::Create(Domain::Create("compfs"), CompLayerOptions{}, &clock_);
  ASSERT_TRUE(compfs->StackOn(sfs_.root).ok());
  Process proc(compfs);
  int fd = *proc.Open("doc", kRdWr | kCreate);
  std::string text;
  for (int i = 0; i < 100; ++i) {
    text += "posix over compression over coherency over disk. ";
  }
  Buffer data(text);
  ASSERT_TRUE(proc.Write(fd, data.span()).ok());
  ASSERT_TRUE(proc.Fsync(fd).ok());
  ASSERT_TRUE(proc.Lseek(fd, 0, Whence::kSet).ok());
  Buffer out(text.size());
  EXPECT_EQ(*proc.Read(fd, out.mutable_span()), text.size());
  EXPECT_EQ(out.ToString(), text);
}

}  // namespace
}  // namespace springfs::posix
