// Tests for SFS = coherency layer stacked on the disk layer (paper §6.2,
// Figure 10): data/attribute caching, coherent mapped clients, domain
// placement transparency, Table 2's cached fast paths, persistence, and a
// randomized workload checked against a reference model plus fsck.

#include <gtest/gtest.h>

#include <map>

#include "src/layers/sfs/sfs.h"
#include "src/support/rng.h"
#include "src/ufs/checker.h"
#include "src/vmm/vmm.h"

namespace springfs {
namespace {

class SfsTest : public ::testing::TestWithParam<SfsPlacement> {
 protected:
  void SetUp() override {
    device_ = std::make_unique<MemBlockDevice>(ufs::kBlockSize, 8192);
    SfsOptions options;
    options.placement = GetParam();
    Result<Sfs> sfs = CreateSfs(device_.get(), options, &clock_);
    ASSERT_TRUE(sfs.ok()) << sfs.status().ToString();
    sfs_ = sfs.take_value();
  }

  Credentials sys_ = Credentials::System();
  FakeClock clock_;
  std::unique_ptr<MemBlockDevice> device_;
  Sfs sfs_;
};

TEST_P(SfsTest, CreateWriteReadStat) {
  sp<File> file = *sfs_.root->CreateFile(*Name::Parse("f"), sys_);
  Buffer data(std::string("through the whole stack"));
  ASSERT_TRUE(file->Write(0, data.span()).ok());
  Buffer out(data.size());
  EXPECT_EQ(*file->Read(0, out.mutable_span()), data.size());
  EXPECT_EQ(out.ToString(), "through the whole stack");
  Result<FileAttributes> attrs = file->Stat();
  ASSERT_TRUE(attrs.ok());
  EXPECT_EQ(attrs->size, data.size());
}

TEST_P(SfsTest, ResolveReturnsSameWrappedFile) {
  sp<File> created = *sfs_.root->CreateFile(*Name::Parse("same"), sys_);
  Result<sp<File>> resolved = ResolveAs<File>(sfs_.root, "same", sys_);
  ASSERT_TRUE(resolved.ok());
  EXPECT_EQ(*resolved, created);
}

TEST_P(SfsTest, SubdirectoriesWorkThroughTheStack) {
  ASSERT_TRUE(sfs_.root->CreateContext(*Name::Parse("a"), sys_).ok());
  Result<sp<Context>> a = ResolveAs<Context>(sfs_.root, "a", sys_);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE((*a)->CreateContext(*Name::Parse("b"), sys_).ok());
  sp<File> file = *sfs_.root->CreateFile(*Name::Parse("a/b/f"), sys_);
  Buffer data(std::string("nested"));
  ASSERT_TRUE(file->Write(0, data.span()).ok());
  Result<sp<File>> through = ResolveAs<File>(sfs_.root, "a/b/f", sys_);
  ASSERT_TRUE(through.ok());
  Buffer out(6);
  EXPECT_EQ(*(*through)->Read(0, out.mutable_span()), 6u);
  EXPECT_EQ(out.ToString(), "nested");
}

TEST_P(SfsTest, WritesReachDiskOnSync) {
  sp<File> file = *sfs_.root->CreateFile(*Name::Parse("durable"), sys_);
  Buffer data(std::string("must persist"));
  ASSERT_TRUE(file->Write(0, data.span()).ok());
  ASSERT_TRUE(sfs_.root->SyncFs().ok());
  // Read through the *disk layer* directly: the coherency layer must have
  // pushed both data and the length attribute down.
  Result<sp<File>> under = ResolveAs<File>(sfs_.disk, "durable", sys_);
  ASSERT_TRUE(under.ok());
  EXPECT_EQ((*under)->Stat()->size, data.size());
  Buffer out(data.size());
  EXPECT_EQ(*(*under)->Read(0, out.mutable_span()), data.size());
  EXPECT_EQ(out.ToString(), "must persist");
}

TEST_P(SfsTest, PersistsAcrossRemount) {
  sp<File> file = *sfs_.root->CreateFile(*Name::Parse("keep"), sys_);
  Buffer data(std::string("remount me"));
  ASSERT_TRUE(file->Write(0, data.span()).ok());
  ASSERT_TRUE(sfs_.root->SyncFs().ok());
  file.reset();
  sfs_ = Sfs{};  // unmount everything

  SfsOptions options;
  options.placement = GetParam();
  options.format = false;
  Result<Sfs> again = CreateSfs(device_.get(), options, &clock_);
  ASSERT_TRUE(again.ok());
  Result<sp<File>> found = ResolveAs<File>(again->root, "keep", sys_);
  ASSERT_TRUE(found.ok());
  Buffer out(10);
  EXPECT_EQ(*(*found)->Read(0, out.mutable_span()), 10u);
  EXPECT_EQ(out.ToString(), "remount me");
}

TEST_P(SfsTest, MappedClientsAreCoherentThroughSfs) {
  if (GetParam() == SfsPlacement::kNotStacked) {
    GTEST_SKIP() << "the bare disk layer is non-coherent by design";
  }
  sp<File> file = *sfs_.root->CreateFile(*Name::Parse("coh"), sys_);
  ASSERT_TRUE(file->SetLength(kPageSize).ok());
  sp<Domain> node = Domain::Create("client-node");
  sp<Vmm> vmm1 = Vmm::Create(node, "vmm1");
  sp<Vmm> vmm2 = Vmm::Create(node, "vmm2");
  sp<MappedRegion> w = *vmm1->Map(file, AccessRights::kReadWrite);
  sp<MappedRegion> r = *vmm2->Map(file, AccessRights::kReadOnly);

  Buffer out(5);
  ASSERT_TRUE(r->Read(0, out.mutable_span()).ok());  // cache the zero page
  Buffer data(std::string("fresh"));
  ASSERT_TRUE(w->Write(0, data.span()).ok());
  ASSERT_TRUE(r->Read(0, out.mutable_span()).ok());
  EXPECT_EQ(out.ToString(), "fresh") << "SFS failed to keep mappings coherent";
}

TEST_P(SfsTest, FileOpsCoherentWithMappings) {
  if (GetParam() == SfsPlacement::kNotStacked) {
    GTEST_SKIP() << "the bare disk layer is non-coherent by design";
  }
  sp<File> file = *sfs_.root->CreateFile(*Name::Parse("mix"), sys_);
  ASSERT_TRUE(file->SetLength(kPageSize).ok());
  sp<Domain> node = Domain::Create("client-node");
  sp<Vmm> vmm = Vmm::Create(node, "vmm");
  sp<MappedRegion> region = *vmm->Map(file, AccessRights::kReadWrite);

  // Mapped write, then file read.
  Buffer via_map(std::string("via-map"));
  ASSERT_TRUE(region->Write(0, via_map.span()).ok());
  Buffer out(7);
  ASSERT_TRUE(file->Read(0, out.mutable_span()).ok());
  EXPECT_EQ(out.ToString(), "via-map");

  // File write, then mapped read.
  Buffer via_file(std::string("via-fil"));
  ASSERT_TRUE(file->Write(0, via_file.span()).ok());
  ASSERT_TRUE(region->Read(0, out.mutable_span()).ok());
  EXPECT_EQ(out.ToString(), "via-fil");
}

TEST_P(SfsTest, CachedOperationsSkipTheLowerLayer) {
  if (GetParam() != SfsPlacement::kTwoDomains) {
    GTEST_SKIP() << "lower-layer traffic is observable via domain crossings "
                    "only in the two-domain configuration";
  }
  sp<File> file = *sfs_.root->CreateFile(*Name::Parse("hot"), sys_);
  Buffer data(std::string("hot data"));
  ASSERT_TRUE(file->Write(0, data.span()).ok());
  Buffer out(8);
  ASSERT_TRUE(file->Read(0, out.mutable_span()).ok());
  ASSERT_TRUE(file->Stat().ok());

  // Warm: further reads/writes/stats must not call into the disk domain.
  sfs_.disk_domain->ResetStats();
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(file->Read(0, out.mutable_span()).ok());
    ASSERT_TRUE(file->Write(0, data.span()).ok());
    ASSERT_TRUE(file->Stat().ok());
  }
  EXPECT_EQ(metrics::StatValue(*sfs_.disk_domain, "cross_calls"), 0u)
      << "cached coherency-layer ops still reached the disk layer";
  EXPECT_EQ(metrics::StatValue(*sfs_.disk_domain, "inline_calls"), 0u);
}

TEST_P(SfsTest, TruncateDiscardsBeyondEofEverywhere) {
  if (GetParam() == SfsPlacement::kNotStacked) {
    GTEST_SKIP() << "truncation coherence needs the coherency layer";
  }
  sp<File> file = *sfs_.root->CreateFile(*Name::Parse("trunc"), sys_);
  Buffer data(std::string("0123456789"));
  ASSERT_TRUE(file->Write(0, data.span()).ok());
  sp<Domain> node = Domain::Create("client-node");
  sp<Vmm> vmm = Vmm::Create(node, "vmm");
  sp<MappedRegion> region = *vmm->Map(file, AccessRights::kReadOnly);
  Buffer out(10);
  ASSERT_TRUE(region->Read(0, out.mutable_span()).ok());

  ASSERT_TRUE(file->SetLength(4).ok());
  EXPECT_EQ(*file->GetLength(), 4u);
  // Extending again must yield zeros, both via file ops and the mapping.
  ASSERT_TRUE(file->SetLength(10).ok());
  ASSERT_TRUE(file->Read(0, out.mutable_span()).ok());
  EXPECT_EQ(out.ToString().substr(0, 4), "0123");
  for (int i = 4; i < 10; ++i) {
    EXPECT_EQ(out.data()[i], 0) << "stale byte at " << i;
  }
  ASSERT_TRUE(region->Read(0, out.mutable_span()).ok());
  for (int i = 4; i < 10; ++i) {
    EXPECT_EQ(out.data()[i], 0) << "stale mapped byte at " << i;
  }
}

TEST_P(SfsTest, FsInfoReportsStackDepth) {
  Result<FsInfo> info = sfs_.root->GetFsInfo();
  ASSERT_TRUE(info.ok());
  if (GetParam() == SfsPlacement::kNotStacked) {
    EXPECT_EQ(info->type, "disk");
    EXPECT_EQ(info->stack_depth, 1u);
  } else {
    EXPECT_EQ(info->type, "coherency(disk)");
    EXPECT_EQ(info->stack_depth, 2u);
  }
}

TEST_P(SfsTest, RandomWorkloadMatchesModelAndDiskStaysConsistent) {
  Rng rng(20260707);
  std::map<std::string, Buffer> model;
  std::map<std::string, sp<File>> files;

  for (int step = 0; step < 200; ++step) {
    uint64_t action = rng.Below(10);
    if (action < 3 || files.empty()) {
      std::string name = "f" + std::to_string(rng.Below(12));
      if (files.count(name)) {
        continue;
      }
      Result<sp<File>> file = sfs_.root->CreateFile(Name::Single(name), sys_);
      if (file.ok()) {
        files[name] = *file;
        model[name] = Buffer();
      }
    } else {
      auto it = files.begin();
      std::advance(it, rng.Below(files.size()));
      const std::string& name = it->first;
      sp<File>& file = it->second;
      if (action < 7) {  // write
        uint64_t offset = rng.Below(3 * kPageSize);
        Buffer data = rng.RandomBuffer(rng.Range(1, kPageSize));
        ASSERT_TRUE(file->Write(offset, data.span()).ok());
        model[name].WriteAt(offset, data.span());
      } else if (action < 9) {  // read & compare
        const Buffer& ref = model[name];
        uint64_t offset = rng.Below(4 * kPageSize);
        size_t len = rng.Range(1, kPageSize);
        Buffer got(len), expect(len);
        Result<size_t> n = file->Read(offset, got.mutable_span());
        ASSERT_TRUE(n.ok());
        size_t ref_n = ref.ReadAt(offset, expect.mutable_span());
        ASSERT_EQ(*n, ref_n) << name << " offset " << offset;
        EXPECT_TRUE(std::equal(got.data(), got.data() + *n, expect.data()));
      } else {  // truncate
        uint64_t new_size = rng.Below(3 * kPageSize);
        ASSERT_TRUE(file->SetLength(new_size).ok());
        Buffer& ref = model[name];
        if (new_size <= ref.size()) {
          Buffer shrunk(new_size);
          ref.ReadAt(0, shrunk.mutable_span());
          ref = shrunk;
        } else {
          ref.resize(new_size);
        }
      }
    }
  }

  // Push everything to disk and fsck the device.
  ASSERT_TRUE(sfs_.root->SyncFs().ok());
  for (auto& [name, ref] : model) {
    Result<sp<File>> under = ResolveAs<File>(sfs_.disk, name, sys_);
    ASSERT_TRUE(under.ok());
    EXPECT_EQ((*under)->Stat()->size, ref.size()) << name;
  }
  files.clear();
  sfs_ = Sfs{};
  ufs::Checker checker(device_.get());
  Result<ufs::CheckReport> report = checker.Check();
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->clean()) << report->Summary();
}

INSTANTIATE_TEST_SUITE_P(
    Placements, SfsTest,
    ::testing::Values(SfsPlacement::kNotStacked, SfsPlacement::kOneDomain,
                      SfsPlacement::kTwoDomains),
    [](const ::testing::TestParamInfo<SfsPlacement>& info) {
      switch (info.param) {
        case SfsPlacement::kNotStacked:
          return "NotStacked";
        case SfsPlacement::kOneDomain:
          return "OneDomain";
        case SfsPlacement::kTwoDomains:
          return "TwoDomains";
      }
      return "Unknown";
    });

// --- uncached (write-through) configuration: Table 2's "No" rows ---

TEST(SfsUncachedTest, OperationsAlwaysReachTheLowerLayer) {
  MemBlockDevice device(ufs::kBlockSize, 4096);
  FakeClock clock;
  SfsOptions options;
  options.placement = SfsPlacement::kTwoDomains;
  options.coherency.cache_data = false;
  options.coherency.cache_attrs = false;
  Sfs sfs = *CreateSfs(&device, options, &clock);

  sp<File> file = *sfs.root->CreateFile(*Name::Parse("wt"), Credentials::System());
  Buffer data(std::string("write through"));
  ASSERT_TRUE(file->Write(0, data.span()).ok());

  sfs.disk_domain->ResetStats();
  Buffer out(13);
  ASSERT_TRUE(file->Read(0, out.mutable_span()).ok());
  EXPECT_EQ(out.ToString(), "write through");
  ASSERT_TRUE(file->Stat().ok());
  EXPECT_GT(metrics::StatValue(*sfs.disk_domain, "cross_calls"), 0u)
      << "uncached coherency layer should delegate to the disk layer";
}

TEST(SfsUncachedTest, UncachedStackIsStillCoherent) {
  MemBlockDevice device(ufs::kBlockSize, 4096);
  FakeClock clock;
  SfsOptions options;
  options.coherency.cache_data = false;
  Sfs sfs = *CreateSfs(&device, options, &clock);
  sp<File> file = *sfs.root->CreateFile(*Name::Parse("c"), Credentials::System());
  ASSERT_TRUE(file->SetLength(kPageSize).ok());

  sp<Domain> node = Domain::Create("n");
  sp<Vmm> vmm1 = Vmm::Create(node, "vmm1");
  sp<Vmm> vmm2 = Vmm::Create(node, "vmm2");
  sp<MappedRegion> w = *vmm1->Map(file, AccessRights::kReadWrite);
  sp<MappedRegion> r = *vmm2->Map(file, AccessRights::kReadOnly);
  Buffer out(4);
  ASSERT_TRUE(r->Read(0, out.mutable_span()).ok());
  Buffer data(std::string("sync"));
  ASSERT_TRUE(w->Write(0, data.span()).ok());
  ASSERT_TRUE(r->Read(0, out.mutable_span()).ok());
  EXPECT_EQ(out.ToString(), "sync");
}

}  // namespace
}  // namespace springfs
