// Tests for the striped multi-server DFS (DESIGN.md §14): the RAID-0
// striping math, the stripe-map wire type, end-to-end striped I/O over a
// metadata server plus N data servers, data distribution across the
// per-server stripe objects, per-stripe recovery from a data-server kill
// and restart, cross-client coherency through per-data-server recalls, and
// the non-striped-server fallback.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/layers/dfs/dfs_client.h"
#include "src/layers/dfs/dfs_server.h"
#include "src/layers/dfs/striped_client.h"
#include "src/layers/sfs/sfs.h"
#include "src/support/rng.h"
#include "src/vmm/vmm.h"

namespace springfs {
namespace {

using dfs::ComputeStripeExtents;
using dfs::DfsClient;
using dfs::DfsServer;
using dfs::LocalLengthFor;
using dfs::StripedDfsClient;
using dfs::StripeExtent;
using dfs::StripeMapResponse;

constexpr uint64_t kSS = kPageSize;  // one-page stripes: every page moves

// --- striping math ---

TEST(StripeMath, AlignedExtentsRoundRobin) {
  std::vector<StripeExtent> exts = ComputeStripeExtents(0, 3 * kSS, kSS, 2);
  ASSERT_EQ(exts.size(), 3u);
  EXPECT_EQ(exts[0].target, 0u);
  EXPECT_EQ(exts[0].logical_offset, 0u);
  EXPECT_EQ(exts[0].local_offset, 0u);
  EXPECT_EQ(exts[0].size, kSS);
  EXPECT_EQ(exts[1].target, 1u);
  EXPECT_EQ(exts[1].local_offset, 0u);
  EXPECT_EQ(exts[2].target, 0u);
  EXPECT_EQ(exts[2].logical_offset, 2 * kSS);
  EXPECT_EQ(exts[2].local_offset, kSS);  // second stripe unit on target 0
}

TEST(StripeMath, UnalignedRequestSplitsAtStripeBoundaries) {
  // [kSS/2, kSS/2 + kSS) straddles stripes 0 and 1.
  std::vector<StripeExtent> exts =
      ComputeStripeExtents(kSS / 2, kSS, kSS, 2);
  ASSERT_EQ(exts.size(), 2u);
  EXPECT_EQ(exts[0].target, 0u);
  EXPECT_EQ(exts[0].logical_offset, kSS / 2);
  EXPECT_EQ(exts[0].local_offset, kSS / 2);
  EXPECT_EQ(exts[0].size, kSS / 2);
  EXPECT_EQ(exts[1].target, 1u);
  EXPECT_EQ(exts[1].logical_offset, kSS);
  EXPECT_EQ(exts[1].local_offset, 0u);
  EXPECT_EQ(exts[1].size, kSS / 2);
}

TEST(StripeMath, WidthOneDegeneratesToOneExtentPerStripeUnit) {
  std::vector<StripeExtent> exts = ComputeStripeExtents(0, 2 * kSS, kSS, 1);
  ASSERT_EQ(exts.size(), 2u);
  EXPECT_EQ(exts[0].target, 0u);
  EXPECT_EQ(exts[1].target, 0u);
  EXPECT_EQ(exts[1].local_offset, kSS);  // width 1: local == logical
}

TEST(StripeMath, EmptyRequestYieldsNoExtents) {
  EXPECT_TRUE(ComputeStripeExtents(123, 0, kSS, 4).empty());
}

TEST(StripeMath, LocalLengths) {
  // Empty file: nothing anywhere.
  EXPECT_EQ(LocalLengthFor(0, 0, kSS, 2), 0u);
  EXPECT_EQ(LocalLengthFor(1, 0, kSS, 2), 0u);
  // One byte: only target 0's first stripe unit exists.
  EXPECT_EQ(LocalLengthFor(0, 1, kSS, 2), 1u);
  EXPECT_EQ(LocalLengthFor(1, 1, kSS, 2), 0u);
  // 2.5 stripe units over width 2: target 0 holds stripes {0, 2} (one
  // full + the half tail), target 1 holds stripe 1 (full).
  EXPECT_EQ(LocalLengthFor(0, 2 * kSS + kSS / 2, kSS, 2), kSS + kSS / 2);
  EXPECT_EQ(LocalLengthFor(1, 2 * kSS + kSS / 2, kSS, 2), kSS);
  // 5 full units over width 2: 3 on target 0, 2 on target 1.
  EXPECT_EQ(LocalLengthFor(0, 5 * kSS, kSS, 2), 3 * kSS);
  EXPECT_EQ(LocalLengthFor(1, 5 * kSS, kSS, 2), 2 * kSS);
  // The per-target lengths always sum back to the logical length.
  for (uint64_t length : {uint64_t{1}, kSS - 1, kSS, 7 * kSS + 13}) {
    for (size_t width : {size_t{1}, size_t{2}, size_t{4}}) {
      uint64_t sum = 0;
      for (size_t k = 0; k < width; ++k) {
        sum += LocalLengthFor(k, length, kSS, width);
      }
      EXPECT_EQ(sum, length) << "length " << length << " width " << width;
    }
  }
}

TEST(StripeMath, ExtentsCoverExactlyOnce) {
  // Property: for arbitrary ranges the extents tile the range with no gap
  // or overlap, each within its stripe unit.
  Rng rng(99);
  for (int i = 0; i < 200; ++i) {
    uint64_t ss = (1 + rng.Below(4)) * 512;
    size_t width = 1 + static_cast<size_t>(rng.Below(5));
    uint64_t offset = rng.Below(10 * ss);
    uint64_t size = 1 + rng.Below(6 * ss);
    std::vector<StripeExtent> exts =
        ComputeStripeExtents(offset, size, ss, width);
    uint64_t expect = offset;
    for (const StripeExtent& e : exts) {
      EXPECT_EQ(e.logical_offset, expect);
      EXPECT_LT(e.target, width);
      uint64_t stripe = e.logical_offset / ss;
      EXPECT_EQ(stripe % width, e.target);
      EXPECT_EQ(e.local_offset,
                (stripe / width) * ss + (e.logical_offset % ss));
      EXPECT_LE(e.logical_offset % ss + e.size, ss);  // never crosses a unit
      expect += e.size;
    }
    EXPECT_EQ(expect, offset + size);
  }
}

// --- wire type ---

TEST(StripedWire, StripeMapRoundTrip) {
  StripeMapResponse map;
  map.stripe_size = 4 * kPageSize;
  map.length = 123456;
  map.map_version = 9;
  map.replicas = 2;
  map.object_name = "stripe-00deadbeef00cafe";
  map.targets.push_back({"data0", "dfs-data", {42, 43}, false});
  map.targets.push_back(
      {"data1", "dfs-data", {(uint64_t{7} << 32) + 1, 0}, true});
  Buffer wire = map.Encode();
  Result<StripeMapResponse> back = StripeMapResponse::Decode(wire.span());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->stripe_size, map.stripe_size);
  EXPECT_EQ(back->length, map.length);
  EXPECT_EQ(back->map_version, 9u);
  EXPECT_EQ(back->replicas, 2u);
  EXPECT_EQ(back->object_name, map.object_name);
  ASSERT_EQ(back->targets.size(), 2u);
  EXPECT_EQ(back->targets[0].node, "data0");
  EXPECT_EQ(back->targets[1].service, "dfs-data");
  EXPECT_FALSE(back->targets[0].stale);
  EXPECT_TRUE(back->targets[1].stale);
  ASSERT_EQ(back->targets[0].lane_handles.size(), 2u);
  EXPECT_EQ(back->targets[0].lane_handles[1], 43u);
  ASSERT_EQ(back->targets[1].lane_handles.size(), 2u);
  EXPECT_EQ(back->targets[1].lane_handles[0], (uint64_t{7} << 32) + 1);
  EXPECT_EQ(back->targets[1].lane_handles[1], 0u);

  Buffer junk(std::string("zz"));
  EXPECT_FALSE(StripeMapResponse::Decode(junk.span()).ok());
}

TEST(StripedWire, RequestIdTableMintsFreshIdOnRetarget) {
  dfs::StripeRequestIdTable ids;
  bool retargeted = true;
  uint64_t first = ids.IdFor(0, 1, &retargeted);
  EXPECT_FALSE(retargeted);  // first target for this extent
  // Retransmission to the SAME target reuses the id (server-side dedup).
  EXPECT_EQ(ids.IdFor(0, 1, &retargeted), first);
  EXPECT_FALSE(retargeted);
  // A map refresh moved the extent to a different server: the id must be
  // fresh — replaying the old id into the new server's dedup window could
  // alias an unrelated entry there.
  uint64_t moved = ids.IdFor(0, 2, &retargeted);
  EXPECT_TRUE(retargeted);
  EXPECT_NE(moved, first);
  // ...and is itself stable across retries.
  EXPECT_EQ(ids.IdFor(0, 2, &retargeted), moved);
  EXPECT_FALSE(retargeted);
  // Other extents mint independently, no retarget flagged.
  uint64_t other = ids.IdFor(3, 1, &retargeted);
  EXPECT_FALSE(retargeted);
  EXPECT_NE(other, first);
}

// --- striped cluster fixture ---
//
// A metadata server over its own SFS, `width` data servers each over their
// own SFS, and a striped client; one-page stripes so a few pages of I/O
// exercise every target and boundary.

struct StripedWorld {
  Credentials sys = Credentials::System();
  FakeClock clock;
  std::unique_ptr<net::Network> network;
  sp<net::Node> client_node, client2_node, mds_node;
  std::vector<sp<net::Node>> data_nodes;
  std::vector<std::unique_ptr<MemBlockDevice>> devices;
  std::vector<Sfs> stores;  // [0..width-1] data, [width] metadata
  std::vector<sp<DfsServer>> data_servers;
  std::vector<sp<DfsServer>> retired_servers;  // see chaos_dfs_test.cpp
  sp<DfsServer> mds;
  sp<StripedDfsClient> client;
  dfs::DfsServerOptions mds_options;

  // `replicas` defaults to 1: the original single-copy semantics most
  // tests assert (an unreachable target fails its own stripes). The
  // replication tests pass 2.
  explicit StripedWorld(size_t width, uint32_t replicas = 1) {
    network = std::make_unique<net::Network>(&clock, 1000);
    client_node = network->AddNode("client");
    client2_node = network->AddNode("client2");
    mds_node = network->AddNode("mds");
    mds_options.stripe_size = kSS;
    mds_options.stripe_replicas = replicas;
    for (size_t k = 0; k < width; ++k) {
      data_nodes.push_back(network->AddNode("data" + std::to_string(k)));
      devices.push_back(
          std::make_unique<MemBlockDevice>(ufs::kBlockSize, 4096));
      stores.push_back(*CreateSfs(devices.back().get(), SfsOptions{}, &clock));
      data_servers.push_back(*DfsServer::Create(
          data_nodes[k], network.get(), "dfs-data", stores[k].root, &clock));
      mds_options.stripe_targets.push_back(
          {data_nodes[k]->name(), "dfs-data"});
    }
    devices.push_back(std::make_unique<MemBlockDevice>(ufs::kBlockSize, 4096));
    stores.push_back(*CreateSfs(devices.back().get(), SfsOptions{}, &clock));
    mds = *DfsServer::Create(mds_node, network.get(), "dfs-meta",
                             stores.back().root, &clock, mds_options);
    client = *StripedDfsClient::Mount(client_node, network.get(), "mds",
                                      "dfs-meta", &clock);
  }

  // Replaces data server k with a fresh instance over the same store (new
  // boot epoch, fresh handle space). The predecessor is retired, not
  // destroyed: its tombstone would stamp the successor's service.
  void RestartDataServer(size_t k) {
    retired_servers.push_back(data_servers[k]);
    data_servers[k] = *DfsServer::Create(data_nodes[k], network.get(),
                                         "dfs-data", stores[k].root, &clock);
  }

  // Fails data server k the hard way: partitions its node, so every frame
  // to it completes kConnectionLost immediately. (Destroying the instance
  // would not do — the store's cache bindings keep it alive — and the
  // network's view of dead is what the client sees either way.)
  void KillDataServer(size_t k) {
    network->SetPartitioned(data_nodes[k]->name(), true);
  }

  // Heals the partition and brings a fresh instance up over the same
  // store (new boot epoch, fresh handle space) — a replacement server.
  void ReviveDataServer(size_t k) {
    network->SetPartitioned(data_nodes[k]->name(), false);
    RestartDataServer(k);
  }

  // Replaces the metadata server in place over the same metadata store —
  // an MDS failover. Stripe maps are re-derived on demand (durable object
  // names + the staleness sidecar), so the successor needs no warm state.
  void RestartMds() {
    retired_servers.push_back(mds);
    mds = *DfsServer::Create(mds_node, network.get(), "dfs-meta",
                             stores.back().root, &clock, mds_options);
  }

  // Reads lane `lane`'s stripe object on data server k through its own
  // plain DFS mount (server-side caches cannot hide unflushed pages).
  Buffer ReadLaneObject(size_t k, const std::string& object_name,
                        size_t lane) {
    std::string name = object_name;
    if (lane > 0) {
      name += "-r" + std::to_string(lane);
    }
    sp<DfsClient> direct = *DfsClient::Mount(
        client2_node, network.get(), data_nodes[k]->name(), "dfs-data",
        &clock);
    Result<sp<File>> object = ResolveAs<File>(direct, name, sys);
    if (!object.ok()) {
      return Buffer{};
    }
    uint64_t len = *(*object)->GetLength();
    Buffer out(len);
    EXPECT_EQ(*(*object)->Read(0, out.mutable_span()), len);
    return out;
  }

  // The stripe object's durable (lane-0) name, read off a data store's
  // root (every data server of one file holds the same name). Replica
  // lanes append "-r<lane>", so the base name is the shortest match.
  std::string StripeObjectName(size_t k) {
    std::string best;
    std::vector<BindingInfo> entries = *stores[k].root->List(sys);
    for (const BindingInfo& entry : entries) {
      if (entry.name.rfind("stripe-", 0) == 0 &&
          (best.empty() || entry.name.size() < best.size())) {
        best = entry.name;
      }
    }
    return best;
  }
};

Buffer PatternPage(uint8_t tag) {
  Buffer page(kPageSize);
  for (size_t i = 0; i < kPageSize; ++i) {
    page.data()[i] = static_cast<uint8_t>(tag ^ (i & 0xff));
  }
  return page;
}

TEST(StripedDfs, ReadWriteRoundTripWidthTwo) {
  StripedWorld world(2);
  sp<File> file = *world.client->CreateStriped("f");

  // Five pages: odd count, so the targets hold unequal shares.
  Buffer data(5 * kPageSize);
  Rng rng(7);
  Buffer fill = rng.RandomBuffer(data.size());
  std::memcpy(data.data(), fill.data(), data.size());
  ASSERT_EQ(*file->Write(0, data.span()), data.size());
  EXPECT_EQ(*file->GetLength(), data.size());

  Buffer back(data.size());
  ASSERT_EQ(*file->Read(0, back.mutable_span()), data.size());
  EXPECT_EQ(std::memcmp(back.data(), data.data(), data.size()), 0);

  // Sub-range reads that straddle stripe boundaries.
  Buffer mid(2 * kPageSize);
  ASSERT_EQ(*file->Read(kPageSize / 2, mid.mutable_span()), mid.size());
  EXPECT_EQ(std::memcmp(mid.data(), data.data() + kPageSize / 2, mid.size()),
            0);

  // Unaligned overwrite straddling stripes 2 and 3 (targets 0 and 1).
  Buffer patch = PatternPage(0xAB);
  uint64_t patch_at = 3 * kPageSize - kPageSize / 2;
  ASSERT_EQ(*file->Write(patch_at, patch.span()), patch.size());
  std::memcpy(data.data() + patch_at, patch.data(), patch.size());
  ASSERT_EQ(*file->Read(0, back.mutable_span()), data.size());
  EXPECT_EQ(std::memcmp(back.data(), data.data(), data.size()), 0);

  // Reads past EOF are short; reads at EOF are empty.
  Buffer tail(2 * kPageSize);
  EXPECT_EQ(*file->Read(4 * kPageSize, tail.mutable_span()),
            static_cast<size_t>(kPageSize));
  EXPECT_EQ(*file->Read(5 * kPageSize, tail.mutable_span()), 0u);

  // A reopen from a second client sees the same bytes.
  sp<StripedDfsClient> other = *StripedDfsClient::Mount(
      world.client2_node, world.network.get(), "mds", "dfs-meta",
      &world.clock);
  sp<File> theirs = *other->OpenStriped("f");
  Buffer again(data.size());
  ASSERT_EQ(*theirs->Read(0, again.mutable_span()), data.size());
  EXPECT_EQ(std::memcmp(again.data(), data.data(), data.size()), 0);

  EXPECT_GE(metrics::StatValue(*world.client, "map_fetches"), 1u);
  EXPECT_GE(metrics::StatValue(*world.client, "stripe_extents"), 5u);
}

TEST(StripedDfs, DataLandsOnStripeOwners) {
  StripedWorld world(2);
  sp<File> file = *world.client->CreateStriped("f");
  Buffer data(5 * kPageSize);
  for (int p = 0; p < 5; ++p) {
    Buffer page = PatternPage(static_cast<uint8_t>(0x10 + p));
    std::memcpy(data.data() + p * kPageSize, page.data(), kPageSize);
  }
  ASSERT_EQ(*file->Write(0, data.span()), data.size());
  ASSERT_TRUE(file->SyncFile().ok());

  // Both data stores hold the same durable stripe-object name, and each
  // object's length is exactly this target's share of the logical length.
  std::string object_name = world.StripeObjectName(0);
  ASSERT_FALSE(object_name.empty());
  EXPECT_EQ(world.StripeObjectName(1), object_name);

  for (size_t k = 0; k < 2; ++k) {
    // Read the stripe object through its own data server (a plain DFS
    // mount), so server-side caches cannot hide unflushed pages.
    sp<DfsClient> direct = *DfsClient::Mount(
        world.client2_node, world.network.get(), world.data_nodes[k]->name(),
        "dfs-data", &world.clock);
    sp<File> object = *ResolveAs<File>(direct, object_name, world.sys);
    uint64_t local_len = LocalLengthFor(k, data.size(), kSS, 2);
    EXPECT_EQ(*object->GetLength(), local_len) << "target " << k;
    Buffer local(local_len);
    ASSERT_EQ(*object->Read(0, local.mutable_span()), local_len);
    // Local stripe unit i on target k is logical stripe i * width + k.
    for (uint64_t i = 0; i * kSS < local_len; ++i) {
      uint64_t logical = (i * 2 + k) * kSS;
      EXPECT_EQ(std::memcmp(local.data() + i * kSS, data.data() + logical,
                            kSS),
                0)
          << "target " << k << " local unit " << i;
    }
  }
}

TEST(StripedDfs, UnwrittenStripeHolesReadAsZeros) {
  StripedWorld world(2);
  sp<File> file = *world.client->CreateStriped("f");
  // Write only page 1 (stripe 1, target 1): the logical length becomes two
  // pages, but target 0's stripe object stays empty.
  Buffer page = PatternPage(0x5A);
  ASSERT_EQ(*file->Write(kPageSize, page.span()), page.size());
  EXPECT_EQ(*file->GetLength(), 2 * kPageSize);

  Buffer back(2 * kPageSize);
  ASSERT_EQ(*file->Read(0, back.mutable_span()), back.size());
  for (size_t i = 0; i < kPageSize; ++i) {
    ASSERT_EQ(back.data()[i], 0) << "hole byte " << i;
  }
  EXPECT_EQ(std::memcmp(back.data() + kPageSize, page.data(), kPageSize), 0);
  EXPECT_GE(metrics::StatValue(*world.client, "zero_fills"), 1u);
}

TEST(StripedDfs, SetLengthTruncatesEveryTarget) {
  StripedWorld world(2);
  sp<File> file = *world.client->CreateStriped("f");
  Buffer data(4 * kPageSize);
  Rng rng(11);
  Buffer fill = rng.RandomBuffer(data.size());
  std::memcpy(data.data(), fill.data(), data.size());
  ASSERT_EQ(*file->Write(0, data.span()), data.size());

  ASSERT_TRUE(file->SetLength(kPageSize + kPageSize / 2).ok());
  EXPECT_EQ(*file->GetLength(), kPageSize + kPageSize / 2);
  Buffer back(4 * kPageSize);
  EXPECT_EQ(*file->Read(0, back.mutable_span()),
            static_cast<size_t>(kPageSize + kPageSize / 2));
  EXPECT_EQ(std::memcmp(back.data(), data.data(), kPageSize + kPageSize / 2),
            0);

  // Growing it back exposes zeros, not the truncated bytes.
  ASSERT_TRUE(file->SetLength(4 * kPageSize).ok());
  ASSERT_EQ(*file->Read(0, back.mutable_span()), back.size());
  for (size_t i = kPageSize + kPageSize / 2; i < back.size(); ++i) {
    ASSERT_EQ(back.data()[i], 0) << "byte " << i;
  }
}

TEST(StripedDfs, NonStripedServerRejectsStripedOpen) {
  FakeClock clock;
  net::Network network(&clock, 1000);
  sp<net::Node> server_node = network.AddNode("server");
  sp<net::Node> client_node = network.AddNode("client");
  MemBlockDevice device(ufs::kBlockSize, 4096);
  Sfs sfs = *CreateSfs(&device, SfsOptions{}, &clock);
  sp<DfsServer> server =  // no stripe_targets: a plain single server
      *DfsServer::Create(server_node, &network, "dfs", sfs.root, &clock);
  ASSERT_TRUE(sfs.root->CreateFile(*Name::Parse("plain"),
                                   Credentials::System()).ok());

  sp<StripedDfsClient> client =
      *StripedDfsClient::Mount(client_node, &network, "server", "dfs",
                               &clock);
  EXPECT_EQ(client->OpenStriped("plain").status().code(),
            ErrorCode::kInvalidArgument);
  EXPECT_EQ(client->CreateStriped("fresh").status().code(),
            ErrorCode::kInvalidArgument);
  // The metadata path still serves the file the ordinary way.
  sp<File> plain = *ResolveAs<File>(client->meta(), "plain",
                                    Credentials::System());
  EXPECT_EQ(*plain->GetLength(), 0u);
}

TEST(StripedDfs, DataServerRestartRecoversPerStripe) {
  StripedWorld world(2);
  sp<File> file = *world.client->CreateStriped("f");
  Buffer data(4 * kPageSize);
  Rng rng(13);
  Buffer fill = rng.RandomBuffer(data.size());
  std::memcpy(data.data(), fill.data(), data.size());
  ASSERT_EQ(*file->Write(0, data.span()), data.size());
  Buffer back(data.size());
  ASSERT_EQ(*file->Read(0, back.mutable_span()), data.size());  // bind caches

  // Restart data server 1: its boot epoch bumps, so the client's handle
  // and cache binding for stripes {1, 3} are dead.
  world.RestartDataServer(1);

  // The next full read hits kStale on target 1, refetches the map, rebinds
  // that stripe, and completes — target 0 is untouched throughout.
  ASSERT_EQ(*file->Read(0, back.mutable_span()), data.size());
  EXPECT_EQ(std::memcmp(back.data(), data.data(), data.size()), 0);
  EXPECT_GE(metrics::StatValue(*world.client, "stripe_rebinds"), 1u);
  EXPECT_GE(metrics::StatValue(*world.client, "target_restarts"), 1u);

  // Writes keep landing after the recovery, on both targets.
  Buffer patch = PatternPage(0xC3);
  ASSERT_EQ(*file->Write(kPageSize, patch.span()), patch.size());
  std::memcpy(data.data() + kPageSize, patch.data(), patch.size());
  ASSERT_EQ(*file->Read(0, back.mutable_span()), data.size());
  EXPECT_EQ(std::memcmp(back.data(), data.data(), data.size()), 0);
}

TEST(StripedDfs, DeadTargetOnlyFailsItsOwnStripes) {
  StripedWorld world(2);
  sp<File> file = *world.client->CreateStriped("f");
  Buffer data(4 * kPageSize);
  Rng rng(17);
  Buffer fill = rng.RandomBuffer(data.size());
  std::memcpy(data.data(), fill.data(), data.size());
  ASSERT_EQ(*file->Write(0, data.span()), data.size());
  Buffer page(kPageSize);
  ASSERT_EQ(*file->Read(0, page.mutable_span()), page.size());

  world.network->SetPartitioned("data1", true);

  // Stripe 0 lives on data0 and keeps serving.
  ASSERT_EQ(*file->Read(0, page.mutable_span()), page.size());
  EXPECT_EQ(std::memcmp(page.data(), data.data(), kPageSize), 0);
  // Stripe 1 lives on data1: the fan-out exhausts its retries and fails
  // without wedging (virtual time: the backoffs cost nothing real).
  Result<size_t> dead = file->Read(kPageSize, page.mutable_span());
  EXPECT_FALSE(dead.ok());

  world.network->SetPartitioned("data1", false);
  Buffer back(data.size());
  ASSERT_EQ(*file->Read(0, back.mutable_span()), data.size());
  EXPECT_EQ(std::memcmp(back.data(), data.data(), data.size()), 0);
  EXPECT_GE(metrics::StatValue(*world.client, "data_retries"), 1u);
  EXPECT_GE(metrics::StatValue(*world.client, "retries_exhausted"), 1u);
}

TEST(StripedDfs, MappedWriteIsRecalledAcrossClients) {
  StripedWorld world(2);
  sp<File> file = *world.client->CreateStriped("f");
  Buffer data(2 * kPageSize);
  Rng rng(19);
  Buffer fill = rng.RandomBuffer(data.size());
  std::memcpy(data.data(), fill.data(), data.size());
  ASSERT_EQ(*file->Write(0, data.span()), data.size());

  // Client A maps the striped file and dirties page 0 in its local cache.
  sp<Vmm> vmm = Vmm::Create(world.client_node->domain(), "vmm-a");
  sp<MappedRegion> region = *vmm->Map(file, AccessRights::kReadWrite);
  Buffer patch = PatternPage(0x77);
  ASSERT_TRUE(region->Write(0, patch.span()).ok());

  // Client B's direct read of page 0 forces data0's coherency engine to
  // recall A's dirty copy through the striped callback path — B must see
  // the mapped write without A ever syncing.
  sp<StripedDfsClient> other = *StripedDfsClient::Mount(
      world.client2_node, world.network.get(), "mds", "dfs-meta",
      &world.clock);
  sp<File> theirs = *other->OpenStriped("f");
  Buffer page(kPageSize);
  ASSERT_EQ(*theirs->Read(0, page.mutable_span()), page.size());
  EXPECT_EQ(std::memcmp(page.data(), patch.data(), kPageSize), 0);
  EXPECT_GE(metrics::StatValue(*world.client, "recalls_received"), 1u);

  // Page 1 (target 1) was never touched by the mapping and stays intact.
  ASSERT_EQ(*theirs->Read(kPageSize, page.mutable_span()), page.size());
  EXPECT_EQ(std::memcmp(page.data(), data.data() + kPageSize, kPageSize), 0);
}

// --- replicated stripes (DESIGN.md §15) ---

TEST(StripedDfsReplicated, WriteMirrorsEveryLane) {
  StripedWorld world(2, /*replicas=*/2);
  sp<File> file = *world.client->CreateStriped("f");
  Buffer data(5 * kPageSize);
  Rng rng(29);
  Buffer fill = rng.RandomBuffer(data.size());
  std::memcpy(data.data(), fill.data(), data.size());
  ASSERT_EQ(*file->Write(0, data.span()), data.size());
  ASSERT_TRUE(file->SyncFile().ok());

  // Replica r of stripe s lives on target (s + r) % width in that
  // server's lane-r object, at the primary's local offset — so lane 1 on
  // target (t + 1) % 2 is byte-identical to lane 0 on target t.
  std::string object_name = world.StripeObjectName(0);
  ASSERT_FALSE(object_name.empty());
  for (size_t t = 0; t < 2; ++t) {
    Buffer primary = world.ReadLaneObject(t, object_name, 0);
    Buffer mirror = world.ReadLaneObject((t + 1) % 2, object_name, 1);
    EXPECT_EQ(primary.size(), LocalLengthFor(t, data.size(), kSS, 2));
    ASSERT_EQ(mirror.size(), primary.size()) << "target " << t;
    EXPECT_EQ(std::memcmp(mirror.data(), primary.data(), primary.size()), 0)
        << "target " << t;
  }

  Buffer back(data.size());
  ASSERT_EQ(*file->Read(0, back.mutable_span()), data.size());
  EXPECT_EQ(std::memcmp(back.data(), data.data(), data.size()), 0);
}

TEST(StripedDfsReplicated, ReadFailsOverWhenDataServerDies) {
  StripedWorld world(2, /*replicas=*/2);
  sp<File> file = *world.client->CreateStriped("f");
  Buffer data(4 * kPageSize);
  Rng rng(31);
  Buffer fill = rng.RandomBuffer(data.size());
  std::memcpy(data.data(), fill.data(), data.size());
  ASSERT_EQ(*file->Write(0, data.span()), data.size());
  Buffer back(data.size());
  ASSERT_EQ(*file->Read(0, back.mutable_span()), data.size());

  // data0 goes dark (kConnectionLost completes immediately): stripes
  // {0, 2} fail over to their lane-1 replicas on data1 WITHIN the same
  // fan-out round — no backoff, no error surfaced.
  world.KillDataServer(0);
  ASSERT_EQ(*file->Read(0, back.mutable_span()), data.size());
  EXPECT_EQ(std::memcmp(back.data(), data.data(), data.size()), 0);
  EXPECT_GE(metrics::StatValue(*world.client, "replica_failovers"), 1u);

  // And keeps doing so for as long as the target stays dark.
  ASSERT_EQ(*file->Read(0, back.mutable_span()), data.size());
  EXPECT_EQ(std::memcmp(back.data(), data.data(), data.size()), 0);
}

TEST(StripedDfsReplicated, DegradedWriteThenRebuildConverges) {
  StripedWorld world(2, /*replicas=*/2);
  sp<File> file = *world.client->CreateStriped("f");
  Buffer data(4 * kPageSize);
  Rng rng(37);
  Buffer fill = rng.RandomBuffer(data.size());
  std::memcpy(data.data(), fill.data(), data.size());
  ASSERT_EQ(*file->Write(0, data.span()), data.size());

  // Kill data1 and keep writing: every extent still reaches a fresh
  // replica, so no client-visible failure.
  world.KillDataServer(1);
  Buffer patch = PatternPage(0x42);
  ASSERT_EQ(*file->Write(kPageSize, patch.span()), patch.size());
  std::memcpy(data.data() + kPageSize, patch.data(), patch.size());
  Buffer back(data.size());
  ASSERT_EQ(*file->Read(0, back.mutable_span()), data.size());
  EXPECT_EQ(std::memcmp(back.data(), data.data(), data.size()), 0);
  EXPECT_GE(metrics::StatValue(*world.client, "degraded_writes"), 1u);
  EXPECT_GE(metrics::StatValue(*world.mds, "stripe_replicas_marked_stale"),
            1u);

  // Heal the partition and bring a successor up over the same store, then
  // rebuild: the stale target's lane objects are re-synced from the
  // surviving fresh copies.
  world.ReviveDataServer(1);
  ASSERT_GE(*world.mds->RunRebuildPass(), 1u);
  EXPECT_GE(metrics::StatValue(*world.mds, "stripe_rebuilds"), 1u);

  ASSERT_TRUE(file->SyncFile().ok());
  std::string object_name = world.StripeObjectName(0);
  ASSERT_FALSE(object_name.empty());
  for (size_t t = 0; t < 2; ++t) {
    Buffer primary = world.ReadLaneObject(t, object_name, 0);
    Buffer mirror = world.ReadLaneObject((t + 1) % 2, object_name, 1);
    ASSERT_EQ(mirror.size(), primary.size()) << "target " << t;
    EXPECT_EQ(std::memcmp(mirror.data(), primary.data(), primary.size()), 0)
        << "target " << t;
  }

  // The cleared mark means new writes land on BOTH replicas again.
  Buffer patch2 = PatternPage(0x51);
  ASSERT_EQ(*file->Write(2 * kPageSize, patch2.span()), patch2.size());
  ASSERT_TRUE(file->SyncFile().ok());
  std::memcpy(data.data() + 2 * kPageSize, patch2.data(), patch2.size());
  Buffer lane0 = world.ReadLaneObject(0, object_name, 0);  // t0 primaries
  Buffer lane1 = world.ReadLaneObject(1, object_name, 1);  // t0 mirror
  ASSERT_GE(lane0.size(), 2 * kPageSize);
  ASSERT_EQ(lane1.size(), lane0.size());
  // Stripe 2 is target 0's local unit 1.
  EXPECT_EQ(std::memcmp(lane0.data() + kPageSize, patch2.data(), kPageSize),
            0);
  EXPECT_EQ(std::memcmp(lane1.data() + kPageSize, patch2.data(), kPageSize),
            0);
  ASSERT_EQ(*file->Read(0, back.mutable_span()), data.size());
  EXPECT_EQ(std::memcmp(back.data(), data.data(), data.size()), 0);
}

TEST(StripedDfsReplicated, PartitionedReplicaIsReportedAndWriteDegrades) {
  StripedWorld world(2, /*replicas=*/2);
  sp<File> file = *world.client->CreateStriped("f");
  Buffer data(4 * kPageSize);
  Rng rng(41);
  Buffer fill = rng.RandomBuffer(data.size());
  std::memcpy(data.data(), fill.data(), data.size());
  ASSERT_EQ(*file->Write(0, data.span()), data.size());

  // A partition looks like silence, not a tombstone. The CLIENT is the
  // one that notices its writes not landing and reports the target stale
  // (kReportStaleReplica) after degrade_after_rounds failed rounds.
  world.network->SetPartitioned("data1", true);
  Buffer patch = PatternPage(0x66);
  ASSERT_EQ(*file->Write(0, patch.span()), patch.size());
  std::memcpy(data.data(), patch.data(), patch.size());
  EXPECT_GE(metrics::StatValue(*world.client, "stale_reports"), 1u);
  EXPECT_GE(metrics::StatValue(*world.client, "degraded_writes"), 1u);
  EXPECT_GE(metrics::StatValue(*world.mds, "stripe_stale_reports"), 1u);

  // Reads still see every byte (the stale target is planned around).
  Buffer back(data.size());
  ASSERT_EQ(*file->Read(0, back.mutable_span()), data.size());
  EXPECT_EQ(std::memcmp(back.data(), data.data(), data.size()), 0);

  // Heal and rebuild: the missed writes converge onto data1.
  world.network->SetPartitioned("data1", false);
  ASSERT_GE(*world.mds->RunRebuildPass(), 1u);
  ASSERT_TRUE(file->SyncFile().ok());
  std::string object_name = world.StripeObjectName(0);
  for (size_t t = 0; t < 2; ++t) {
    Buffer primary = world.ReadLaneObject(t, object_name, 0);
    Buffer mirror = world.ReadLaneObject((t + 1) % 2, object_name, 1);
    ASSERT_EQ(mirror.size(), primary.size()) << "target " << t;
    EXPECT_EQ(std::memcmp(mirror.data(), primary.data(), primary.size()), 0)
        << "target " << t;
  }
}

TEST(StripedDfsReplicated, MdsFailoverIsAbsorbedAndStalenessSurvivesIt) {
  StripedWorld world(2, /*replicas=*/2);
  sp<File> file = *world.client->CreateStriped("f");
  Buffer data(4 * kPageSize);
  Rng rng(43);
  Buffer fill = rng.RandomBuffer(data.size());
  std::memcpy(data.data(), fill.data(), data.size());
  ASSERT_EQ(*file->Write(0, data.span()), data.size());

  // Degrade target 1, then fail the MDS over mid-stream.
  world.KillDataServer(1);
  Buffer patch = PatternPage(0x13);
  ASSERT_EQ(*file->Write(kPageSize, patch.span()), patch.size());
  std::memcpy(data.data() + kPageSize, patch.data(), patch.size());
  world.RestartMds();

  // Metadata ops re-resolve against the successor (the old handle answers
  // kStale there); the staleness sidecar keeps target 1 excluded and the
  // map version monotonic across the failover.
  EXPECT_EQ(*file->GetLength(), data.size());
  Buffer back(data.size());
  ASSERT_EQ(*file->Read(0, back.mutable_span()), data.size());
  EXPECT_EQ(std::memcmp(back.data(), data.data(), data.size()), 0);
  Buffer patch2 = PatternPage(0x77);
  ASSERT_EQ(*file->Write(3 * kPageSize, patch2.span()), patch2.size());
  std::memcpy(data.data() + 3 * kPageSize, patch2.data(), patch2.size());

  // The SUCCESSOR can run the rebuild: its state was re-derived from the
  // sidecar when the client's traffic re-entered the file.
  world.ReviveDataServer(1);
  ASSERT_GE(*world.mds->RunRebuildPass(), 1u);
  ASSERT_TRUE(file->SyncFile().ok());
  std::string object_name = world.StripeObjectName(0);
  for (size_t t = 0; t < 2; ++t) {
    Buffer primary = world.ReadLaneObject(t, object_name, 0);
    Buffer mirror = world.ReadLaneObject((t + 1) % 2, object_name, 1);
    ASSERT_EQ(mirror.size(), primary.size()) << "target " << t;
    EXPECT_EQ(std::memcmp(mirror.data(), primary.data(), primary.size()), 0)
        << "target " << t;
  }
  ASSERT_EQ(*file->Read(0, back.mutable_span()), data.size());
  EXPECT_EQ(std::memcmp(back.data(), data.data(), data.size()), 0);
}

TEST(StripedDfsReplicated, WidthThreeRotatedPlacement) {
  StripedWorld world(3, /*replicas=*/2);
  sp<File> file = *world.client->CreateStriped("f");
  Buffer data(7 * kPageSize);
  Rng rng(47);
  Buffer fill = rng.RandomBuffer(data.size());
  std::memcpy(data.data(), fill.data(), data.size());
  ASSERT_EQ(*file->Write(0, data.span()), data.size());
  ASSERT_TRUE(file->SyncFile().ok());

  // Rotated placement at width 3: lane 1 on target (t + 1) % 3 mirrors
  // lane 0 on target t.
  std::string object_name = world.StripeObjectName(0);
  for (size_t t = 0; t < 3; ++t) {
    Buffer primary = world.ReadLaneObject(t, object_name, 0);
    Buffer mirror = world.ReadLaneObject((t + 1) % 3, object_name, 1);
    EXPECT_EQ(primary.size(), LocalLengthFor(t, data.size(), kSS, 3));
    ASSERT_EQ(mirror.size(), primary.size()) << "target " << t;
    EXPECT_EQ(std::memcmp(mirror.data(), primary.data(), primary.size()), 0)
        << "target " << t;
  }

  // Any single dead server leaves every byte readable.
  world.KillDataServer(2);
  Buffer back(data.size());
  ASSERT_EQ(*file->Read(0, back.mutable_span()), data.size());
  EXPECT_EQ(std::memcmp(back.data(), data.data(), data.size()), 0);
}

TEST(StripedDfs, MappedReadsFaultThroughStripeFanout) {
  StripedWorld world(2);
  sp<File> file = *world.client->CreateStriped("f");
  Buffer data(4 * kPageSize);
  Rng rng(23);
  Buffer fill = rng.RandomBuffer(data.size());
  std::memcpy(data.data(), fill.data(), data.size());
  ASSERT_EQ(*file->Write(0, data.span()), data.size());

  sp<Vmm> vmm = Vmm::Create(world.client_node->domain(), "vmm");
  sp<MappedRegion> region = *vmm->Map(file, AccessRights::kReadWrite);
  Buffer back(data.size());
  ASSERT_TRUE(region->Read(0, back.mutable_span()).ok());
  EXPECT_EQ(std::memcmp(back.data(), data.data(), data.size()), 0);

  // Mapped writes reach the stripe owners on sync.
  Buffer patch = PatternPage(0xE1);
  ASSERT_TRUE(region->Write(3 * kPageSize, patch.span()).ok());
  ASSERT_TRUE(region->Sync().ok());
  std::memcpy(data.data() + 3 * kPageSize, patch.data(), patch.size());
  ASSERT_EQ(*file->Read(0, back.mutable_span()), data.size());
  EXPECT_EQ(std::memcmp(back.data(), data.data(), data.size()), 0);
}

}  // namespace
}  // namespace springfs
