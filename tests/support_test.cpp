// Unit tests for src/support: Result/Status, Buffer, CRC, RNG, clocks.

#include <gtest/gtest.h>

#include "src/support/bytes.h"
#include "src/support/clock.h"
#include "src/support/result.h"
#include "src/support/rng.h"

namespace springfs {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), ErrorCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = ErrNotFound("no binding 'x'");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), ErrorCode::kNotFound);
  EXPECT_EQ(st.message(), "no binding 'x'");
  EXPECT_EQ(st.ToString(), "kNotFound: no binding 'x'");
}

TEST(StatusTest, EveryErrorCodeHasAName) {
  for (int c = 0; c <= static_cast<int>(ErrorCode::kDeadObject); ++c) {
    EXPECT_STRNE(ErrorCodeName(static_cast<ErrorCode>(c)), "kUnknown");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = ErrNoSpace("full");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.code(), ErrorCode::kNoSpace);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = r.take_value();
  EXPECT_EQ(*v, 7);
}

Result<int> Half(int x) {
  if (x % 2 != 0) {
    return ErrInvalidArgument("odd");
  }
  return x / 2;
}

Result<int> Quarter(int x) {
  ASSIGN_OR_RETURN(int h, Half(x));
  ASSIGN_OR_RETURN(int q, Half(h));
  return q;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  Result<int> ok = Quarter(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 2);

  Result<int> bad = Quarter(6);  // 6/2=3 is odd
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.code(), ErrorCode::kInvalidArgument);
}

Status FailIf(bool fail) {
  if (fail) {
    return ErrBusy();
  }
  return Status::Ok();
}

Status Chain(bool fail) {
  RETURN_IF_ERROR(FailIf(false));
  RETURN_IF_ERROR(FailIf(fail));
  return Status::Ok();
}

TEST(ResultTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(Chain(false).ok());
  EXPECT_EQ(Chain(true).code(), ErrorCode::kBusy);
}

TEST(BufferTest, ResizeZeroFills) {
  Buffer buf;
  buf.resize(8);
  for (size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(buf.data()[i], 0);
  }
}

TEST(BufferTest, WriteAtGrows) {
  Buffer buf(4);
  uint8_t payload[] = {1, 2, 3};
  buf.WriteAt(6, ByteSpan(payload, 3));
  EXPECT_EQ(buf.size(), 9u);
  EXPECT_EQ(buf.data()[5], 0);
  EXPECT_EQ(buf.data()[6], 1);
  EXPECT_EQ(buf.data()[8], 3);
}

TEST(BufferTest, ReadAtShortAtEnd) {
  Buffer buf("hello");
  uint8_t out[10] = {0};
  size_t n = buf.ReadAt(3, MutableByteSpan(out, 10));
  EXPECT_EQ(n, 2u);
  EXPECT_EQ(out[0], 'l');
  EXPECT_EQ(out[1], 'o');
  EXPECT_EQ(buf.ReadAt(5, MutableByteSpan(out, 10)), 0u);
  EXPECT_EQ(buf.ReadAt(100, MutableByteSpan(out, 10)), 0u);
}

TEST(BufferTest, RoundTripString) {
  Buffer buf(std::string("spring"));
  EXPECT_EQ(buf.ToString(), "spring");
}

TEST(CrcTest, KnownVector) {
  // CRC32("123456789") = 0xCBF43926 per the IEEE 802.3 check value.
  const char* digits = "123456789";
  uint32_t crc = Crc32(ByteSpan(reinterpret_cast<const uint8_t*>(digits), 9));
  EXPECT_EQ(crc, 0xCBF43926u);
}

TEST(CrcTest, DetectsSingleBitFlip) {
  Rng rng(1);
  Buffer buf = rng.RandomBuffer(512);
  uint32_t before = Crc32(buf.span());
  buf.data()[100] ^= 0x01;
  EXPECT_NE(before, Crc32(buf.span()));
}

TEST(Fnv1aTest, DiffersOnContent) {
  Buffer a("abc"), b("abd");
  EXPECT_NE(Fnv1a64(a.span()), Fnv1a64(b.span()));
}

TEST(HexDumpTest, TruncatesAndFormats) {
  uint8_t data[] = {0x00, 0xff, 0x10};
  EXPECT_EQ(HexDump(ByteSpan(data, 3)), "00 ff 10");
  EXPECT_EQ(HexDump(ByteSpan(data, 3), 2), "00 ff ...");
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(42), b(42), c(43);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_NE(a.Next(), c.Next());
}

TEST(RngTest, BelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Below(10), 10u);
    uint64_t v = rng.Range(5, 9);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 9u);
  }
}

TEST(RngTest, FillCoversWholeSpan) {
  Rng rng(9);
  Buffer buf(37);
  rng.Fill(buf.mutable_span());
  // With 37 random bytes the chance they are all zero is negligible.
  bool any_nonzero = false;
  for (size_t i = 0; i < buf.size(); ++i) {
    any_nonzero |= buf.data()[i] != 0;
  }
  EXPECT_TRUE(any_nonzero);
}

TEST(RngTest, CompressibleBufferHasRuns) {
  Rng rng(11);
  Buffer buf = rng.CompressibleBuffer(4096);
  ASSERT_EQ(buf.size(), 4096u);
  size_t repeats = 0;
  for (size_t i = 1; i < buf.size(); ++i) {
    repeats += buf.data()[i] == buf.data()[i - 1] ? 1 : 0;
  }
  // Runs average ~32 bytes, so the vast majority of adjacent pairs repeat.
  EXPECT_GT(repeats, buf.size() / 2);
}

TEST(FakeClockTest, AdvancesWithoutBlocking) {
  FakeClock clock(100);
  EXPECT_EQ(clock.Now(), 100u);
  clock.SleepNs(50);
  EXPECT_EQ(clock.Now(), 150u);
  clock.Advance(7);
  EXPECT_EQ(clock.Now(), 157u);
}

TEST(RealClockTest, SleepIsAtLeastRequested) {
  RealClock clock;
  TimeNs start = clock.Now();
  clock.SleepNs(100'000);  // 100us
  EXPECT_GE(clock.Now() - start, 100'000u);
}

TEST(RealClockTest, ShortSpinSleepIsAccurate) {
  RealClock clock;
  TimeNs start = clock.Now();
  clock.SleepNs(5'000);  // 5us -> spin path
  TimeNs elapsed = clock.Now() - start;
  EXPECT_GE(elapsed, 5'000u);
}

}  // namespace
}  // namespace springfs
