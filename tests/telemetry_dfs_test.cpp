// Tests for the cluster telemetry plane (DESIGN.md §16): the typed
// kGetStats/kGetHealth wire bodies (randomized round trips + corruption
// rejection), OpNamer coverage of the full frame vocabulary, remote
// scraping through ClusterStatsClient (fan-out, unreachable servers,
// cluster aggregation), the server-side slow-op ring, and the flight
// recorder's artifact-dump helper.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "src/layers/dfs/cluster_stats.h"
#include "src/layers/dfs/dfs_client.h"
#include "src/layers/dfs/dfs_server.h"
#include "src/layers/dfs/striped_client.h"
#include "src/layers/sfs/sfs.h"
#include "src/obs/flight_recorder.h"
#include "src/support/rng.h"

namespace springfs {
namespace {

using dfs::ClusterStatsClient;
using dfs::DfsClient;
using dfs::DfsServer;
using dfs::GetStatsResponse;
using dfs::HealthResponse;
using dfs::Op;
using dfs::ServerScrape;
using dfs::StripedDfsClient;

// --- wire round trips ---

metrics::Histogram::Snapshot RandomHistogram(Rng& rng) {
  metrics::Histogram::Snapshot hist;
  hist.count = rng.Next();
  hist.sum_ns = rng.Next();
  for (size_t b = 0; b < metrics::Histogram::kNumBuckets; ++b) {
    // Every bucket nonzero, so the tail buckets are exercised too (a codec
    // that only ships a prefix of the bucket array would pass with sparse
    // histograms).
    hist.buckets[b] = 1 + rng.Next() % 1000;
  }
  return hist;
}

GetStatsResponse RandomStats(Rng& rng) {
  GetStatsResponse stats;
  size_t n_values = rng.Below(8);
  for (size_t i = 0; i < n_values; ++i) {
    stats.snapshot.values["value/" + std::to_string(rng.Next() % 1000)] =
        rng.Next();
  }
  size_t n_hists = rng.Below(4);
  for (size_t i = 0; i < n_hists; ++i) {
    stats.snapshot.histograms["hist/" + std::to_string(i)] =
        RandomHistogram(rng);
  }
  return stats;
}

HealthResponse RandomHealth(Rng& rng) {
  HealthResponse health;
  health.role = rng.Chance(1, 2) ? HealthResponse::Role::kMetadata
                                 : HealthResponse::Role::kData;
  health.boot_epoch = rng.Next();
  health.uptime_ns = rng.Next();
  health.stripe_size = rng.Next();
  health.stripe_width = static_cast<uint32_t>(rng.Below(8));
  health.stripe_replicas = static_cast<uint32_t>(rng.Below(4));
  health.rebuilds_completed = rng.Next();
  size_t n_files = rng.Below(5);
  for (size_t i = 0; i < n_files; ++i) {
    HealthResponse::FileHealth file;
    file.path = "file-" + std::to_string(i);
    file.map_version = rng.Next();
    size_t n_stale = rng.Below(4);
    for (size_t s = 0; s < n_stale; ++s) {
      file.stale_targets.push_back(static_cast<uint32_t>(rng.Below(8)));
    }
    health.files.push_back(std::move(file));
  }
  health.delegations_active = rng.Next();
  health.leases_active = rng.Next();
  health.dedup_entries = rng.Next();
  return health;
}

TEST(TelemetryWire, StatsRoundTripRandomized) {
  Rng rng(41);
  for (int iter = 0; iter < 64; ++iter) {
    GetStatsResponse original = RandomStats(rng);
    Buffer wire = original.Encode();
    Result<GetStatsResponse> decoded = GetStatsResponse::Decode(wire.span());
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_TRUE(decoded->snapshot == original.snapshot) << "iter " << iter;
    // Decode-encode is byte-identical: the codec has one canonical form.
    Buffer again = decoded->Encode();
    ASSERT_EQ(again.size(), wire.size());
    EXPECT_EQ(std::memcmp(again.data(), wire.data(), wire.size()), 0);
  }
}

TEST(TelemetryWire, HealthRoundTripRandomized) {
  Rng rng(43);
  for (int iter = 0; iter < 64; ++iter) {
    HealthResponse original = RandomHealth(rng);
    Buffer wire = original.Encode();
    Result<HealthResponse> decoded = HealthResponse::Decode(wire.span());
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(decoded->role, original.role);
    EXPECT_EQ(decoded->boot_epoch, original.boot_epoch);
    EXPECT_EQ(decoded->uptime_ns, original.uptime_ns);
    EXPECT_EQ(decoded->stripe_size, original.stripe_size);
    EXPECT_EQ(decoded->stripe_width, original.stripe_width);
    EXPECT_EQ(decoded->stripe_replicas, original.stripe_replicas);
    EXPECT_EQ(decoded->rebuilds_completed, original.rebuilds_completed);
    ASSERT_EQ(decoded->files.size(), original.files.size());
    for (size_t i = 0; i < original.files.size(); ++i) {
      EXPECT_EQ(decoded->files[i].path, original.files[i].path);
      EXPECT_EQ(decoded->files[i].map_version, original.files[i].map_version);
      EXPECT_EQ(decoded->files[i].stale_targets,
                original.files[i].stale_targets);
    }
    EXPECT_EQ(decoded->delegations_active, original.delegations_active);
    EXPECT_EQ(decoded->leases_active, original.leases_active);
    EXPECT_EQ(decoded->dedup_entries, original.dedup_entries);
    Buffer again = decoded->Encode();
    ASSERT_EQ(again.size(), wire.size());
    EXPECT_EQ(std::memcmp(again.data(), wire.data(), wire.size()), 0);
  }
}

TEST(TelemetryWire, EveryTruncationRejected) {
  Rng rng(47);
  GetStatsResponse stats = RandomStats(rng);
  stats.snapshot.histograms["hist/forced"] = RandomHistogram(rng);
  Buffer stats_wire = stats.Encode();
  for (size_t len = 0; len < stats_wire.size(); ++len) {
    EXPECT_FALSE(
        GetStatsResponse::Decode(ByteSpan(stats_wire.data(), len)).ok())
        << "stats prefix of " << len << " bytes decoded";
  }
  HealthResponse health = RandomHealth(rng);
  if (health.files.empty()) {
    health.files.push_back({"file-0", 3, {1}});
  }
  Buffer health_wire = health.Encode();
  for (size_t len = 0; len < health_wire.size(); ++len) {
    EXPECT_FALSE(
        HealthResponse::Decode(ByteSpan(health_wire.data(), len)).ok())
        << "health prefix of " << len << " bytes decoded";
  }
}

TEST(TelemetryWire, TrailingBytesRejected) {
  Rng rng(53);
  Buffer stats_wire = RandomStats(rng).Encode();
  stats_wire.append(ByteSpan(reinterpret_cast<const uint8_t*>("x"), 1));
  EXPECT_FALSE(GetStatsResponse::Decode(stats_wire.span()).ok());
  Buffer health_wire = RandomHealth(rng).Encode();
  health_wire.append(ByteSpan(reinterpret_cast<const uint8_t*>("x"), 1));
  EXPECT_FALSE(HealthResponse::Decode(health_wire.span()).ok());
}

TEST(TelemetryWire, OversizedElementCountRejected) {
  // A 4-byte body claiming 2^32-1 elements must fail on the count check,
  // not attempt a 4-billion-iteration loop or a giant reserve.
  uint8_t huge[4] = {0xFF, 0xFF, 0xFF, 0xFF};
  EXPECT_FALSE(GetStatsResponse::Decode(ByteSpan(huge, 4)).ok());
  EXPECT_FALSE(HealthResponse::Decode(ByteSpan(huge, 4)).ok());
}

TEST(TelemetryWire, UnknownHealthRoleRejected) {
  Rng rng(59);
  Buffer wire = RandomHealth(rng).Encode();
  wire.data()[0] = 7;  // role is the leading LE u32
  EXPECT_FALSE(HealthResponse::Decode(wire.span()).ok());
}

TEST(TelemetryWire, HistogramBucketCountMismatchRejected) {
  Rng rng(61);
  GetStatsResponse stats;
  stats.snapshot.histograms["hist/only"] = RandomHistogram(rng);
  Buffer wire = stats.Encode();
  // Layout: u32 n_values(=0), u32 n_hists(=1), str name, u64 count,
  // u64 sum, u32 bucket_count. Patch the bucket count in place.
  size_t at = 4 + 4 + (4 + std::string("hist/only").size()) + 8 + 8;
  ASSERT_LT(at + 4, wire.size());
  wire.data()[at] = 25;  // one bucket short
  wire.data()[at + 1] = 0;
  wire.data()[at + 2] = 0;
  wire.data()[at + 3] = 0;
  EXPECT_FALSE(GetStatsResponse::Decode(wire.span()).ok());
}

// --- op naming ---

TEST(TelemetryNaming, EveryOpNamedNoNumericFallback) {
  const Op kAllOps[] = {
      Op::kLookup,       Op::kCreate,      Op::kMkdir,
      Op::kRemove,       Op::kReadDir,     Op::kGetAttr,
      Op::kSetTimes,     Op::kSetLength,   Op::kGetLength,
      Op::kRead,         Op::kWrite,       Op::kSyncFile,
      Op::kBindCache,    Op::kUnbindCache, Op::kPageIn,
      Op::kPageOut,      Op::kWriteOut,    Op::kSyncPages,
      Op::kPageInRange,  Op::kOpen,        Op::kDelegReturn,
      Op::kGetStripeMap, Op::kReportStaleReplica,
      Op::kGetStats,     Op::kGetHealth,   Op::kCompound,
      Op::kCbFlushBack,  Op::kCbDenyWrites,
      Op::kCbAttrInvalidate, Op::kCbRecallDeleg,
  };
  net::SetFrameTypeNamer(&dfs::OpNamer);
  for (Op op : kAllOps) {
    uint32_t type = static_cast<uint32_t>(op);
    const char* name = dfs::OpNamer(type);
    ASSERT_NE(name, nullptr) << "op " << type << " has no name";
    // The transport must never fall back to its numeric "type<N>" form
    // for a DFS op: per-op metrics keys and slow-op lines depend on it.
    std::string frame_name = net::FrameTypeName(type);
    EXPECT_EQ(frame_name, name) << "op " << type;
    EXPECT_NE(frame_name.rfind("type", 0), 0u) << "op " << type;
  }
  // Values outside the vocabulary do fall back — OpNamer must decline
  // them rather than mislabel.
  EXPECT_EQ(dfs::OpNamer(9999), nullptr);
  EXPECT_EQ(net::FrameTypeName(9999), "type9999");
}

// --- remote scraping ---

TEST(ClusterScrape, ParseTargets) {
  auto targets = ClusterStatsClient::ParseTargets(
      "mds:dfs-meta,data0,,data1:custom", "dfs-data");
  ASSERT_EQ(targets.size(), 3u);
  EXPECT_EQ(targets[0].first, "mds");
  EXPECT_EQ(targets[0].second, "dfs-meta");
  EXPECT_EQ(targets[1].first, "data0");
  EXPECT_EQ(targets[1].second, "dfs-data");
  EXPECT_EQ(targets[2].first, "data1");
  EXPECT_EQ(targets[2].second, "custom");
  EXPECT_TRUE(ClusterStatsClient::ParseTargets("", "svc").empty());
}

// A width-2, replica-2 striped cluster with a probe node for scraping.
struct TelemetryWorld {
  Credentials sys = Credentials::System();
  FakeClock clock;
  std::unique_ptr<net::Network> network;
  sp<net::Node> client_node, probe_node, mds_node;
  std::vector<sp<net::Node>> data_nodes;
  std::vector<std::unique_ptr<MemBlockDevice>> devices;
  std::vector<Sfs> stores;
  std::vector<sp<DfsServer>> data_servers;
  sp<DfsServer> mds;
  sp<StripedDfsClient> client;
  dfs::DfsServerOptions mds_options;

  TelemetryWorld() {
    network = std::make_unique<net::Network>(&clock, 1000);
    client_node = network->AddNode("client");
    probe_node = network->AddNode("probe");
    mds_node = network->AddNode("mds");
    mds_options.stripe_size = kPageSize;
    mds_options.stripe_replicas = 2;
    for (int k = 0; k < 2; ++k) {
      data_nodes.push_back(network->AddNode("data" + std::to_string(k)));
      devices.push_back(
          std::make_unique<MemBlockDevice>(ufs::kBlockSize, 4096));
      stores.push_back(*CreateSfs(devices.back().get(), SfsOptions{}, &clock));
      data_servers.push_back(*DfsServer::Create(
          data_nodes[k], network.get(), "dfs-data", stores[k].root, &clock));
      mds_options.stripe_targets.push_back(
          {data_nodes[k]->name(), "dfs-data"});
    }
    devices.push_back(std::make_unique<MemBlockDevice>(ufs::kBlockSize, 4096));
    stores.push_back(*CreateSfs(devices.back().get(), SfsOptions{}, &clock));
    mds = *DfsServer::Create(mds_node, network.get(), "dfs-meta",
                             stores.back().root, &clock, mds_options);
    client = *StripedDfsClient::Mount(client_node, network.get(), "mds",
                                      "dfs-meta", &clock);
  }

  ClusterStatsClient MakeScraper() {
    ClusterStatsClient scraper("probe", network.get());
    scraper.AddServer("mds", "dfs-meta");
    scraper.AddServer("data0", "dfs-data");
    scraper.AddServer("data1", "dfs-data");
    return scraper;
  }
};

TEST(ClusterScrape, HealthyClusterEndToEnd) {
  TelemetryWorld world;
  sp<File> file = *world.client->CreateStriped("f");
  Buffer data = Rng(5).RandomBuffer(4 * kPageSize);
  ASSERT_TRUE(file->Write(0, data.span()).ok());

  ClusterStatsClient scraper = world.MakeScraper();
  std::vector<ServerScrape> scrapes = scraper.ScrapeAll();
  ASSERT_EQ(scrapes.size(), 3u);
  for (const ServerScrape& scrape : scrapes) {
    EXPECT_TRUE(scrape.ok()) << scrape.address() << ": "
                             << scrape.stats_status.ToString() << " / "
                             << scrape.health_status.ToString();
  }
  // The MDS advertises its role and stripe geometry; data servers theirs.
  EXPECT_EQ(scrapes[0].health.role, HealthResponse::Role::kMetadata);
  EXPECT_EQ(scrapes[0].health.stripe_width, 2u);
  EXPECT_EQ(scrapes[0].health.stripe_replicas, 2u);
  EXPECT_EQ(scrapes[0].health.stripe_size, kPageSize);
  ASSERT_EQ(scrapes[0].health.files.size(), 1u);
  EXPECT_TRUE(scrapes[0].health.files[0].stale_targets.empty());
  EXPECT_EQ(scrapes[1].health.role, HealthResponse::Role::kData);
  EXPECT_EQ(scrapes[2].health.role, HealthResponse::Role::kData);

  // Per-server disambiguation: every scrape carries that server's own
  // counters under "self/" even though all three share one process
  // registry, and serving data pages shows up only on the data servers.
  for (const ServerScrape& scrape : scrapes) {
    EXPECT_GT(scrape.stats.values.count("self/stats_scrapes"), 0u)
        << scrape.address();
  }
  auto self_value = [](const ServerScrape& scrape, const char* name) {
    auto it = scrape.stats.values.find(name);
    return it == scrape.stats.values.end() ? uint64_t{0} : it->second;
  };
  uint64_t mds_writes = self_value(scrapes[0], "self/remote_writes");
  uint64_t data_writes = self_value(scrapes[1], "self/remote_writes") +
                         self_value(scrapes[2], "self/remote_writes");
  EXPECT_GT(data_writes, mds_writes) << "data path not on the data servers?";

  // The shared registry section carries the per-op latency histograms the
  // servers recorded while serving this test's writes.
  auto hist = scrapes[0].stats.histograms.find("dfs/op/write.latency_ns");
  ASSERT_NE(hist, scrapes[0].stats.histograms.end());
  EXPECT_GT(hist->second.count, 0u);

  // Aggregate: "self/" counters sum across servers into "cluster/".
  metrics::Registry::Snapshot cluster = ClusterStatsClient::Aggregate(scrapes);
  uint64_t summed = 0;
  for (const ServerScrape& scrape : scrapes) {
    summed += self_value(scrape, "self/stats_scrapes");
  }
  auto agg = cluster.values.find("cluster/stats_scrapes");
  ASSERT_NE(agg, cluster.values.end());
  EXPECT_EQ(agg->second, summed);
}

TEST(ClusterScrape, DegradedTargetVisibleThenCleared) {
  TelemetryWorld world;
  sp<File> file = *world.client->CreateStriped("f");
  Buffer data = Rng(6).RandomBuffer(4 * kPageSize);
  ASSERT_TRUE(file->Write(0, data.span()).ok());

  // Darken data1 and write degraded: the MDS must advertise target 1 as
  // stale to a wire scraper, then advertise nothing after a rebuild.
  world.network->SetPartitioned("data1", true);
  ASSERT_TRUE(file->Write(0, data.span()).ok());
  ClusterStatsClient scraper("probe", world.network.get());
  scraper.AddServer("mds", "dfs-meta");
  std::vector<ServerScrape> dark = scraper.ScrapeAll();
  ASSERT_EQ(dark.size(), 1u);
  ASSERT_TRUE(dark[0].ok()) << dark[0].health_status.ToString();
  ASSERT_EQ(dark[0].health.files.size(), 1u);
  EXPECT_EQ(dark[0].health.files[0].stale_targets,
            std::vector<uint32_t>{1});
  uint64_t dark_version = dark[0].health.files[0].map_version;

  world.network->SetPartitioned("data1", false);
  Result<uint64_t> rebuilt = world.mds->RunRebuildPass();
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.status().ToString();
  EXPECT_EQ(*rebuilt, 1u);
  std::vector<ServerScrape> healed = scraper.ScrapeAll();
  ASSERT_EQ(healed.size(), 1u);
  ASSERT_TRUE(healed[0].ok());
  ASSERT_EQ(healed[0].health.files.size(), 1u);
  EXPECT_TRUE(healed[0].health.files[0].stale_targets.empty());
  EXPECT_GT(healed[0].health.files[0].map_version, dark_version);
  EXPECT_EQ(healed[0].health.rebuilds_completed, 1u);
}

TEST(ClusterScrape, UnreachableServerReportedNotFatal) {
  TelemetryWorld world;
  world.network->SetPartitioned("data0", true);
  ClusterStatsClient scraper = world.MakeScraper();
  std::vector<ServerScrape> scrapes = scraper.ScrapeAll();
  ASSERT_EQ(scrapes.size(), 3u);
  EXPECT_TRUE(scrapes[0].ok());
  EXPECT_FALSE(scrapes[1].ok()) << "partitioned server scraped?";
  EXPECT_FALSE(scrapes[1].stats_status.ok());
  EXPECT_FALSE(scrapes[1].health_status.ok());
  EXPECT_TRUE(scrapes[2].ok());
  // Aggregation skips the dead server instead of failing.
  metrics::Registry::Snapshot cluster = ClusterStatsClient::Aggregate(scrapes);
  EXPECT_GT(cluster.values.count("cluster/stats_scrapes"), 0u);
  // JSON for the dead server carries the error, not a stats document.
  std::string json = dfs::ScrapeToJson(scrapes[1]);
  EXPECT_NE(json.find("stats_error"), std::string::npos);
}

// --- slow-op ring ---

TEST(SlowOps, ForcedSlowOpLandsInRingAndFlightDump) {
  // Real clock + a 1ns threshold: every dispatched op is "slow". The ring
  // must keep them (bounded) and the flight recorder must carry the WARN.
  flight::Clear();
  Credentials sys = Credentials::System();
  net::Network network(&DefaultClock(), 1000);
  sp<net::Node> server_node = network.AddNode("server");
  sp<net::Node> client_node = network.AddNode("client");
  MemBlockDevice device(ufs::kBlockSize, 4096);
  Sfs sfs = *CreateSfs(&device, SfsOptions{});
  dfs::DfsServerOptions options;
  options.slow_op_threshold_ns = 1;
  options.slow_op_ring = 4;
  sp<DfsServer> server = *DfsServer::Create(
      server_node, &network, "dfs", sfs.root, &DefaultClock(), options);
  sp<DfsClient> client =
      *DfsClient::Mount(client_node, &network, "server", "dfs");

  sp<File> file = *server->CreateFile(*Name::Parse("f"), sys);
  Buffer data = Rng(9).RandomBuffer(kPageSize);
  ASSERT_TRUE(file->Write(0, data.span()).ok());
  sp<File> remote = *ResolveAs<File>(client, "f", sys);
  Buffer out(kPageSize);
  ASSERT_TRUE(remote->Read(0, out.mutable_span()).ok());

  std::vector<DfsServer::SlowOp> slow = server->SlowOps();
  ASSERT_FALSE(slow.empty());
  EXPECT_LE(slow.size(), 4u) << "ring exceeded its bound";
  for (const DfsServer::SlowOp& op : slow) {
    EXPECT_GT(op.elapsed_ns, 0u);
  }
  EXPECT_GT(metrics::StatValue(*server, "slow_ops"), 0u);
  EXPECT_NE(flight::Dump().find("slow op"), std::string::npos)
      << "no slow-op WARN in the flight recorder";
}

TEST(SlowOps, ZeroThresholdDisablesRecording) {
  Credentials sys = Credentials::System();
  net::Network network(&DefaultClock(), 1000);
  sp<net::Node> server_node = network.AddNode("server");
  sp<net::Node> client_node = network.AddNode("client");
  MemBlockDevice device(ufs::kBlockSize, 4096);
  Sfs sfs = *CreateSfs(&device, SfsOptions{});
  dfs::DfsServerOptions options;
  options.slow_op_threshold_ns = 0;
  sp<DfsServer> server = *DfsServer::Create(
      server_node, &network, "dfs", sfs.root, &DefaultClock(), options);
  sp<DfsClient> client =
      *DfsClient::Mount(client_node, &network, "server", "dfs");
  Result<sp<File>> remote = ResolveAs<File>(client, "/", sys);
  EXPECT_TRUE(server->SlowOps().empty());
  EXPECT_EQ(metrics::StatValue(*server, "slow_ops"), 0u);
}

// --- flight artifact helper ---

TEST(FlightArtifact, DumpToArtifactWritesCanonicalPath) {
  flight::Record(flight::Severity::kInfo, "test", "artifact probe");
  std::string path = flight::ArtifactDumpPath("telemetry_selftest");
  EXPECT_EQ(path, "flight_dump_telemetry_selftest.txt");
  ASSERT_TRUE(flight::DumpToArtifact("telemetry_selftest", "header line"));
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char buf[256] = {};
  size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
  std::fclose(f);
  std::remove(path.c_str());
  ASSERT_GT(n, 0u);
  EXPECT_NE(std::string(buf).find("header line"), std::string::npos);
}

TEST(FlightArtifact, UnwritablePathFailsCleanly) {
  // The error branch the harnesses rely on: a dump that cannot be written
  // reports false (after a stderr note) instead of aborting the run.
  EXPECT_FALSE(
      flight::DumpToFile("/nonexistent-dir/flight.txt", "header"));
  std::string tag = "../../../../../../nonexistent-dir/escape";
  EXPECT_FALSE(flight::DumpToArtifact(tag, "header"));
}

}  // namespace
}  // namespace springfs
