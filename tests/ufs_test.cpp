// Unit and property tests for the UFS substrate: format/mount, directories,
// file data across direct/indirect/double-indirect ranges, truncation, hard
// links, persistence, the fsck-style checker, and a randomized workload
// checked against an in-memory reference model.

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "src/blockdev/block_device.h"
#include "src/support/rng.h"
#include "src/ufs/checker.h"
#include "src/ufs/ufs.h"

namespace springfs::ufs {
namespace {

class UfsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    device_ = std::make_unique<MemBlockDevice>(kBlockSize, 4096);
    clock_ = std::make_unique<FakeClock>();
    Result<std::unique_ptr<Ufs>> fs = Ufs::Format(device_.get(), clock_.get());
    ASSERT_TRUE(fs.ok()) << fs.status().ToString();
    fs_ = fs.take_value();
  }

  void ExpectClean() {
    ASSERT_TRUE(fs_->Sync().ok());
    Checker checker(device_.get());
    Result<CheckReport> report = checker.Check();
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_TRUE(report->clean()) << report->Summary();
  }

  std::unique_ptr<MemBlockDevice> device_;
  std::unique_ptr<FakeClock> clock_;
  std::unique_ptr<Ufs> fs_;
};

TEST_F(UfsTest, FormatCreatesEmptyRoot) {
  Result<std::vector<NamedEntry>> entries = fs_->ReadDir(kRootInode);
  ASSERT_TRUE(entries.ok());
  EXPECT_TRUE(entries->empty());
  ExpectClean();
}

TEST_F(UfsTest, CreateAndLookup) {
  Result<InodeNum> ino = fs_->Create(kRootInode, "hello", FileType::kRegular);
  ASSERT_TRUE(ino.ok());
  Result<InodeNum> found = fs_->Lookup(kRootInode, "hello");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(*found, *ino);
  ExpectClean();
}

TEST_F(UfsTest, LookupMissingIsNotFound) {
  EXPECT_EQ(fs_->Lookup(kRootInode, "ghost").status().code(),
            ErrorCode::kNotFound);
}

TEST_F(UfsTest, DuplicateCreateFails) {
  ASSERT_TRUE(fs_->Create(kRootInode, "x", FileType::kRegular).ok());
  EXPECT_EQ(fs_->Create(kRootInode, "x", FileType::kRegular).status().code(),
            ErrorCode::kAlreadyExists);
}

TEST_F(UfsTest, RejectsBadNames) {
  EXPECT_EQ(fs_->Create(kRootInode, "", FileType::kRegular).status().code(),
            ErrorCode::kInvalidArgument);
  EXPECT_EQ(fs_->Create(kRootInode, "a/b", FileType::kRegular).status().code(),
            ErrorCode::kInvalidArgument);
  std::string long_name(kMaxNameLen + 1, 'n');
  EXPECT_EQ(fs_->Create(kRootInode, long_name, FileType::kRegular)
                .status().code(),
            ErrorCode::kInvalidArgument);
  std::string max_name(kMaxNameLen, 'n');
  EXPECT_TRUE(fs_->Create(kRootInode, max_name, FileType::kRegular).ok());
}

TEST_F(UfsTest, WriteReadRoundTrip) {
  InodeNum ino = *fs_->Create(kRootInode, "f", FileType::kRegular);
  Rng rng(1);
  Buffer data = rng.RandomBuffer(1000);
  ASSERT_TRUE(fs_->Write(ino, 0, data.span()).ok());
  Buffer out(1000);
  Result<size_t> n = fs_->Read(ino, 0, out.mutable_span());
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 1000u);
  EXPECT_EQ(out, data);
  ExpectClean();
}

TEST_F(UfsTest, UnalignedWritesPreserveNeighbors) {
  InodeNum ino = *fs_->Create(kRootInode, "f", FileType::kRegular);
  Buffer a(std::string("AAAA"));
  Buffer b(std::string("BB"));
  ASSERT_TRUE(fs_->Write(ino, 0, a.span()).ok());
  ASSERT_TRUE(fs_->Write(ino, 1, b.span()).ok());
  Buffer out(4);
  ASSERT_TRUE(fs_->Read(ino, 0, out.mutable_span()).ok());
  EXPECT_EQ(out.ToString(), "ABBA");
}

TEST_F(UfsTest, ReadPastEofIsShort) {
  InodeNum ino = *fs_->Create(kRootInode, "f", FileType::kRegular);
  Buffer data(std::string("12345"));
  ASSERT_TRUE(fs_->Write(ino, 0, data.span()).ok());
  Buffer out(100);
  Result<size_t> n = fs_->Read(ino, 3, out.mutable_span());
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 2u);
  EXPECT_EQ(*fs_->Read(ino, 5, out.mutable_span()), 0u);
  EXPECT_EQ(*fs_->Read(ino, 50, out.mutable_span()), 0u);
}

TEST_F(UfsTest, SparseFileReadsZerosInHoles) {
  InodeNum ino = *fs_->Create(kRootInode, "sparse", FileType::kRegular);
  Buffer tail(std::string("end"));
  // Write beyond several blocks without touching earlier ones.
  ASSERT_TRUE(fs_->Write(ino, 10 * kBlockSize, tail.span()).ok());
  Buffer out(kBlockSize);
  ASSERT_TRUE(fs_->Read(ino, kBlockSize, out.mutable_span()).ok());
  for (size_t i = 0; i < kBlockSize; ++i) {
    ASSERT_EQ(out.data()[i], 0);
  }
  Result<InodeAttrs> attrs = fs_->GetAttrs(ino);
  ASSERT_TRUE(attrs.ok());
  EXPECT_EQ(attrs->size, 10 * kBlockSize + 3);
  ExpectClean();
}

TEST_F(UfsTest, LargeFileSpansIndirectBlocks) {
  InodeNum ino = *fs_->Create(kRootInode, "big", FileType::kRegular);
  // Beyond 12 direct blocks: 40 blocks uses the single-indirect range.
  Rng rng(2);
  Buffer data = rng.RandomBuffer(40 * kBlockSize);
  ASSERT_TRUE(fs_->Write(ino, 0, data.span()).ok());
  Buffer out(40 * kBlockSize);
  ASSERT_TRUE(fs_->Read(ino, 0, out.mutable_span()).ok());
  EXPECT_EQ(Fnv1a64(out.span()), Fnv1a64(data.span()));
  ExpectClean();
}

TEST_F(UfsTest, DoubleIndirectRange) {
  InodeNum ino = *fs_->Create(kRootInode, "huge", FileType::kRegular);
  // File block kNumDirect + kPtrsPerBlock + 5 lives in the double-indirect
  // range; write it as a sparse block so the test stays fast.
  uint64_t fb = kNumDirect + kPtrsPerBlock + 5;
  Buffer data(std::string("deep"));
  ASSERT_TRUE(fs_->Write(ino, fb * kBlockSize, data.span()).ok());
  Buffer out(4);
  ASSERT_TRUE(fs_->Read(ino, fb * kBlockSize, out.mutable_span()).ok());
  EXPECT_EQ(out.ToString(), "deep");
  ExpectClean();
}

TEST_F(UfsTest, TruncateShrinkFreesBlocks) {
  InodeNum ino = *fs_->Create(kRootInode, "f", FileType::kRegular);
  Rng rng(3);
  Buffer data = rng.RandomBuffer(20 * kBlockSize);
  ASSERT_TRUE(fs_->Write(ino, 0, data.span()).ok());
  uint64_t free_before = fs_->FreeBlocks();
  ASSERT_TRUE(fs_->Truncate(ino, kBlockSize).ok());
  EXPECT_GT(fs_->FreeBlocks(), free_before);
  Result<InodeAttrs> attrs = fs_->GetAttrs(ino);
  EXPECT_EQ(attrs->size, kBlockSize);
  ExpectClean();
}

TEST_F(UfsTest, TruncateThenExtendReadsZeros) {
  InodeNum ino = *fs_->Create(kRootInode, "f", FileType::kRegular);
  Buffer data(std::string("secret-data"));
  ASSERT_TRUE(fs_->Write(ino, 0, data.span()).ok());
  ASSERT_TRUE(fs_->Truncate(ino, 3).ok());
  ASSERT_TRUE(fs_->Truncate(ino, 11).ok());
  Buffer out(11);
  ASSERT_TRUE(fs_->Read(ino, 0, out.mutable_span()).ok());
  EXPECT_EQ(out.ToString().substr(0, 3), "sec");
  for (size_t i = 3; i < 11; ++i) {
    EXPECT_EQ(out.data()[i], 0) << "old data resurrected at " << i;
  }
}

TEST_F(UfsTest, RemoveFreesEverything) {
  // Warm-up so the root directory's entry block is already allocated; a
  // directory keeps its blocks after entries are removed.
  ASSERT_TRUE(fs_->Create(kRootInode, "warmup", FileType::kRegular).ok());
  ASSERT_TRUE(fs_->Remove(kRootInode, "warmup").ok());
  uint64_t free_blocks = fs_->FreeBlocks();
  uint64_t free_inodes = fs_->FreeInodes();
  InodeNum ino = *fs_->Create(kRootInode, "f", FileType::kRegular);
  Rng rng(4);
  Buffer data = rng.RandomBuffer(30 * kBlockSize);
  ASSERT_TRUE(fs_->Write(ino, 0, data.span()).ok());
  ASSERT_TRUE(fs_->Remove(kRootInode, "f").ok());
  EXPECT_EQ(fs_->FreeBlocks(), free_blocks);
  EXPECT_EQ(fs_->FreeInodes(), free_inodes);
  EXPECT_EQ(fs_->Lookup(kRootInode, "f").status().code(),
            ErrorCode::kNotFound);
  ExpectClean();
}

TEST_F(UfsTest, RemoveNonEmptyDirectoryFails) {
  InodeNum dir = *fs_->Create(kRootInode, "d", FileType::kDirectory);
  ASSERT_TRUE(fs_->Create(dir, "child", FileType::kRegular).ok());
  EXPECT_EQ(fs_->Remove(kRootInode, "d").code(), ErrorCode::kNotEmpty);
  ASSERT_TRUE(fs_->Remove(dir, "child").ok());
  EXPECT_TRUE(fs_->Remove(kRootInode, "d").ok());
  ExpectClean();
}

TEST_F(UfsTest, HardLinksShareData) {
  InodeNum ino = *fs_->Create(kRootInode, "a", FileType::kRegular);
  ASSERT_TRUE(fs_->Link(kRootInode, "b", ino).ok());
  Buffer data(std::string("shared"));
  ASSERT_TRUE(fs_->Write(ino, 0, data.span()).ok());
  InodeNum via_b = *fs_->Lookup(kRootInode, "b");
  EXPECT_EQ(via_b, ino);
  Result<InodeAttrs> attrs = fs_->GetAttrs(ino);
  EXPECT_EQ(attrs->nlink, 2u);
  // Removing one name keeps the data.
  ASSERT_TRUE(fs_->Remove(kRootInode, "a").ok());
  Buffer out(6);
  ASSERT_TRUE(fs_->Read(via_b, 0, out.mutable_span()).ok());
  EXPECT_EQ(out.ToString(), "shared");
  ASSERT_TRUE(fs_->Remove(kRootInode, "b").ok());
  ExpectClean();
}

TEST_F(UfsTest, HardLinkToDirectoryForbidden) {
  InodeNum dir = *fs_->Create(kRootInode, "d", FileType::kDirectory);
  EXPECT_EQ(fs_->Link(kRootInode, "d2", dir).code(), ErrorCode::kIsADirectory);
}

TEST_F(UfsTest, RenameMovesBinding) {
  InodeNum ino = *fs_->Create(kRootInode, "old", FileType::kRegular);
  InodeNum dir = *fs_->Create(kRootInode, "d", FileType::kDirectory);
  ASSERT_TRUE(fs_->Rename(kRootInode, "old", dir, "new").ok());
  EXPECT_EQ(fs_->Lookup(kRootInode, "old").status().code(),
            ErrorCode::kNotFound);
  EXPECT_EQ(*fs_->Lookup(dir, "new"), ino);
  ExpectClean();
}

TEST_F(UfsTest, ReadDirListsAllEntries) {
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(fs_->Create(kRootInode, "file" + std::to_string(i),
                            FileType::kRegular).ok());
  }
  Result<std::vector<NamedEntry>> entries = fs_->ReadDir(kRootInode);
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(entries->size(), 100u);
  ExpectClean();
}

TEST_F(UfsTest, DirSlotReuseAfterRemove) {
  ASSERT_TRUE(fs_->Create(kRootInode, "a", FileType::kRegular).ok());
  ASSERT_TRUE(fs_->Create(kRootInode, "b", FileType::kRegular).ok());
  ASSERT_TRUE(fs_->Remove(kRootInode, "a").ok());
  ASSERT_TRUE(fs_->Create(kRootInode, "c", FileType::kRegular).ok());
  Result<std::vector<NamedEntry>> entries = fs_->ReadDir(kRootInode);
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(entries->size(), 2u);
  ExpectClean();
}

TEST_F(UfsTest, AttributesTrackOperations) {
  InodeNum ino = *fs_->Create(kRootInode, "f", FileType::kRegular);
  Result<InodeAttrs> created = fs_->GetAttrs(ino);
  clock_->Advance(1000);
  Buffer data(std::string("x"));
  ASSERT_TRUE(fs_->Write(ino, 0, data.span()).ok());
  Result<InodeAttrs> written = fs_->GetAttrs(ino);
  EXPECT_GT(written->mtime_ns, created->mtime_ns);
  clock_->Advance(1000);
  Buffer out(1);
  ASSERT_TRUE(fs_->Read(ino, 0, out.mutable_span()).ok());
  Result<InodeAttrs> read = fs_->GetAttrs(ino);
  EXPECT_GT(read->atime_ns, written->atime_ns);
}

TEST_F(UfsTest, SetTimesAndSetSize) {
  InodeNum ino = *fs_->Create(kRootInode, "f", FileType::kRegular);
  ASSERT_TRUE(fs_->SetTimes(ino, 111, 222).ok());
  Result<InodeAttrs> attrs = fs_->GetAttrs(ino);
  EXPECT_EQ(attrs->atime_ns, 111u);
  EXPECT_EQ(attrs->mtime_ns, 222u);
  ASSERT_TRUE(fs_->SetSize(ino, 12345).ok());
  EXPECT_EQ(fs_->GetAttrs(ino)->size, 12345u);
}

TEST_F(UfsTest, BlockGranularityAccess) {
  InodeNum ino = *fs_->Create(kRootInode, "f", FileType::kRegular);
  Rng rng(5);
  Buffer block = rng.RandomBuffer(kBlockSize);
  ASSERT_TRUE(fs_->WriteFileBlock(ino, 3, block.span()).ok());
  Buffer out(kBlockSize);
  ASSERT_TRUE(fs_->ReadFileBlock(ino, 3, out.mutable_span()).ok());
  EXPECT_EQ(out, block);
  // Holes read zeros.
  ASSERT_TRUE(fs_->ReadFileBlock(ino, 1, out.mutable_span()).ok());
  for (size_t i = 0; i < kBlockSize; ++i) {
    ASSERT_EQ(out.data()[i], 0);
  }
  // Block writes do not move the size; that is SetSize's job.
  EXPECT_EQ(fs_->GetAttrs(ino)->size, 0u);
}

TEST_F(UfsTest, PersistsAcrossRemount) {
  InodeNum dir = *fs_->Create(kRootInode, "docs", FileType::kDirectory);
  InodeNum ino = *fs_->Create(dir, "readme", FileType::kRegular);
  Buffer data(std::string("persistent content"));
  ASSERT_TRUE(fs_->Write(ino, 0, data.span()).ok());
  ASSERT_TRUE(fs_->Sync().ok());
  fs_.reset();  // unmount

  Result<std::unique_ptr<Ufs>> remounted =
      Ufs::Mount(device_.get(), clock_.get());
  ASSERT_TRUE(remounted.ok()) << remounted.status().ToString();
  std::unique_ptr<Ufs> fs2 = remounted.take_value();
  InodeNum dir2 = *fs2->Lookup(kRootInode, "docs");
  InodeNum ino2 = *fs2->Lookup(dir2, "readme");
  EXPECT_EQ(ino2, ino);
  Buffer out(data.size());
  ASSERT_TRUE(fs2->Read(ino2, 0, out.mutable_span()).ok());
  EXPECT_EQ(out.ToString(), "persistent content");
}

TEST_F(UfsTest, MountRejectsUnformattedDevice) {
  MemBlockDevice raw(kBlockSize, 64);
  EXPECT_FALSE(Ufs::Mount(&raw).ok());
}

TEST_F(UfsTest, OutOfSpaceIsReported) {
  MemBlockDevice tiny(kBlockSize, 32);
  Result<std::unique_ptr<Ufs>> fs = Ufs::Format(&tiny, clock_.get());
  ASSERT_TRUE(fs.ok());
  InodeNum ino = *(*fs)->Create(kRootInode, "f", FileType::kRegular);
  Rng rng(6);
  Buffer big = rng.RandomBuffer(64 * kBlockSize);
  Result<size_t> written = (*fs)->Write(ino, 0, big.span());
  EXPECT_EQ(written.status().code(), ErrorCode::kNoSpace);
}

TEST_F(UfsTest, InodeCacheServesRepeatLookups) {
  InodeNum ino = *fs_->Create(kRootInode, "f", FileType::kRegular);
  (void)fs_->GetAttrs(ino);
  std::map<std::string, uint64_t> before = metrics::CollectFrom(*fs_);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(fs_->GetAttrs(ino).ok());
  }
  std::map<std::string, uint64_t> after = metrics::CollectFrom(*fs_);
  EXPECT_EQ(after["inode_cache_misses"], before["inode_cache_misses"]);
  EXPECT_GE(after["inode_cache_hits"], before["inode_cache_hits"] + 10);
}

// --- checker corruption detection ---

TEST_F(UfsTest, CheckerDetectsCorruptSuperblock) {
  ASSERT_TRUE(fs_->Sync().ok());
  Buffer block(kBlockSize);
  ASSERT_TRUE(device_->ReadBlock(0, block.mutable_span()).ok());
  block.data()[8] ^= 0xFF;  // flip bits in num_blocks
  ASSERT_TRUE(device_->WriteBlock(0, block.span()).ok());
  Checker checker(device_.get());
  Result<CheckReport> report = checker.Check();
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->clean());
}

TEST_F(UfsTest, CheckerDetectsLinkCountMismatch) {
  InodeNum ino = *fs_->Create(kRootInode, "f", FileType::kRegular);
  ASSERT_TRUE(fs_->Sync().ok());
  // Corrupt the inode's nlink directly on disk (re-encode with valid CRC).
  const Superblock& sb = fs_->superblock();
  BlockNum itb_block = sb.itb_start + ino / kInodesPerBlock;
  Buffer block(kBlockSize);
  ASSERT_TRUE(device_->ReadBlock(itb_block, block.mutable_span()).ok());
  size_t slot = (ino % kInodesPerBlock) * kInodeSize;
  Inode inode = *Inode::Decode(block.subspan(slot, kInodeSize));
  inode.nlink = 5;
  inode.Encode(block.mutable_span().subspan(slot, kInodeSize));
  ASSERT_TRUE(device_->WriteBlock(itb_block, block.span()).ok());

  Checker checker(device_.get());
  Result<CheckReport> report = checker.Check();
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->clean());
}

// --- property test: random workload vs. in-memory reference model ---

struct RefFile {
  Buffer content;
};

class UfsPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(UfsPropertyTest, RandomWorkloadMatchesReferenceModel) {
  MemBlockDevice device(kBlockSize, 8192);
  FakeClock clock;
  std::unique_ptr<Ufs> fs = Ufs::Format(&device, &clock).take_value();
  Rng rng(GetParam());

  std::map<std::string, RefFile> model;
  auto pick_existing = [&]() -> std::string {
    if (model.empty()) {
      return "";
    }
    auto it = model.begin();
    std::advance(it, rng.Below(model.size()));
    return it->first;
  };

  for (int step = 0; step < 400; ++step) {
    uint64_t action = rng.Below(100);
    if (action < 25) {  // create
      std::string name = "f" + std::to_string(rng.Below(40));
      Result<InodeNum> ino = fs->Create(kRootInode, name, FileType::kRegular);
      if (model.count(name)) {
        EXPECT_EQ(ino.status().code(), ErrorCode::kAlreadyExists);
      } else {
        ASSERT_TRUE(ino.ok()) << ino.status().ToString();
        model[name] = RefFile{};
      }
    } else if (action < 50) {  // write
      std::string name = pick_existing();
      if (name.empty()) {
        continue;
      }
      uint64_t offset = rng.Below(3 * kBlockSize);
      Buffer data = rng.RandomBuffer(rng.Range(1, 2 * kBlockSize));
      InodeNum ino = *fs->Lookup(kRootInode, name);
      ASSERT_TRUE(fs->Write(ino, offset, data.span()).ok());
      model[name].content.WriteAt(offset, data.span());
    } else if (action < 70) {  // read and compare
      std::string name = pick_existing();
      if (name.empty()) {
        continue;
      }
      InodeNum ino = *fs->Lookup(kRootInode, name);
      const Buffer& ref = model[name].content;
      uint64_t offset = rng.Below(4 * kBlockSize);
      size_t len = rng.Range(1, 2 * kBlockSize);
      Buffer got(len);
      Result<size_t> n = fs->Read(ino, offset, got.mutable_span());
      ASSERT_TRUE(n.ok());
      Buffer expect(len);
      size_t ref_n = ref.ReadAt(offset, expect.mutable_span());
      ASSERT_EQ(*n, ref_n);
      EXPECT_EQ(ByteSpan(got.data(), *n).size(),
                ByteSpan(expect.data(), ref_n).size());
      EXPECT_TRUE(std::equal(got.data(), got.data() + *n, expect.data()));
    } else if (action < 85) {  // truncate
      std::string name = pick_existing();
      if (name.empty()) {
        continue;
      }
      InodeNum ino = *fs->Lookup(kRootInode, name);
      uint64_t new_size = rng.Below(4 * kBlockSize);
      ASSERT_TRUE(fs->Truncate(ino, new_size).ok());
      Buffer& ref = model[name].content;
      if (new_size <= ref.size()) {
        Buffer shrunk(new_size);
        ref.ReadAt(0, shrunk.mutable_span());
        ref = shrunk;
      } else {
        ref.resize(new_size);
      }
    } else {  // remove
      std::string name = pick_existing();
      if (name.empty()) {
        continue;
      }
      ASSERT_TRUE(fs->Remove(kRootInode, name).ok());
      model.erase(name);
    }
  }

  // Final full comparison plus an on-disk consistency check.
  for (const auto& [name, ref] : model) {
    InodeNum ino = *fs->Lookup(kRootInode, name);
    Result<InodeAttrs> attrs = fs->GetAttrs(ino);
    ASSERT_TRUE(attrs.ok());
    EXPECT_EQ(attrs->size, ref.content.size()) << name;
    Buffer got(ref.content.size());
    if (!got.empty()) {
      ASSERT_TRUE(fs->Read(ino, 0, got.mutable_span()).ok());
      EXPECT_EQ(Fnv1a64(got.span()), Fnv1a64(ref.content.span())) << name;
    }
  }
  ASSERT_TRUE(fs->Sync().ok());
  Checker checker(&device);
  Result<CheckReport> report = checker.Check();
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->clean()) << report->Summary();
}

INSTANTIATE_TEST_SUITE_P(Seeds, UfsPropertyTest,
                         ::testing::Values(1, 2, 3, 42, 1234, 99991));

}  // namespace
}  // namespace springfs::ufs
