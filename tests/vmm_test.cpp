// Unit tests for the VMM: bind/channel establishment, mapped-region access,
// page-cache sharing across equivalent memory objects, write faults,
// eviction, fault clustering (adaptive read-ahead), coherency callbacks,
// multi-threaded region access, and multi-VMM coherency through a
// reference pager (MemFile).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <map>
#include <random>
#include <string>
#include <thread>

#include "src/fs/mem_file.h"
#include "src/vmm/vmm.h"

namespace springfs {
namespace {

class VmmTest : public ::testing::Test {
 protected:
  void SetUp() override {
    domain_ = Domain::Create("node");
    vmm_ = Vmm::Create(domain_, "vmm");
    file_ = MemFile::Create(domain_);
  }

  // Writes `content` into the file through the file interface.
  void Seed(const std::string& content) {
    Buffer data(content);
    ASSERT_TRUE(file_->Write(0, data.span()).ok());
  }

  sp<Domain> domain_;
  sp<Vmm> vmm_;
  sp<MemFile> file_;
};

TEST_F(VmmTest, MapAndReadThroughMapping) {
  Seed("hello mapped world");
  Result<sp<MappedRegion>> region = vmm_->Map(file_, AccessRights::kReadOnly);
  ASSERT_TRUE(region.ok()) << region.status().ToString();
  Buffer out(18);
  ASSERT_TRUE((*region)->Read(0, out.mutable_span()).ok());
  EXPECT_EQ(out.ToString(), "hello mapped world");
  EXPECT_GE(metrics::StatValue(*vmm_, "faults"), 1u);
}

TEST_F(VmmTest, SecondReadIsCacheHit) {
  Seed("cached");
  sp<MappedRegion> region = *vmm_->Map(file_, AccessRights::kReadOnly);
  Buffer out(6);
  ASSERT_TRUE(region->Read(0, out.mutable_span()).ok());
  std::map<std::string, uint64_t> after_first = metrics::CollectFrom(*vmm_);
  ASSERT_TRUE(region->Read(0, out.mutable_span()).ok());
  std::map<std::string, uint64_t> after_second = metrics::CollectFrom(*vmm_);
  EXPECT_EQ(after_second["faults"], after_first["faults"]);
  EXPECT_GT(after_second["page_hits"], after_first["page_hits"]);
}

TEST_F(VmmTest, EquivalentMemoryObjectsShareCache) {
  Seed("shared pages");
  // Two maps of the same file: bind must return the same cache_rights, so
  // the second mapping reuses cached pages (no extra fault).
  sp<MappedRegion> r1 = *vmm_->Map(file_, AccessRights::kReadOnly);
  sp<MappedRegion> r2 = *vmm_->Map(file_, AccessRights::kReadOnly);
  EXPECT_EQ(r1->channel_id(), r2->channel_id());
  Buffer out(12);
  ASSERT_TRUE(r1->Read(0, out.mutable_span()).ok());
  uint64_t faults = metrics::StatValue(*vmm_, "faults");
  ASSERT_TRUE(r2->Read(0, out.mutable_span()).ok());
  EXPECT_EQ(metrics::StatValue(*vmm_, "faults"), faults);
  EXPECT_EQ(file_->num_channels(), 1u);
}

TEST_F(VmmTest, WriteThroughMappingThenSync) {
  ASSERT_TRUE(file_->SetLength(kPageSize).ok());
  sp<MappedRegion> region = *vmm_->Map(file_, AccessRights::kReadWrite);
  Buffer data(std::string("written via mapping"));
  ASSERT_TRUE(region->Write(0, data.span()).ok());
  // Before sync the pager's store may be stale; after sync it must match.
  ASSERT_TRUE(region->Sync().ok());
  Buffer out(data.size());
  ASSERT_TRUE(file_->Read(0, out.mutable_span()).ok());
  EXPECT_EQ(out.ToString(), "written via mapping");
}

TEST_F(VmmTest, StoreToReadOnlyMappingFails) {
  Seed("x");
  sp<MappedRegion> region = *vmm_->Map(file_, AccessRights::kReadOnly);
  Buffer data(std::string("y"));
  EXPECT_EQ(region->Write(0, data.span()).code(),
            ErrorCode::kPermissionDenied);
}

TEST_F(VmmTest, WriteFaultUpgradesRights) {
  Seed("upgrade me please!!");
  sp<MappedRegion> region = *vmm_->Map(file_, AccessRights::kReadWrite);
  Buffer out(7);
  ASSERT_TRUE(region->Read(0, out.mutable_span()).ok());  // RO fault
  uint64_t faults_after_read = metrics::StatValue(*vmm_, "faults");
  Buffer data(std::string("UPGRADE"));
  ASSERT_TRUE(region->Write(0, data.span()).ok());  // RW upgrade fault
  EXPECT_GT(metrics::StatValue(*vmm_, "faults"), faults_after_read);
  ASSERT_TRUE(region->Read(0, out.mutable_span()).ok());
  EXPECT_EQ(out.ToString(), "UPGRADE");
}

TEST_F(VmmTest, UnalignedAccessSpansPages) {
  Buffer big(3 * kPageSize);
  for (size_t i = 0; i < big.size(); ++i) {
    big.data()[i] = static_cast<uint8_t>(i % 251);
  }
  ASSERT_TRUE(file_->Write(0, big.span()).ok());
  sp<MappedRegion> region = *vmm_->Map(file_, AccessRights::kReadOnly);
  Buffer out(kPageSize + 100);
  ASSERT_TRUE(region->Read(kPageSize / 2, out.mutable_span()).ok());
  for (size_t i = 0; i < out.size(); ++i) {
    ASSERT_EQ(out.data()[i], (kPageSize / 2 + i) % 251) << "at " << i;
  }
}

TEST_F(VmmTest, EvictionBoundsCacheAndWritesBackDirty) {
  sp<Vmm> small = Vmm::Create(domain_, "small-vmm", /*max_pages=*/4);
  sp<MemFile> file = MemFile::Create(domain_);
  ASSERT_TRUE(file->SetLength(16 * kPageSize).ok());
  sp<MappedRegion> region = *small->Map(file, AccessRights::kReadWrite);
  // Touch 16 pages read-write.
  for (int p = 0; p < 16; ++p) {
    Buffer data(std::string("page" + std::to_string(p)));
    ASSERT_TRUE(region->Write(Offset{static_cast<uint64_t>(p)} * kPageSize,
                              data.span()).ok());
  }
  std::map<std::string, uint64_t> stats = metrics::CollectFrom(*small);
  EXPECT_LE(stats["pages_cached"], 4u);
  EXPECT_GT(stats["evictions"], 0u);
  // Evicted dirty pages were paged out: the file must hold them.
  Buffer out(5);
  ASSERT_TRUE(file->Read(0, out.mutable_span()).ok());
  EXPECT_EQ(out.ToString(), "page0");
}

TEST_F(VmmTest, DropAllPagesWritesBackDirty) {
  ASSERT_TRUE(file_->SetLength(kPageSize).ok());
  sp<MappedRegion> region = *vmm_->Map(file_, AccessRights::kReadWrite);
  Buffer data(std::string("dirty"));
  ASSERT_TRUE(region->Write(0, data.span()).ok());
  ASSERT_TRUE(vmm_->DropAllPages().ok());
  EXPECT_EQ(metrics::StatValue(*vmm_, "pages_cached"), 0u);
  Buffer out(5);
  ASSERT_TRUE(file_->Read(0, out.mutable_span()).ok());
  EXPECT_EQ(out.ToString(), "dirty");
}

// --- fault clustering (adaptive read-ahead) ---

namespace {
// Fills `file` with a deterministic per-byte pattern over `pages` pages.
Buffer SeedPattern(const sp<MemFile>& file, int pages) {
  Buffer data(static_cast<size_t>(pages) * kPageSize);
  for (size_t i = 0; i < data.size(); ++i) {
    data.data()[i] = static_cast<uint8_t>((i * 31 + 7) % 251);
  }
  EXPECT_TRUE(file->Write(0, data.span()).ok());
  return data;
}
}  // anonymous helpers

TEST_F(VmmTest, SequentialReadClustersFaults) {
  constexpr int kPages = 32;
  Buffer expect = SeedPattern(file_, kPages);
  sp<MappedRegion> region = *vmm_->Map(file_, AccessRights::kReadOnly);
  Buffer out(kPageSize);
  for (int p = 0; p < kPages; ++p) {
    ASSERT_TRUE(region->Read(Offset{static_cast<uint64_t>(p)} * kPageSize,
                             out.mutable_span()).ok());
    ASSERT_EQ(0, std::memcmp(out.data(),
                             expect.data() + static_cast<size_t>(p) * kPageSize,
                             kPageSize))
        << "page " << p;
  }
  std::map<std::string, uint64_t> stats = metrics::CollectFrom(*vmm_);
  // The window doubles 1,2,4,8,8,...: 32 pages in well under 32 faults.
  EXPECT_LE(stats["faults"], 9u) << "sequential faults were not clustered";
  EXPECT_GT(stats["read_ahead_hits"], 0u);
}

TEST_F(VmmTest, RandomAccessKeepsSinglePageFaults) {
  constexpr int kPages = 32;
  Buffer expect = SeedPattern(file_, kPages);
  sp<MappedRegion> region = *vmm_->Map(file_, AccessRights::kReadOnly);
  std::vector<int> order(kPages);
  for (int p = 0; p < kPages; ++p) {
    order[p] = p;
  }
  std::mt19937 rng(42);
  std::shuffle(order.begin(), order.end(), rng);
  Buffer out(kPageSize);
  for (int p : order) {
    ASSERT_TRUE(region->Read(Offset{static_cast<uint64_t>(p)} * kPageSize,
                             out.mutable_span()).ok());
    ASSERT_EQ(0, std::memcmp(out.data(),
                             expect.data() + static_cast<size_t>(p) * kPageSize,
                             kPageSize));
  }
  // Random access must not widen the window: no more faults than pages
  // (accidentally-adjacent pairs may cluster, never hurting the count).
  EXPECT_LE(metrics::StatValue(*vmm_, "faults"), static_cast<uint64_t>(kPages));
}

TEST_F(VmmTest, ClusterInsertOverflowingMaxPagesKeepsLruBound) {
  VmmOptions options;
  options.max_pages = 4;
  options.read_ahead_pages = 8;  // a full cluster is twice the cache bound
  sp<Vmm> small = Vmm::Create(domain_, "small-cluster-vmm", options);
  sp<MemFile> file = MemFile::Create(domain_);
  constexpr int kPages = 24;
  Buffer expect = SeedPattern(file, kPages);
  sp<MappedRegion> region = *small->Map(file, AccessRights::kReadOnly);
  Buffer out(kPageSize);
  for (int p = 0; p < kPages; ++p) {
    ASSERT_TRUE(region->Read(Offset{static_cast<uint64_t>(p)} * kPageSize,
                             out.mutable_span()).ok());
    ASSERT_EQ(0, std::memcmp(out.data(),
                             expect.data() + static_cast<size_t>(p) * kPageSize,
                             kPageSize))
        << "page " << p;
    // A cluster insert may momentarily overshoot, but eviction must restore
    // the bound before the fault returns.
    EXPECT_LE(metrics::StatValue(*small, "pages_cached"), 4u)
        << "after page " << p;
  }
  EXPECT_GT(metrics::StatValue(*small, "evictions"), 0u);
  // Re-reads after overflow still return exact bytes (LRU didn't corrupt
  // the map when a cluster displaced its own older half).
  Buffer all(static_cast<size_t>(kPages) * kPageSize);
  ASSERT_TRUE(region->Read(0, all.mutable_span()).ok());
  EXPECT_EQ(0, std::memcmp(all.data(), expect.data(), all.size()));
}

TEST_F(VmmTest, WriteFaultsNeverCluster) {
  ASSERT_TRUE(file_->SetLength(16 * kPageSize).ok());
  sp<MappedRegion> region = *vmm_->Map(file_, AccessRights::kReadWrite);
  Buffer data(std::string("w"));
  for (int p = 0; p < 8; ++p) {
    ASSERT_TRUE(region->Write(Offset{static_cast<uint64_t>(p)} * kPageSize,
                              data.span()).ok());
  }
  // Sequential *write* faults stay one page each: the writer set must not
  // be widened speculatively.
  std::map<std::string, uint64_t> stats = metrics::CollectFrom(*vmm_);
  EXPECT_EQ(stats["faults"], 8u);
  EXPECT_EQ(stats["pages_cached"], 8u);
}

// --- multi-threaded region access (exercised under the TSan CI job) ---

TEST_F(VmmTest, ConcurrentRegionAccessAcrossChannels) {
  // Writers on distinct files plus readers sharing one file, all through
  // one VMM: per-channel locks must isolate the channels (no contention
  // artifacts, no lost updates) while the shared LRU clock and page count
  // stay consistent.
  constexpr int kWriters = 4;
  constexpr int kPages = 16;
  sp<MemFile> shared = MemFile::Create(Domain::Create("shared-node"));
  Buffer shared_expect = SeedPattern(shared, kPages);
  sp<MappedRegion> shared_region = *vmm_->Map(shared, AccessRights::kReadOnly);

  std::vector<sp<MemFile>> files;
  std::vector<sp<MappedRegion>> regions;
  for (int w = 0; w < kWriters; ++w) {
    sp<MemFile> f =
        MemFile::Create(Domain::Create("node" + std::to_string(w)));
    EXPECT_TRUE(f->SetLength(kPages * kPageSize).ok());
    files.push_back(f);
    regions.push_back(*vmm_->Map(f, AccessRights::kReadWrite));
  }

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      Buffer page(kPageSize);
      Buffer back(kPageSize);
      for (int round = 0; round < 3; ++round) {
        for (int p = 0; p < kPages; ++p) {
          std::memset(page.data(), (w * 37 + p + round) % 251, kPageSize);
          Offset at = Offset{static_cast<uint64_t>(p)} * kPageSize;
          if (!regions[w]->Write(at, page.span()).ok() ||
              !regions[w]->Read(at, back.mutable_span()).ok() ||
              std::memcmp(page.data(), back.data(), kPageSize) != 0) {
            failures.fetch_add(1);
            return;
          }
        }
      }
    });
  }
  for (int r = 0; r < 2; ++r) {
    threads.emplace_back([&] {
      Buffer out(kPageSize);
      for (int round = 0; round < 3; ++round) {
        for (int p = 0; p < kPages; ++p) {
          Offset at = Offset{static_cast<uint64_t>(p)} * kPageSize;
          if (!shared_region->Read(at, out.mutable_span()).ok() ||
              std::memcmp(out.data(),
                          shared_expect.data() +
                              static_cast<size_t>(p) * kPageSize,
                          kPageSize) != 0) {
            failures.fetch_add(1);
            return;
          }
        }
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  EXPECT_EQ(failures.load(), 0);
  // Every writer's final round must be durable in the VMM cache.
  Buffer back(kPageSize);
  for (int w = 0; w < kWriters; ++w) {
    for (int p = 0; p < kPages; ++p) {
      ASSERT_TRUE(regions[w]->Read(Offset{static_cast<uint64_t>(p)} * kPageSize,
                                   back.mutable_span()).ok());
      ASSERT_EQ(back.data()[0], (w * 37 + p + 2) % 251);
    }
  }
}

// --- coherency between a mapping and the file interface ---

TEST_F(VmmTest, FileWriteInvalidatesMappedReader) {
  Seed("version-1");
  sp<MappedRegion> region = *vmm_->Map(file_, AccessRights::kReadOnly);
  Buffer out(9);
  ASSERT_TRUE(region->Read(0, out.mutable_span()).ok());
  EXPECT_EQ(out.ToString(), "version-1");
  // A write through the file interface must flush the VMM's cached copy.
  Buffer v2(std::string("version-2"));
  ASSERT_TRUE(file_->Write(0, v2.span()).ok());
  ASSERT_TRUE(region->Read(0, out.mutable_span()).ok());
  EXPECT_EQ(out.ToString(), "version-2");
  EXPECT_GT(metrics::StatValue(*vmm_, "flush_backs"), 0u);
}

TEST_F(VmmTest, FileReadSeesMappedWriterData) {
  ASSERT_TRUE(file_->SetLength(kPageSize).ok());
  sp<MappedRegion> region = *vmm_->Map(file_, AccessRights::kReadWrite);
  Buffer data(std::string("mapped-write"));
  ASSERT_TRUE(region->Write(0, data.span()).ok());
  // Without an explicit sync, a read through the file interface must still
  // see the mapped writer's bytes: the pager demotes the VMM (deny_writes)
  // and folds the recovered dirty page into its store.
  Buffer out(12);
  ASSERT_TRUE(file_->Read(0, out.mutable_span()).ok());
  EXPECT_EQ(out.ToString(), "mapped-write");
  EXPECT_GT(metrics::StatValue(*vmm_, "deny_writes"), 0u);
}

TEST_F(VmmTest, TwoVmmsStayCoherent) {
  // Two nodes (VMMs) map the same file; writes on one must be visible to
  // reads on the other via the pager's MRSW protocol.
  sp<Vmm> vmm2 = Vmm::Create(domain_, "vmm2");
  ASSERT_TRUE(file_->SetLength(kPageSize).ok());
  sp<MappedRegion> w = *vmm_->Map(file_, AccessRights::kReadWrite);
  sp<MappedRegion> r = *vmm2->Map(file_, AccessRights::kReadOnly);
  EXPECT_EQ(file_->num_channels(), 2u);

  Buffer round1(std::string("round-1"));
  ASSERT_TRUE(w->Write(0, round1.span()).ok());
  Buffer out(7);
  ASSERT_TRUE(r->Read(0, out.mutable_span()).ok());
  EXPECT_EQ(out.ToString(), "round-1");

  Buffer round2(std::string("round-2"));
  ASSERT_TRUE(w->Write(0, round2.span()).ok());
  ASSERT_TRUE(r->Read(0, out.mutable_span()).ok());
  EXPECT_EQ(out.ToString(), "round-2");
}

TEST_F(VmmTest, WriterMigratesBetweenVmms) {
  sp<Vmm> vmm2 = Vmm::Create(domain_, "vmm2");
  ASSERT_TRUE(file_->SetLength(kPageSize).ok());
  sp<MappedRegion> a = *vmm_->Map(file_, AccessRights::kReadWrite);
  sp<MappedRegion> b = *vmm2->Map(file_, AccessRights::kReadWrite);

  Buffer from_a(std::string("AAAA"));
  ASSERT_TRUE(a->Write(0, from_a.span()).ok());
  Buffer from_b(std::string("BB"));
  ASSERT_TRUE(b->Write(1, from_b.span()).ok());  // steals write ownership
  Buffer out(4);
  ASSERT_TRUE(a->Read(0, out.mutable_span()).ok());  // steals it back (RO)
  EXPECT_EQ(out.ToString(), "ABBA");
}

TEST_F(VmmTest, ManyVmmsRoundRobinWrites) {
  constexpr int kNodes = 5;
  std::vector<sp<Vmm>> vmms;
  std::vector<sp<MappedRegion>> regions;
  ASSERT_TRUE(file_->SetLength(kPageSize).ok());
  for (int i = 0; i < kNodes; ++i) {
    vmms.push_back(Vmm::Create(domain_, "vmm" + std::to_string(i)));
    regions.push_back(*vmms.back()->Map(file_, AccessRights::kReadWrite));
  }
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < kNodes; ++i) {
      std::string text = "r" + std::to_string(round) + "n" + std::to_string(i);
      Buffer data(text);
      ASSERT_TRUE(regions[i]->Write(0, data.span()).ok());
      // Every other node sees it immediately.
      for (int j = 0; j < kNodes; ++j) {
        Buffer out(text.size());
        ASSERT_TRUE(regions[j]->Read(0, out.mutable_span()).ok());
        EXPECT_EQ(out.ToString(), text);
      }
    }
  }
}

TEST_F(VmmTest, MapFailsWhenBindFails) {
  // A memory object whose bind always fails.
  class BrokenMemObj : public MemoryObject {
   public:
    Result<sp<CacheRights>> Bind(const sp<CacheManager>&,
                                 AccessRights) override {
      return ErrPermissionDenied("no binding allowed");
    }
    Result<Offset> GetLength() override { return Offset{0}; }
    Status SetLength(Offset) override { return Status::Ok(); }
  };
  auto broken = std::make_shared<BrokenMemObj>();
  EXPECT_EQ(vmm_->Map(broken, AccessRights::kReadOnly).status().code(),
            ErrorCode::kPermissionDenied);
}

TEST_F(VmmTest, ForeignCacheRightsRejected) {
  // A memory object that returns rights from a *different* VMM.
  sp<Vmm> other = Vmm::Create(domain_, "other");
  sp<MemFile> file = MemFile::Create(domain_);
  sp<MappedRegion> region = *other->Map(file, AccessRights::kReadOnly);

  class ForwardingMemObj : public MemoryObject {
   public:
    explicit ForwardingMemObj(sp<CacheRights> rights)
        : rights_(std::move(rights)) {}
    Result<sp<CacheRights>> Bind(const sp<CacheManager>&,
                                 AccessRights) override {
      return rights_;
    }
    Result<Offset> GetLength() override { return Offset{0}; }
    Status SetLength(Offset) override { return Status::Ok(); }

   private:
    sp<CacheRights> rights_;
  };
  // Hand vmm_ the rights belonging to `other`'s channel.
  class RightsProbe : public CacheRights {
   public:
    explicit RightsProbe(uint64_t id) : id_(id) {}
    uint64_t channel_id() const override { return id_; }

   private:
    uint64_t id_;
  };
  auto forwarding =
      std::make_shared<ForwardingMemObj>(std::make_shared<RightsProbe>(9999));
  EXPECT_EQ(vmm_->Map(forwarding, AccessRights::kReadOnly).status().code(),
            ErrorCode::kInvalidArgument);
}

}  // namespace
}  // namespace springfs
