// Tests for XATTRFS: the extended-attributes layer and the section 4.3
// interface-subclassing discovery pattern (narrow<XattrFile>()).

#include <gtest/gtest.h>

#include "src/layers/sfs/sfs.h"
#include "src/layers/xattrfs/xattr_layer.h"
#include "src/support/rng.h"
#include "src/vmm/vmm.h"

namespace springfs {
namespace {

class XattrfsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    device_ = std::make_unique<MemBlockDevice>(ufs::kBlockSize, 8192);
    sfs_ = *CreateSfs(device_.get(), SfsOptions{}, &clock_);
    xattrfs_ = XattrLayer::Create(Domain::Create("xattrfs"), &clock_);
    ASSERT_TRUE(xattrfs_->StackOn(sfs_.root).ok());
  }

  Credentials sys_ = Credentials::System();
  FakeClock clock_;
  std::unique_ptr<MemBlockDevice> device_;
  Sfs sfs_;
  sp<XattrLayer> xattrfs_;
};

TEST_F(XattrfsTest, NarrowDiscoversTheCapability) {
  // The section 4.3 pattern: clients narrow to discover extended
  // functionality instead of using untyped escape hatches.
  ASSERT_TRUE(xattrfs_->CreateFile(*Name::Parse("f"), sys_).ok());
  sp<Object> via_xattrfs = *xattrfs_->Resolve(*Name::Parse("f"), sys_);
  EXPECT_NE(narrow<XattrFile>(via_xattrfs), nullptr);
  // The same file resolved through plain SFS does NOT narrow.
  sp<Object> via_sfs = *sfs_.root->Resolve(*Name::Parse("f"), sys_);
  EXPECT_EQ(narrow<XattrFile>(via_sfs), nullptr);
  EXPECT_NE(narrow<File>(via_sfs), nullptr);
}

TEST_F(XattrfsTest, SetGetListRemove) {
  sp<XattrFile> file = narrow<XattrFile>(
      *xattrfs_->CreateFile(*Name::Parse("doc"), sys_));
  ASSERT_NE(file, nullptr);
  Buffer author(std::string("khalidi+nelson"));
  Buffer year(std::string("1993"));
  ASSERT_TRUE(file->SetXattr("author", author.span()).ok());
  ASSERT_TRUE(file->SetXattr("year", year.span()).ok());

  Result<Buffer> got = file->GetXattr("author");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->ToString(), "khalidi+nelson");

  Result<std::vector<std::string>> names = file->ListXattrs();
  ASSERT_TRUE(names.ok());
  ASSERT_EQ(names->size(), 2u);
  EXPECT_EQ((*names)[0], "author");
  EXPECT_EQ((*names)[1], "year");

  ASSERT_TRUE(file->RemoveXattr("author").ok());
  EXPECT_EQ(file->GetXattr("author").status().code(), ErrorCode::kNotFound);
  EXPECT_EQ(file->RemoveXattr("author").code(), ErrorCode::kNotFound);
}

TEST_F(XattrfsTest, AttributesPersistViaShadowFiles) {
  {
    sp<XattrFile> file = narrow<XattrFile>(
        *xattrfs_->CreateFile(*Name::Parse("p"), sys_));
    Buffer v(std::string("survives"));
    ASSERT_TRUE(file->SetXattr("key", v.span()).ok());
    ASSERT_TRUE(xattrfs_->SyncFs().ok());
  }
  // A fresh layer instance over the same stack reloads the shadow.
  sp<XattrLayer> fresh = XattrLayer::Create(Domain::Create("x2"), &clock_);
  ASSERT_TRUE(fresh->StackOn(sfs_.root).ok());
  sp<XattrFile> file = narrow<XattrFile>(
      *fresh->Resolve(*Name::Parse("p"), sys_));
  ASSERT_NE(file, nullptr);
  Result<Buffer> got = file->GetXattr("key");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->ToString(), "survives");
  EXPECT_GE(metrics::StatValue(*fresh, "shadow_loads"), 1u);
}

TEST_F(XattrfsTest, ShadowFilesHiddenFromListing) {
  sp<XattrFile> file = narrow<XattrFile>(
      *xattrfs_->CreateFile(*Name::Parse("f"), sys_));
  Buffer v(std::string("x"));
  ASSERT_TRUE(file->SetXattr("k", v.span()).ok());
  Result<std::vector<BindingInfo>> list = xattrfs_->List(sys_);
  ASSERT_TRUE(list.ok());
  for (const auto& entry : *list) {
    EXPECT_EQ(entry.name.find(".xattr"), std::string::npos) << entry.name;
  }
  // But the shadow exists below.
  EXPECT_TRUE(sfs_.root->Resolve(*Name::Parse("f.xattr"), sys_).ok());
  EXPECT_EQ(xattrfs_->Resolve(*Name::Parse("f.xattr"), sys_).status().code(),
            ErrorCode::kNotFound);
}

TEST_F(XattrfsTest, UnbindRemovesShadow) {
  sp<XattrFile> file = narrow<XattrFile>(
      *xattrfs_->CreateFile(*Name::Parse("gone"), sys_));
  Buffer v(std::string("x"));
  ASSERT_TRUE(file->SetXattr("k", v.span()).ok());
  file.reset();
  ASSERT_TRUE(xattrfs_->Unbind(*Name::Parse("gone"), sys_).ok());
  EXPECT_EQ(sfs_.root->Resolve(*Name::Parse("gone.xattr"), sys_)
                .status().code(),
            ErrorCode::kNotFound);
}

TEST_F(XattrfsTest, DataPathIsForwardedToTheUnderlyingFile) {
  sp<File> file = *xattrfs_->CreateFile(*Name::Parse("data"), sys_);
  ASSERT_TRUE(file->SetLength(kPageSize).ok());
  // Map through the xattrfs view; the bind is forwarded, so the channel is
  // identical to a direct SFS mapping.
  sp<Vmm> vmm = Vmm::Create(Domain::Create("n"), "vmm");
  sp<MappedRegion> via_xattr = *vmm->Map(file, AccessRights::kReadWrite);
  sp<File> direct = *ResolveAs<File>(sfs_.root, "data", sys_);
  sp<MappedRegion> via_sfs = *vmm->Map(direct, AccessRights::kReadOnly);
  EXPECT_EQ(via_xattr->channel_id(), via_sfs->channel_id());
  // Data round-trips.
  Buffer payload(std::string("forwarded"));
  ASSERT_TRUE(via_xattr->Write(0, payload.span()).ok());
  Buffer out(9);
  ASSERT_TRUE(file->Read(0, out.mutable_span()).ok());
  EXPECT_EQ(out.ToString(), "forwarded");
}

TEST_F(XattrfsTest, BinaryValuesAndOverwrite) {
  sp<XattrFile> file = narrow<XattrFile>(
      *xattrfs_->CreateFile(*Name::Parse("b"), sys_));
  Rng rng(17);
  Buffer blob = rng.RandomBuffer(1000);
  ASSERT_TRUE(file->SetXattr("blob", blob.span()).ok());
  Result<Buffer> got = file->GetXattr("blob");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, blob);
  Buffer small(std::string("new"));
  ASSERT_TRUE(file->SetXattr("blob", small.span()).ok());
  EXPECT_EQ(file->GetXattr("blob")->ToString(), "new");
  EXPECT_EQ(file->ListXattrs()->size(), 1u);
}

TEST_F(XattrfsTest, RejectsBadNames) {
  sp<XattrFile> file = narrow<XattrFile>(
      *xattrfs_->CreateFile(*Name::Parse("f"), sys_));
  Buffer v(std::string("x"));
  EXPECT_EQ(file->SetXattr("", v.span()).code(), ErrorCode::kInvalidArgument);
  std::string nul_name("a\0b", 3);
  EXPECT_EQ(file->SetXattr(nul_name, v.span()).code(),
            ErrorCode::kInvalidArgument);
}

TEST_F(XattrfsTest, ManyAttributesRoundTrip) {
  sp<XattrFile> file = narrow<XattrFile>(
      *xattrfs_->CreateFile(*Name::Parse("many"), sys_));
  Rng rng(18);
  std::map<std::string, Buffer> model;
  for (int i = 0; i < 64; ++i) {
    std::string name = "attr" + std::to_string(i);
    Buffer value = rng.RandomBuffer(rng.Range(0, 200));
    ASSERT_TRUE(file->SetXattr(name, value.span()).ok());
    model[name] = value;
  }
  EXPECT_EQ(file->ListXattrs()->size(), 64u);
  for (const auto& [name, value] : model) {
    Result<Buffer> got = file->GetXattr(name);
    ASSERT_TRUE(got.ok()) << name;
    EXPECT_EQ(*got, value) << name;
  }
}

TEST_F(XattrfsTest, FsInfoAndStackDepth) {
  Result<FsInfo> info = xattrfs_->GetFsInfo();
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->type, "xattrfs(coherency(disk))");
  EXPECT_EQ(info->stack_depth, 3u);
}

}  // namespace
}  // namespace springfs
